//! The shared HyPE evaluation core.
//!
//! HyPE (Hybrid Pass Evaluation, paper §3) performs **one** top-down
//! depth-first traversal during which it simultaneously (a) advances the
//! selection NFA, (b) instantiates and resolves predicates (the AFA layer),
//! and (c) collects potential answers into `Cans`; a single post-pass over
//! `Cans` then selects the answer. The same core drives both the DOM
//! walker and the StAX stream evaluator — the only differences are how
//! `text() = 'c'` tests are resolved (eagerly via the tree vs. by
//! accumulation) and whether subtrees can be skipped (random access vs.
//! sequential scan).
//!
//! ## Runs, tags and instances
//!
//! * A **run** is a live simulation of one NFA: the selection NFA (the
//!   "top" run, alive for the whole traversal) or a `HasPath` predicate
//!   automaton rooted at the node that instantiated it. A run maintains a
//!   stack of *active sets*, one per open tree level: pairs of
//!   `(state, validity tag)`.
//! * A **validity tag** ([`Tag`]) says under which predicate instances the
//!   state assignment is valid. Guard-free regions keep the constant
//!   `True` and allocate nothing.
//! * A **predicate instance** is a predicate pinned to the node where a
//!   guarded ε-edge was traversed. `HasPath` instances own a run;
//!   `text()='c'` instances either resolve eagerly (DOM) or accumulate
//!   text (StAX); `not/and/or` combine sub-instances. Every instance
//!   resolves no later than when the traversal leaves its origin node, so
//!   the final Cans pass sees only resolved instances.

use crate::cans::{Cans, FormulaArena, InstId, Tag};
use crate::observer::EvalObserver;
use crate::stats::EvalStats;
use smoqe_automata::analysis::{required_labels, Requirement};
use smoqe_automata::{Mfa, NfaId, Pred, PredId, StateId};
use smoqe_xml::{Label, LabelSet};
use std::collections::{BTreeSet, HashMap};

/// Sentinel node id for the virtual document node above the root.
pub const VIRTUAL_NODE: u32 = u32::MAX;

/// How far a child's label lets the automata advance (pre-enter check used
/// for subtree skipping).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Preview {
    /// No live run has a transition matching the label: the subtree is
    /// invisible to the query.
    NoMatch,
    /// Some run advances, but the TAX index proves no accepting
    /// continuation fits in the subtree.
    Pruned,
    /// The subtree must be visited.
    Progress,
}

#[derive(Clone, Copy, Debug)]
enum InstRef {
    Resolved(bool),
    Pending(InstId),
}

#[derive(Debug)]
enum InstKind {
    TextEq {
        /// Accumulated text, capped at `target.len() + 1` bytes.
        buf: String,
        target: String,
        /// Frame depth of the origin element: only its *direct* text
        /// counts (`text() = 'c'` compares direct text content).
        depth: usize,
    },
    HasPath {
        /// Validity tags of accept events collected by the run.
        accepts: Vec<Tag>,
    },
    Not {
        sub: InstId,
    },
    And {
        subs: Vec<InstId>,
    },
    Or {
        subs: Vec<InstId>,
    },
}

#[derive(Debug)]
struct Instance {
    kind: InstKind,
}

type RunId = usize;

/// `(state, validity)` pairs; states unique, sorted by construction order
/// of the closure (not necessarily by id — lookups scan, sets are small).
type ActiveSet = Vec<(StateId, Tag)>;

#[derive(Debug)]
struct Run {
    nfa: NfaId,
    /// Owning instance; `None` for the top (selection) run.
    inst: Option<InstId>,
    dead: bool,
    stack: Vec<ActiveSet>,
}

struct Frame {
    node: u32,
    /// Runs whose stacks we pushed at this level (popped symmetric).
    stepped: Vec<RunId>,
    /// Runs spawned at this node (finalized when it closes).
    spawned_runs: Vec<RunId>,
    /// Instances spawned at this node (resolved when it closes).
    opened: Vec<InstId>,
    /// Runs children should step.
    live: Vec<RunId>,
}

/// The evaluation machine. Drivers feed `begin`/`enter`/`text`/`leave`/
/// `end` in document order.
pub struct Machine<'a> {
    mfa: &'a Mfa,
    /// Per (NFA, state): labels required for any accepting continuation.
    required: Vec<Vec<Requirement>>,
    /// Per (NFA, state): precomputed ε-closure and whether any guarded
    /// edge is reachable within it. Guard-free closures take a fast path
    /// that allocates no formula machinery.
    closures: Vec<Vec<(Vec<StateId>, bool)>>,
    /// Epoch-marked scratch for closure merging (index = state id).
    scratch: Vec<u32>,
    scratch_epoch: u32,
    /// Recycled frames and active sets (per-node allocation avoidance).
    frame_pool: Vec<Frame>,
    set_pool: Vec<ActiveSet>,
    seed_buf: Vec<(StateId, Tag)>,
    runs: Vec<Run>,
    insts: Vec<Instance>,
    truths: Vec<Option<bool>>,
    arena: FormulaArena,
    cans: Cans,
    immediate: Vec<u32>,
    frames: Vec<Frame>,
    open_texteq: Vec<InstId>,
    /// Per-node spawn cache: one instance per (pred, node).
    spawn_cache: HashMap<PredId, InstRef>,
    /// Eager `text()='c'` resolution (DOM mode): node id -> string value.
    text_resolver: Option<&'a dyn Fn(u32) -> String>,
    /// Candidate discovered by the most recent `enter` (for stream
    /// recorders).
    last_candidate: Option<(u32, bool)>,
    stats: EvalStats,
}

impl<'a> Machine<'a> {
    /// Creates a machine for `mfa`. `text_resolver` enables eager
    /// `text()='c'` resolution (DOM mode); without it, text is accumulated
    /// from `text` events (StAX mode).
    pub fn new(mfa: &'a Mfa, text_resolver: Option<&'a dyn Fn(u32) -> String>) -> Self {
        let num_labels = mfa.vocabulary().len();
        let required = mfa
            .nfas()
            .map(|(_, nfa)| required_labels(nfa, num_labels))
            .collect();
        let mut max_states = 0;
        let closures: Vec<Vec<(Vec<StateId>, bool)>> = mfa
            .nfas()
            .map(|(_, nfa)| {
                max_states = max_states.max(nfa.state_count());
                nfa.states()
                    .map(|s| {
                        // BFS over ε-edges; record whether a guard is seen.
                        let mut seen = vec![false; nfa.state_count()];
                        let mut has_guard = false;
                        let mut out = Vec::new();
                        let mut work = vec![s];
                        seen[s.index()] = true;
                        while let Some(x) = work.pop() {
                            out.push(x);
                            for e in nfa.eps_edges(x) {
                                if e.guard.is_some() {
                                    has_guard = true;
                                }
                                if !seen[e.target.index()] {
                                    seen[e.target.index()] = true;
                                    work.push(e.target);
                                }
                            }
                        }
                        out.sort_unstable();
                        (out, has_guard)
                    })
                    .collect()
            })
            .collect();
        Machine {
            mfa,
            required,
            closures,
            scratch: vec![0; max_states],
            scratch_epoch: 0,
            frame_pool: Vec::new(),
            set_pool: Vec::new(),
            seed_buf: Vec::new(),
            runs: Vec::new(),
            insts: Vec::new(),
            truths: Vec::new(),
            arena: FormulaArena::new(),
            cans: Cans::new(),
            immediate: Vec::new(),
            frames: Vec::new(),
            open_texteq: Vec::new(),
            spawn_cache: HashMap::new(),
            text_resolver,
            last_candidate: None,
            stats: EvalStats {
                tree_passes: 1,
                ..Default::default()
            },
        }
    }

    /// Whether any `text()='c'` instance is still accumulating (stream
    /// drivers must keep feeding text while this holds).
    pub fn has_open_texteq(&self) -> bool {
        !self.open_texteq.is_empty()
    }

    /// Candidate discovered by the most recent `enter`, if any.
    pub fn take_last_candidate(&mut self) -> Option<(u32, bool)> {
        self.last_candidate.take()
    }

    /// Mutable access to the statistics (drivers add prune counters).
    pub fn stats_mut(&mut self) -> &mut EvalStats {
        &mut self.stats
    }

    fn take_frame(&mut self, node: u32) -> Frame {
        match self.frame_pool.pop() {
            Some(mut f) => {
                f.node = node;
                f
            }
            None => Frame {
                node,
                stepped: Vec::new(),
                spawned_runs: Vec::new(),
                opened: Vec::new(),
                live: Vec::new(),
            },
        }
    }

    fn recycle_frame(&mut self, mut frame: Frame) {
        frame.stepped.clear();
        frame.spawned_runs.clear();
        frame.opened.clear();
        frame.live.clear();
        self.frame_pool.push(frame);
    }

    fn take_set(&mut self) -> ActiveSet {
        self.set_pool.pop().unwrap_or_default()
    }

    fn recycle_set(&mut self, mut set: ActiveSet) {
        set.clear();
        self.set_pool.push(set);
    }

    /// Starts the traversal: pushes the virtual document frame and seeds
    /// the selection run.
    pub fn begin(&mut self, observer: &mut dyn EvalObserver) {
        assert!(self.frames.is_empty(), "begin called twice");
        let frame = self.take_frame(VIRTUAL_NODE);
        self.frames.push(frame);
        let top = self.mfa.top();
        self.runs.push(Run {
            nfa: top,
            inst: None,
            dead: false,
            stack: Vec::new(),
        });
        self.spawn_cache.clear();
        let mut new_runs = Vec::new();
        let start = self.mfa.nfa(top).start();
        let set = self.closure(
            top,
            &[(start, Tag::True)],
            VIRTUAL_NODE,
            &mut new_runs,
            observer,
        );
        // An accept at the virtual node would select the document node,
        // which is not an element answer - dropped, matching the reference
        // evaluator.
        self.runs[0].stack.push(set);
        let mut live = vec![0];
        live.extend(new_runs.iter().copied().filter(|&r| !self.runs[r].dead));
        let frame = self.frames.last_mut().expect("virtual frame");
        frame.spawned_runs = new_runs;
        frame.live = live;
    }

    /// Pre-enter check: can any live run make progress in a subtree whose
    /// root has `label` and whose descendants offer `available` labels?
    /// Pass `None` for `available` when no index is present (pure
    /// automaton check).
    pub fn preview(&self, label: Label, available: Option<&LabelSet>) -> Preview {
        let frame = self.frames.last().expect("preview outside traversal");
        let mut any_match = false;
        for &r in &frame.live {
            let run = &self.runs[r];
            if run.dead {
                continue;
            }
            let nfa = self.mfa.nfa(run.nfa);
            let req = &self.required[run.nfa.index()];
            let Some(top) = run.stack.last() else {
                continue;
            };
            for &(s, _) in top {
                for t in nfa.transitions(s) {
                    if !t.test.matches(label) {
                        continue;
                    }
                    any_match = true;
                    match available {
                        None => return Preview::Progress,
                        Some(avail) => {
                            if req[t.target.index()].satisfiable_within(avail) {
                                return Preview::Progress;
                            }
                        }
                    }
                }
            }
        }
        if any_match {
            Preview::Pruned
        } else {
            Preview::NoMatch
        }
    }

    /// Enters an element node. Returns whether any run is still live (if
    /// not, the subtree can be skipped by the driver — nothing below can
    /// match, and no predicate instance is waiting for its text unless
    /// [`Machine::has_open_texteq`] holds).
    pub fn enter(&mut self, label: Label, node: u32, observer: &mut dyn EvalObserver) -> bool {
        let depth = self.frames.len();
        self.stats.nodes_visited += 1;
        self.stats.max_depth = self.stats.max_depth.max(depth);
        self.last_candidate = None;
        self.spawn_cache.clear();
        observer.enter_node(node, label, depth);
        // Move the parent's live list out to iterate it without cloning;
        // restored before returning.
        let parent_live =
            std::mem::take(&mut self.frames.last_mut().expect("enter before begin").live);
        let frame = self.take_frame(node);
        self.frames.push(frame);
        let mut new_runs = Vec::new();
        for &r in &parent_live {
            if self.runs[r].dead {
                continue;
            }
            let nfa_id = self.runs[r].nfa;
            let nfa = self.mfa.nfa(nfa_id);
            // Step on the label.
            let top = self.runs[r].stack.last().expect("live run has a set");
            let mut seed = std::mem::take(&mut self.seed_buf);
            seed.clear();
            for &(s, tag) in top {
                for t in nfa.transitions(s) {
                    if t.test.matches(label) {
                        seed.push((t.target, tag));
                    }
                }
            }
            if seed.is_empty() {
                self.seed_buf = seed;
                continue; // dormant below this node
            }
            let set = self.closure(nfa_id, &seed, node, &mut new_runs, observer);
            self.seed_buf = seed;
            self.process_accept(r, &set, node, observer);
            self.runs[r].stack.push(set);
            let frame = self.frames.last_mut().expect("frame just pushed");
            frame.stepped.push(r);
            if !self.runs[r].dead {
                frame.live.push(r);
            }
        }
        // Restore the parent's live list.
        let depth_frames = self.frames.len();
        self.frames[depth_frames - 2].live = parent_live;
        let live_new: Vec<RunId> = new_runs
            .iter()
            .copied()
            .filter(|&r| !self.runs[r].dead)
            .collect();
        let frame = self.frames.last_mut().expect("frame just pushed");
        frame.spawned_runs = new_runs;
        frame.live.extend(live_new);
        !frame.live.is_empty()
    }

    /// Records an accept (if present in `set`) for run `r` at `node`.
    fn process_accept(
        &mut self,
        r: RunId,
        set: &ActiveSet,
        node: u32,
        observer: &mut dyn EvalObserver,
    ) {
        let accept = self.mfa.nfa(self.runs[r].nfa).accept();
        let Some(&(_, tag)) = set.iter().find(|(s, _)| *s == accept) else {
            return;
        };
        match self.runs[r].inst {
            None => {
                // Top run: candidate answer.
                if node == VIRTUAL_NODE {
                    return;
                }
                match tag {
                    Tag::True => {
                        self.immediate.push(node);
                        self.stats.immediate_answers += 1;
                        self.last_candidate = Some((node, true));
                        observer.candidate(node, true);
                    }
                    Tag::Formula(_) => {
                        self.cans.push(node, tag);
                        self.last_candidate = Some((node, false));
                        observer.candidate(node, false);
                    }
                }
            }
            Some(inst) => {
                if self.truths[inst].is_some() {
                    return; // already resolved (true)
                }
                match tag {
                    Tag::True => {
                        self.resolve_instance(inst, true, observer);
                        self.runs[r].dead = true;
                    }
                    Tag::Formula(_) => {
                        if let InstKind::HasPath { accepts } = &mut self.insts[inst].kind {
                            accepts.push(tag);
                        }
                    }
                }
            }
        }
    }

    /// Feeds character data (stream mode; DOM drivers may skip text nodes
    /// entirely since `text()='c'` resolves eagerly there).
    pub fn text(&mut self, content: &str) {
        if self.open_texteq.is_empty() {
            return;
        }
        let here = self.frames.len();
        // Iterate by index: resolution never happens here, only appends.
        for idx in 0..self.open_texteq.len() {
            let inst = self.open_texteq[idx];
            if let InstKind::TextEq { buf, target, depth } = &mut self.insts[inst].kind {
                if *depth != here {
                    continue; // not direct text of the origin element
                }
                let cap = target.len() + 1;
                if buf.len() < cap {
                    let room = cap - buf.len();
                    let take = content
                        .char_indices()
                        .map(|(i, c)| i + c.len_utf8())
                        .take_while(|&end| end <= room)
                        .last()
                        .unwrap_or(0);
                    buf.push_str(&content[..take]);
                    if take < content.len() && buf.len() < cap {
                        // Remaining content overflows the cap: mark by
                        // exceeding the target length with a placeholder.
                        buf.push('\u{0}');
                    }
                }
            }
        }
    }

    /// Leaves the current element node, resolving everything rooted there.
    pub fn leave(&mut self, observer: &mut dyn EvalObserver) {
        let frame = self.frames.pop().expect("leave without enter");
        observer.leave_node(frame.node);
        for &r in &frame.stepped {
            if let Some(set) = self.runs[r].stack.pop() {
                self.recycle_set(set);
            }
        }
        self.resolve_opened(&frame.opened, observer);
        for &r in &frame.spawned_runs {
            self.runs[r].stack.clear();
            self.runs[r].dead = true;
        }
        self.recycle_frame(frame);
    }

    /// Resolves all instances opened at the closing node. Dependencies are
    /// all within the now-closed subtree, so a fixpoint over the opened
    /// list terminates.
    fn resolve_opened(&mut self, opened: &[InstId], observer: &mut dyn EvalObserver) {
        let mut pending: Vec<InstId> = opened
            .iter()
            .copied()
            .filter(|&i| self.truths[i].is_none())
            .collect();
        while !pending.is_empty() {
            let mut progressed = false;
            let mut still: Vec<InstId> = Vec::new();
            for &i in &pending {
                if self.truths[i].is_some() {
                    progressed = true;
                    continue;
                }
                let value = match &self.insts[i].kind {
                    InstKind::TextEq { buf, target, .. } => Some(buf == target),
                    InstKind::HasPath { accepts } => {
                        let mut verdict = Some(false);
                        for &tag in accepts {
                            match self.arena.eval(tag, &self.truths) {
                                Some(true) => {
                                    verdict = Some(true);
                                    break;
                                }
                                Some(false) => {}
                                None => verdict = None,
                            }
                        }
                        verdict
                    }
                    InstKind::Not { sub } => self.truths[*sub].map(|b| !b),
                    InstKind::And { subs } => {
                        let mut verdict = Some(true);
                        for &s in subs {
                            match self.truths[s] {
                                Some(false) => {
                                    verdict = Some(false);
                                    break;
                                }
                                Some(true) => {}
                                None => verdict = None,
                            }
                        }
                        verdict
                    }
                    InstKind::Or { subs } => {
                        let mut verdict = Some(false);
                        for &s in subs {
                            match self.truths[s] {
                                Some(true) => {
                                    verdict = Some(true);
                                    break;
                                }
                                Some(false) => {}
                                None => verdict = None,
                            }
                        }
                        verdict
                    }
                };
                match value {
                    Some(v) => {
                        self.resolve_instance(i, v, observer);
                        progressed = true;
                    }
                    None => still.push(i),
                }
            }
            assert!(
                progressed || still.is_empty(),
                "instance dependency cycle (evaluator bug)"
            );
            pending = still;
        }
    }

    fn resolve_instance(&mut self, inst: InstId, value: bool, observer: &mut dyn EvalObserver) {
        if self.truths[inst].is_some() {
            return;
        }
        self.truths[inst] = Some(value);
        observer.instance_resolved(inst, value);
        if matches!(self.insts[inst].kind, InstKind::TextEq { .. }) {
            if let Some(pos) = self.open_texteq.iter().position(|&x| x == inst) {
                self.open_texteq.swap_remove(pos);
            }
        }
    }

    /// Finishes the traversal: closes the virtual frame, runs the Cans
    /// pass, and returns the answer node ids in document order.
    pub fn end(mut self, observer: &mut dyn EvalObserver) -> (Vec<u32>, EvalStats) {
        self.leave(observer); // virtual frame
        assert!(self.frames.is_empty(), "unbalanced enter/leave");
        self.stats.cans_size = self.cans.len();
        self.stats.formula_nodes = self.arena.len();
        let mut answers = self.immediate.clone();
        for c in self.cans.iter() {
            let kept = self
                .arena
                .eval(c.tag, &self.truths)
                .expect("all instances resolved after traversal");
            observer.candidate_resolved(c.node, kept);
            if kept {
                answers.push(c.node);
            }
        }
        answers.sort_unstable();
        answers.dedup();
        self.stats.answers = answers.len();
        (answers, self.stats)
    }

    // -- closure with guard pickup -----------------------------------------

    /// Guard-aware ε-closure of `seed` at `node`. Spawns predicate
    /// instances for guards it crosses; newly created `HasPath` runs are
    /// appended to `new_runs`.
    fn closure(
        &mut self,
        nfa_id: NfaId,
        seed: &[(StateId, Tag)],
        node: u32,
        new_runs: &mut Vec<RunId>,
        observer: &mut dyn EvalObserver,
    ) -> ActiveSet {
        // Fast path: all-True seeds whose closures cross no guard edge.
        // This covers every guard-free region of every query and avoids
        // the formula machinery entirely.
        if seed
            .iter()
            .all(|&(s, t)| t == Tag::True && !self.closures[nfa_id.index()][s.index()].1)
        {
            self.scratch_epoch += 1;
            let epoch = self.scratch_epoch;
            let mut out: ActiveSet = self.take_set();
            let pre = &self.closures[nfa_id.index()];
            for &(s, _) in seed {
                for &t in &pre[s.index()].0 {
                    if self.scratch[t.index()] != epoch {
                        self.scratch[t.index()] = epoch;
                        out.push((t, Tag::True));
                    }
                }
            }
            out.sort_unstable_by_key(|&(s, _)| s);
            return out;
        }
        let mfa = self.mfa;
        let nfa = mfa.nfa(nfa_id);
        #[derive(Default, Clone)]
        struct Build {
            known_true: bool,
            parts: BTreeSet<crate::cans::FId>,
        }
        let mut builds: HashMap<StateId, Build> = HashMap::new();
        let mut work: Vec<StateId> = Vec::new();
        let merge = |builds: &mut HashMap<StateId, Build>,
                     work: &mut Vec<StateId>,
                     s: StateId,
                     tag: Tag| {
            let b = builds.entry(s).or_default();
            let changed = match tag {
                Tag::True => {
                    let c = !b.known_true;
                    b.known_true = true;
                    c
                }
                Tag::Formula(f) => {
                    if b.known_true {
                        false
                    } else {
                        b.parts.insert(f)
                    }
                }
            };
            if changed {
                work.push(s);
            }
        };
        for &(s, tag) in seed {
            merge(&mut builds, &mut work, s, tag);
        }
        while let Some(s) = work.pop() {
            let cur = {
                let b = &builds[&s];
                if b.known_true {
                    Tag::True
                } else {
                    match self.arena.or_tags(&b.parts, false) {
                        Some(t) => t,
                        None => continue, // no valid way to be here
                    }
                }
            };
            for e in nfa.eps_edges(s) {
                let tag = match e.guard {
                    None => cur,
                    Some(g) => match self.spawn(g, node, new_runs, observer) {
                        InstRef::Resolved(true) => cur,
                        InstRef::Resolved(false) => continue,
                        InstRef::Pending(i) => self.arena.and_inst(cur, i),
                    },
                };
                merge(&mut builds, &mut work, e.target, tag);
            }
        }
        let mut out: ActiveSet = Vec::with_capacity(builds.len());
        for (s, b) in builds {
            let tag = if b.known_true {
                Tag::True
            } else {
                match self.arena.or_tags(&b.parts, false) {
                    Some(t) => t,
                    None => continue,
                }
            };
            out.push((s, tag));
        }
        out.sort_unstable_by_key(|(s, _)| *s);
        out
    }

    /// Instantiates predicate `pred` at `node` (cached per node).
    fn spawn(
        &mut self,
        pred: PredId,
        node: u32,
        new_runs: &mut Vec<RunId>,
        observer: &mut dyn EvalObserver,
    ) -> InstRef {
        if let Some(&r) = self.spawn_cache.get(&pred) {
            return r;
        }
        // Insert a placeholder to guard against accidental recursion on the
        // same predicate (impossible by construction: predicates form a
        // DAG).
        let result = match self.mfa.pred(pred) {
            Pred::True => InstRef::Resolved(true),
            Pred::TextEq(target) => {
                if let Some(resolver) = self.text_resolver {
                    InstRef::Resolved(resolver(node) == *target)
                } else {
                    let depth = self.frames.len();
                    let i = self.new_instance(
                        InstKind::TextEq {
                            buf: String::new(),
                            target: target.clone(),
                            depth,
                        },
                        node,
                        observer,
                    );
                    self.open_texteq.push(i);
                    InstRef::Pending(i)
                }
            }
            Pred::HasPath(sub_nfa) => {
                let sub_nfa = *sub_nfa;
                let i = self.new_instance(
                    InstKind::HasPath {
                        accepts: Vec::new(),
                    },
                    node,
                    observer,
                );
                let run_id = self.runs.len();
                self.runs.push(Run {
                    nfa: sub_nfa,
                    inst: Some(i),
                    dead: false,
                    stack: Vec::new(),
                });
                self.stats.runs_spawned += 1;
                // Cache before the recursive closure so diamond-shaped
                // sharing reuses the same instance.
                self.spawn_cache.insert(pred, InstRef::Pending(i));
                let start = self.mfa.nfa(sub_nfa).start();
                let set = self.closure(sub_nfa, &[(start, Tag::True)], node, new_runs, observer);
                self.process_accept(run_id, &set, node, observer);
                self.runs[run_id].stack.push(set);
                new_runs.push(run_id);
                if let Some(v) = self.truths[i] {
                    // Accept with a constant-true tag resolved it on the
                    // spot.
                    let r = InstRef::Resolved(v);
                    self.spawn_cache.insert(pred, r);
                    return r;
                }
                return InstRef::Pending(i);
            }
            Pred::Not(sub) => {
                let sub = *sub;
                match self.spawn(sub, node, new_runs, observer) {
                    InstRef::Resolved(b) => InstRef::Resolved(!b),
                    InstRef::Pending(si) => InstRef::Pending(self.new_instance(
                        InstKind::Not { sub: si },
                        node,
                        observer,
                    )),
                }
            }
            Pred::And(subs) => {
                let subs = subs.clone();
                let mut pending = Vec::new();
                let mut value = Some(true);
                for s in subs {
                    match self.spawn(s, node, new_runs, observer) {
                        InstRef::Resolved(false) => {
                            value = Some(false);
                            break;
                        }
                        InstRef::Resolved(true) => {}
                        InstRef::Pending(i) => pending.push(i),
                    }
                }
                match (value, pending.is_empty()) {
                    (Some(false), _) => InstRef::Resolved(false),
                    (_, true) => InstRef::Resolved(true),
                    _ => InstRef::Pending(self.new_instance(
                        InstKind::And { subs: pending },
                        node,
                        observer,
                    )),
                }
            }
            Pred::Or(subs) => {
                let subs = subs.clone();
                let mut pending = Vec::new();
                let mut value = Some(false);
                for s in subs {
                    match self.spawn(s, node, new_runs, observer) {
                        InstRef::Resolved(true) => {
                            value = Some(true);
                            break;
                        }
                        InstRef::Resolved(false) => {}
                        InstRef::Pending(i) => pending.push(i),
                    }
                }
                match (value, pending.is_empty()) {
                    (Some(true), _) => InstRef::Resolved(true),
                    (_, true) => InstRef::Resolved(false),
                    _ => InstRef::Pending(self.new_instance(
                        InstKind::Or { subs: pending },
                        node,
                        observer,
                    )),
                }
            }
        };
        self.spawn_cache.insert(pred, result);
        result
    }

    fn new_instance(
        &mut self,
        kind: InstKind,
        node: u32,
        observer: &mut dyn EvalObserver,
    ) -> InstId {
        let id = self.insts.len();
        self.insts.push(Instance { kind });
        self.truths.push(None);
        self.stats.pred_instances += 1;
        observer.instance_spawned(id, node);
        self.frames
            .last_mut()
            .expect("spawn inside a frame")
            .opened
            .push(id);
        id
    }
}
