//! The MFA (mixed finite state automaton) representation.
//!
//! The paper (§3, "Rewriter"): *"the size of Q′, if directly represented as
//! Regular XPath expressions, may be exponential in the size of Q. The
//! SMOQE rewriter overcomes the challenge by employing an automaton
//! characterization of Q′, denoted by MFA, which is linear in the size of
//! Q. An MFA of Q′ is a finite state automaton (NFA, characterizing the
//! data-selection path of Q′) annotated with alternating automata (AFA,
//! capturing the predicates of Q′)."*
//!
//! Our encoding: an [`Mfa`] is an arena of [`Nfa`]s plus an arena of
//! [`Pred`]icates.
//!
//! * Each NFA has consuming transitions labelled with a [`LabelTest`]
//!   (specific label or wildcard) and ε-edges. An ε-edge may carry a
//!   **guard** (a [`PredId`]): a run may traverse it at node *v* only if
//!   the predicate holds at *v*. Guards-on-ε-edges is how `p[q]` attaches
//!   its qualifier without losing *which* continuation depends on it.
//! * A predicate is a boolean combination of `text() = 'c'` tests and
//!   `HasPath` tests, where `HasPath` references another NFA in the same
//!   arena — whose own ε-edges may again carry guards. This nesting is the
//!   alternation of the paper's AFA for the qualifier language
//!   (negation appears only at the predicate level, as in the grammar).
//!
//! Every NFA has one start and one accept state (Thompson construction),
//! so the structure stays linear in the query size ([`MfaStats`] measures
//! it; experiment E2 regenerates the paper's linearity claim).

use smoqe_xml::{Label, Vocabulary};
use std::fmt;

/// State index within one [`Nfa`].
#[derive(Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StateId(pub u32);

/// Index of an NFA within an [`Mfa`] arena.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NfaId(pub u32);

/// Index of a predicate within an [`Mfa`] arena.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PredId(pub u32);

impl fmt::Debug for StateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}
impl fmt::Debug for NfaId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "N{}", self.0)
    }
}
impl fmt::Debug for PredId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

impl StateId {
    /// Dense index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}
impl NfaId {
    /// Dense index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}
impl PredId {
    /// Dense index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// What a consuming transition matches.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum LabelTest {
    /// A specific element label.
    Label(Label),
    /// Any element (`*`).
    Wildcard,
}

impl LabelTest {
    /// Whether the test matches `label`.
    #[inline]
    pub fn matches(self, label: Label) -> bool {
        match self {
            LabelTest::Label(l) => l == label,
            LabelTest::Wildcard => true,
        }
    }
}

/// A non-consuming edge, optionally guarded by a predicate that must hold
/// at the current node for a run to traverse it.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct EpsEdge {
    /// Target state.
    pub target: StateId,
    /// Predicate instantiated at the current node, if any.
    pub guard: Option<PredId>,
}

/// A consuming transition.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Transition {
    /// What child label the transition consumes.
    pub test: LabelTest,
    /// Target state.
    pub target: StateId,
}

/// One finite automaton of the MFA: either the selection path or the path
/// part of a `HasPath` predicate.
#[derive(Clone, Debug, Default)]
pub struct Nfa {
    eps: Vec<Vec<EpsEdge>>,
    trans: Vec<Vec<Transition>>,
    start: StateId,
    accept: StateId,
}

impl Nfa {
    /// An empty automaton (add states before use).
    pub fn new() -> Self {
        Nfa::default()
    }

    /// Adds a fresh state.
    pub fn add_state(&mut self) -> StateId {
        self.eps.push(Vec::new());
        self.trans.push(Vec::new());
        StateId((self.eps.len() - 1) as u32)
    }

    /// Adds an unguarded ε-edge.
    pub fn add_eps(&mut self, from: StateId, to: StateId) {
        self.eps[from.index()].push(EpsEdge {
            target: to,
            guard: None,
        });
    }

    /// Adds a guarded ε-edge.
    pub fn add_guarded_eps(&mut self, from: StateId, to: StateId, guard: PredId) {
        self.eps[from.index()].push(EpsEdge {
            target: to,
            guard: Some(guard),
        });
    }

    /// Adds a consuming transition.
    pub fn add_transition(&mut self, from: StateId, test: LabelTest, to: StateId) {
        self.trans[from.index()].push(Transition { test, target: to });
    }

    /// Sets the start state.
    pub fn set_start(&mut self, s: StateId) {
        self.start = s;
    }

    /// Sets the accept state.
    pub fn set_accept(&mut self, s: StateId) {
        self.accept = s;
    }

    /// The start state.
    pub fn start(&self) -> StateId {
        self.start
    }

    /// The accept state.
    pub fn accept(&self) -> StateId {
        self.accept
    }

    /// Whether `s` is the accept state.
    #[inline]
    pub fn is_accept(&self, s: StateId) -> bool {
        s == self.accept
    }

    /// Number of states.
    pub fn state_count(&self) -> usize {
        self.eps.len()
    }

    /// ε-edges out of `s`.
    #[inline]
    pub fn eps_edges(&self, s: StateId) -> &[EpsEdge] {
        &self.eps[s.index()]
    }

    /// Consuming transitions out of `s`.
    #[inline]
    pub fn transitions(&self, s: StateId) -> &[Transition] {
        &self.trans[s.index()]
    }

    /// Total number of consuming transitions.
    pub fn transition_count(&self) -> usize {
        self.trans.iter().map(Vec::len).sum()
    }

    /// Total number of ε-edges.
    pub fn eps_count(&self) -> usize {
        self.eps.iter().map(Vec::len).sum()
    }

    /// Whether any ε-edge carries a guard.
    pub fn has_guards(&self) -> bool {
        self.eps
            .iter()
            .any(|edges| edges.iter().any(|e| e.guard.is_some()))
    }

    /// All states, in index order.
    pub fn states(&self) -> impl Iterator<Item = StateId> {
        (0..self.eps.len() as u32).map(StateId)
    }
}

/// A predicate of the MFA's alternating layer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Pred {
    /// Always true.
    True,
    /// The context node's string value equals the constant.
    TextEq(String),
    /// Some downward path from the context node matches the referenced NFA
    /// (whose accept may itself be guarded — alternation).
    HasPath(NfaId),
    /// Negation.
    Not(PredId),
    /// Conjunction.
    And(Vec<PredId>),
    /// Disjunction.
    Or(Vec<PredId>),
}

/// A mixed finite automaton: the compiled, automaton form of a Regular
/// XPath query (or of a rewritten query over a view).
#[derive(Clone, Debug)]
pub struct Mfa {
    nfas: Vec<Nfa>,
    preds: Vec<Pred>,
    top: NfaId,
    vocab: Vocabulary,
}

impl Mfa {
    /// Creates an MFA from raw parts (used by the builder and rewriter).
    pub fn from_parts(nfas: Vec<Nfa>, preds: Vec<Pred>, top: NfaId, vocab: Vocabulary) -> Self {
        assert!(top.index() < nfas.len(), "top NFA out of range");
        Mfa {
            nfas,
            preds,
            top,
            vocab,
        }
    }

    /// The selection-path NFA.
    pub fn top(&self) -> NfaId {
        self.top
    }

    /// Access an NFA by id.
    #[inline]
    pub fn nfa(&self, id: NfaId) -> &Nfa {
        &self.nfas[id.index()]
    }

    /// Access a predicate by id.
    #[inline]
    pub fn pred(&self, id: PredId) -> &Pred {
        &self.preds[id.index()]
    }

    /// All NFAs with their ids.
    pub fn nfas(&self) -> impl Iterator<Item = (NfaId, &Nfa)> {
        self.nfas
            .iter()
            .enumerate()
            .map(|(i, n)| (NfaId(i as u32), n))
    }

    /// All predicates with their ids.
    pub fn preds(&self) -> impl Iterator<Item = (PredId, &Pred)> {
        self.preds
            .iter()
            .enumerate()
            .map(|(i, p)| (PredId(i as u32), p))
    }

    /// Number of NFAs.
    pub fn nfa_count(&self) -> usize {
        self.nfas.len()
    }

    /// Number of predicates.
    pub fn pred_count(&self) -> usize {
        self.preds.len()
    }

    /// The vocabulary transition labels refer to.
    pub fn vocabulary(&self) -> &Vocabulary {
        &self.vocab
    }

    /// Size metrics (experiment E2 plots these against query size).
    pub fn stats(&self) -> MfaStats {
        MfaStats {
            nfas: self.nfas.len(),
            states: self.nfas.iter().map(Nfa::state_count).sum(),
            transitions: self.nfas.iter().map(Nfa::transition_count).sum(),
            eps_edges: self.nfas.iter().map(Nfa::eps_count).sum(),
            preds: self.preds.len(),
        }
    }
}

/// Size metrics of an [`Mfa`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MfaStats {
    /// Number of NFAs (1 + one per `HasPath`).
    pub nfas: usize,
    /// Total states across all NFAs.
    pub states: usize,
    /// Total consuming transitions.
    pub transitions: usize,
    /// Total ε-edges.
    pub eps_edges: usize,
    /// Number of predicate nodes.
    pub preds: usize,
}

impl MfaStats {
    /// A single scalar "size" (states + transitions + ε + preds), used for
    /// growth curves.
    pub fn total(&self) -> usize {
        self.states + self.transitions + self.eps_edges + self.preds
    }
}

impl fmt::Display for MfaStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} NFA(s), {} states, {} transitions, {} eps, {} preds (total {})",
            self.nfas,
            self.states,
            self.transitions,
            self.eps_edges,
            self.preds,
            self.total()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nfa_construction_basics() {
        let mut n = Nfa::new();
        let a = n.add_state();
        let b = n.add_state();
        let vocab = Vocabulary::new();
        let l = vocab.intern("x");
        n.add_transition(a, LabelTest::Label(l), b);
        n.add_eps(a, b);
        n.set_start(a);
        n.set_accept(b);
        assert_eq!(n.state_count(), 2);
        assert_eq!(n.transition_count(), 1);
        assert_eq!(n.eps_count(), 1);
        assert!(n.is_accept(b));
        assert!(!n.has_guards());
    }

    #[test]
    fn label_test_matching() {
        let vocab = Vocabulary::new();
        let a = vocab.intern("a");
        let b = vocab.intern("b");
        assert!(LabelTest::Label(a).matches(a));
        assert!(!LabelTest::Label(a).matches(b));
        assert!(LabelTest::Wildcard.matches(a));
        assert!(LabelTest::Wildcard.matches(b));
    }

    #[test]
    fn guarded_edges_detected() {
        let mut n = Nfa::new();
        let a = n.add_state();
        let b = n.add_state();
        n.add_guarded_eps(a, b, PredId(0));
        assert!(n.has_guards());
    }

    #[test]
    fn mfa_stats_sum_over_nfas() {
        let vocab = Vocabulary::new();
        let l = vocab.intern("a");
        let mut n1 = Nfa::new();
        let s = n1.add_state();
        let t = n1.add_state();
        n1.add_transition(s, LabelTest::Label(l), t);
        n1.set_start(s);
        n1.set_accept(t);
        let mut n2 = Nfa::new();
        let u = n2.add_state();
        n2.set_start(u);
        n2.set_accept(u);
        let mfa = Mfa::from_parts(vec![n1, n2], vec![Pred::True], NfaId(0), vocab);
        let st = mfa.stats();
        assert_eq!(st.nfas, 2);
        assert_eq!(st.states, 3);
        assert_eq!(st.transitions, 1);
        assert_eq!(st.preds, 1);
        assert_eq!(st.total(), 3 + 1 + 1);
    }

    #[test]
    #[should_panic(expected = "top NFA out of range")]
    fn from_parts_validates_top() {
        let vocab = Vocabulary::new();
        let _ = Mfa::from_parts(vec![], vec![], NfaId(0), vocab);
    }
}
