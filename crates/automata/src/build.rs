//! Compiling Regular XPath into MFAs (Thompson construction).
//!
//! The construction is linear: every AST node contributes O(1) states and
//! edges, and every qualifier contributes one guarded ε-edge plus (for its
//! embedded paths) sub-NFAs built the same way. This is the property that
//! lets the rewriter keep rewritten queries linear-size where the syntactic
//! representation would explode (paper §3, experiment E2).

use crate::mfa::{LabelTest, Mfa, Nfa, NfaId, Pred, PredId, StateId};
use smoqe_rxpath::{Path, Qualifier};
use smoqe_xml::Vocabulary;

/// Compiles a Regular XPath path into an MFA.
///
/// ```
/// use smoqe_automata::compile;
/// use smoqe_rxpath::parse_path;
/// use smoqe_xml::Vocabulary;
/// let vocab = Vocabulary::new();
/// let q = parse_path("a/b[c and not(d)]/e", &vocab).unwrap();
/// let mfa = compile(&q, &vocab);
/// // Linear in the query size.
/// assert!(mfa.stats().total() < 10 * q.size());
/// ```
pub fn compile(path: &Path, vocab: &Vocabulary) -> Mfa {
    let mut b = Builder {
        nfas: Vec::new(),
        preds: Vec::new(),
    };
    let top = b.build_path_nfa(path);
    Mfa::from_parts(b.nfas, b.preds, top, vocab.clone())
}

/// Compiles a standalone qualifier into an MFA predicate; returns the MFA
/// of the qualifier's machinery plus the root predicate id. The MFA's `top`
/// NFA is a trivial ε-accepting automaton whose accept edge is guarded by
/// the predicate, so evaluating the MFA at a node set yields exactly the
/// nodes satisfying the qualifier.
pub fn compile_qualifier(qual: &Qualifier, vocab: &Vocabulary) -> (Mfa, PredId) {
    let mut b = Builder {
        nfas: Vec::new(),
        preds: Vec::new(),
    };
    let pred = b.build_pred(qual);
    // top: start --[guard]--> accept, no consuming transitions.
    let mut nfa = Nfa::new();
    let s = nfa.add_state();
    let t = nfa.add_state();
    nfa.add_guarded_eps(s, t, pred);
    nfa.set_start(s);
    nfa.set_accept(t);
    b.nfas.push(nfa);
    let top = NfaId((b.nfas.len() - 1) as u32);
    (Mfa::from_parts(b.nfas, b.preds, top, vocab.clone()), pred)
}

/// Incremental MFA builder, also used by the view rewriter to assemble
/// rewritten automata from σ fragments.
pub struct Builder {
    /// NFA arena under construction.
    pub nfas: Vec<Nfa>,
    /// Predicate arena under construction.
    pub preds: Vec<Pred>,
}

impl Default for Builder {
    fn default() -> Self {
        Self::new()
    }
}

impl Builder {
    /// An empty builder.
    pub fn new() -> Self {
        Builder {
            nfas: Vec::new(),
            preds: Vec::new(),
        }
    }

    /// Finishes the build with the given top NFA.
    pub fn finish(self, top: NfaId, vocab: &Vocabulary) -> Mfa {
        Mfa::from_parts(self.nfas, self.preds, top, vocab.clone())
    }

    /// Interns a predicate node.
    pub fn add_pred(&mut self, pred: Pred) -> PredId {
        // Constants and simple text tests are worth deduplicating; preds
        // with NFA references are unique anyway.
        if matches!(pred, Pred::True | Pred::TextEq(_)) {
            if let Some(i) = self.preds.iter().position(|p| *p == pred) {
                return PredId(i as u32);
            }
        }
        self.preds.push(pred);
        PredId((self.preds.len() - 1) as u32)
    }

    /// Builds a complete NFA for `path` and returns its id.
    pub fn build_path_nfa(&mut self, path: &Path) -> NfaId {
        let mut nfa = Nfa::new();
        let start = nfa.add_state();
        let accept = nfa.add_state();
        nfa.set_start(start);
        nfa.set_accept(accept);
        // The fragment builder needs `self` for nested predicates, so the
        // NFA is threaded explicitly.
        self.fragment(&mut nfa, path, start, accept);
        self.nfas.push(nfa);
        NfaId((self.nfas.len() - 1) as u32)
    }

    /// Wires `path` between `from` and `to` inside `nfa`.
    pub fn fragment(&mut self, nfa: &mut Nfa, path: &Path, from: StateId, to: StateId) {
        match path {
            Path::Empty => nfa.add_eps(from, to),
            Path::Label(l) => nfa.add_transition(from, LabelTest::Label(*l), to),
            Path::Wildcard => nfa.add_transition(from, LabelTest::Wildcard, to),
            Path::Seq(parts) => {
                let mut cur = from;
                for (i, p) in parts.iter().enumerate() {
                    let next = if i + 1 == parts.len() {
                        to
                    } else {
                        nfa.add_state()
                    };
                    self.fragment(nfa, p, cur, next);
                    cur = next;
                }
                if parts.is_empty() {
                    nfa.add_eps(from, to);
                }
            }
            Path::Union(parts) => {
                for p in parts {
                    self.fragment(nfa, p, from, to);
                }
                if parts.is_empty() {
                    nfa.add_eps(from, to);
                }
            }
            Path::Star(inner) => {
                // from -> hub; hub -> to; hub -> [inner] -> back -> hub.
                let hub = nfa.add_state();
                nfa.add_eps(from, hub);
                nfa.add_eps(hub, to);
                let back = nfa.add_state();
                self.fragment(nfa, inner, hub, back);
                nfa.add_eps(back, hub);
            }
            Path::Qualified(inner, qual) => {
                // from -> [inner] -> mid --{guard q}--> to.
                let mid = nfa.add_state();
                self.fragment(nfa, inner, from, mid);
                let pred = self.build_pred(qual);
                nfa.add_guarded_eps(mid, to, pred);
            }
        }
    }

    /// Compiles a qualifier into the predicate arena.
    pub fn build_pred(&mut self, qual: &Qualifier) -> PredId {
        match qual {
            Qualifier::True => self.add_pred(Pred::True),
            Qualifier::Exists(p) => {
                let nfa = self.build_path_nfa(p);
                self.add_pred(Pred::HasPath(nfa))
            }
            Qualifier::TextEq(p, value) => {
                if *p == Path::Empty {
                    self.add_pred(Pred::TextEq(value.clone()))
                } else {
                    // HasPath over p, with the accept reachable only
                    // through a TextEq guard: the witness node itself must
                    // carry the text.
                    let text_pred = self.add_pred(Pred::TextEq(value.clone()));
                    let mut nfa = Nfa::new();
                    let start = nfa.add_state();
                    let mid = nfa.add_state();
                    let accept = nfa.add_state();
                    nfa.set_start(start);
                    nfa.set_accept(accept);
                    self.fragment(&mut nfa, p, start, mid);
                    nfa.add_guarded_eps(mid, accept, text_pred);
                    self.nfas.push(nfa);
                    let id = NfaId((self.nfas.len() - 1) as u32);
                    self.add_pred(Pred::HasPath(id))
                }
            }
            Qualifier::Not(inner) => {
                let p = self.build_pred(inner);
                self.add_pred(Pred::Not(p))
            }
            Qualifier::And(a, b) => {
                let pa = self.build_pred(a);
                let pb = self.build_pred(b);
                self.add_pred(Pred::And(vec![pa, pb]))
            }
            Qualifier::Or(a, b) => {
                let pa = self.build_pred(a);
                let pb = self.build_pred(b);
                self.add_pred(Pred::Or(vec![pa, pb]))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smoqe_rxpath::parse_path;

    fn mfa_for(q: &str) -> (Vocabulary, Mfa) {
        let vocab = Vocabulary::new();
        let p = parse_path(q, &vocab).unwrap();
        let mfa = compile(&p, &vocab);
        (vocab, mfa)
    }

    #[test]
    fn simple_path_is_small() {
        let (_, mfa) = mfa_for("a/b/c");
        assert_eq!(mfa.nfa_count(), 1);
        assert_eq!(mfa.pred_count(), 0);
        let top = mfa.nfa(mfa.top());
        assert_eq!(top.transition_count(), 3);
        // start + accept + 2 intermediate.
        assert_eq!(top.state_count(), 4);
    }

    #[test]
    fn qualifier_creates_subnfa_and_guard() {
        let (_, mfa) = mfa_for("a[b]");
        assert_eq!(mfa.nfa_count(), 2); // top + HasPath(b)
        assert_eq!(mfa.pred_count(), 1);
        assert!(mfa.nfa(mfa.top()).has_guards());
        match mfa.pred(PredId(0)) {
            Pred::HasPath(n) => assert_eq!(mfa.nfa(*n).transition_count(), 1),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn text_comparison_guards_witness() {
        let (_, mfa) = mfa_for("a[b = 'v']");
        // Preds: TextEq + HasPath.
        assert_eq!(mfa.pred_count(), 2);
        let has_path_nfa = mfa
            .preds()
            .find_map(|(_, p)| match p {
                Pred::HasPath(n) => Some(*n),
                _ => None,
            })
            .expect("HasPath pred");
        assert!(mfa.nfa(has_path_nfa).has_guards());
    }

    #[test]
    fn star_builds_loop() {
        let (vocab, mfa) = mfa_for("(a/b)*");
        let top = mfa.nfa(mfa.top());
        assert_eq!(top.transition_count(), 2);
        // A run can cycle: reachable transitions on 'a' from accept-side hub.
        let _ = vocab;
        assert!(top.eps_count() >= 3);
    }

    #[test]
    fn construction_is_linear_in_query_size() {
        // Nested closures and qualifiers of growing depth.
        let vocab = Vocabulary::new();
        let mut sizes = Vec::new();
        for n in 1..=8 {
            let mut q = String::from("a");
            for _ in 0..n {
                q = format!("(b/{q})*/c[d and e = 'v']");
            }
            let p = parse_path(&q, &vocab).unwrap();
            let mfa = compile(&p, &vocab);
            sizes.push((p.size(), mfa.stats().total()));
        }
        for w in sizes.windows(2) {
            let (s1, m1) = w[0];
            let (s2, m2) = w[1];
            // Growth of the MFA tracks growth of the query linearly
            // (ratio bounded by a constant).
            let query_growth = s2 as f64 / s1 as f64;
            let mfa_growth = m2 as f64 / m1 as f64;
            assert!(
                mfa_growth <= query_growth * 1.5 + 0.5,
                "superlinear: query x{query_growth:.2}, mfa x{mfa_growth:.2}"
            );
        }
    }

    #[test]
    fn true_pred_dedups() {
        let mut b = Builder::new();
        let p1 = b.add_pred(Pred::True);
        let p2 = b.add_pred(Pred::True);
        assert_eq!(p1, p2);
        let t1 = b.add_pred(Pred::TextEq("x".into()));
        let t2 = b.add_pred(Pred::TextEq("x".into()));
        let t3 = b.add_pred(Pred::TextEq("y".into()));
        assert_eq!(t1, t2);
        assert_ne!(t1, t3);
    }

    #[test]
    fn compile_qualifier_wraps_in_trivial_top() {
        let vocab = Vocabulary::new();
        let q = smoqe_rxpath::parse_qualifier("b and not(c)", &vocab).unwrap();
        let (mfa, root) = compile_qualifier(&q, &vocab);
        assert!(matches!(mfa.pred(root), Pred::And(_)));
        let top = mfa.nfa(mfa.top());
        assert_eq!(top.transition_count(), 0);
        assert!(top.has_guards());
    }
}
