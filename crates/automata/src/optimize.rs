//! MFA optimization: trimming and garbage collection.
//!
//! The demo toggles "various optimization techniques" and visualizes their
//! contribution (§3). The optimizer here performs:
//!
//! 1. **state trimming** per NFA — states that are unreachable from the
//!    start or cannot reach the accept state are removed (rewriting over
//!    views routinely produces both kinds);
//! 2. **edge deduplication** — parallel identical transitions collapse;
//! 3. **mark-and-sweep across arenas** — predicates no longer referenced
//!    by any surviving guard edge, and `HasPath` NFAs no longer referenced
//!    by any surviving predicate, are dropped, with ids densely renumbered.
//!
//! Optimization never changes semantics (property-tested in the evaluator
//! crates); the `eval_engines`/ablation benchmarks measure its effect.

use crate::analysis::{coreachable_states, reachable_states};
use crate::mfa::{Mfa, Nfa, NfaId, Pred, PredId, StateId};
use std::collections::HashSet;

/// Optimizes an MFA (see module docs). The result accepts exactly the same
/// node sets as the input.
pub fn optimize(mfa: &Mfa) -> Mfa {
    // Phase 1: trim each NFA independently (lazily, on demand).
    // Phase 2: mark live NFAs and predicates starting from the top NFA.
    let mut live_nfas: Vec<bool> = vec![false; mfa.nfa_count()];
    let mut live_preds: Vec<bool> = vec![false; mfa.pred_count()];
    let mut trimmed: Vec<Option<Nfa>> = (0..mfa.nfa_count()).map(|_| None).collect();

    let mut nfa_work = vec![mfa.top()];
    live_nfas[mfa.top().index()] = true;
    let mut pred_work: Vec<PredId> = Vec::new();
    while !nfa_work.is_empty() || !pred_work.is_empty() {
        while let Some(nid) = nfa_work.pop() {
            let t = trim(mfa.nfa(nid));
            // Guards on surviving edges keep their predicates alive.
            for s in t.states() {
                for e in t.eps_edges(s) {
                    if let Some(p) = e.guard {
                        if !live_preds[p.index()] {
                            live_preds[p.index()] = true;
                            pred_work.push(p);
                        }
                    }
                }
            }
            trimmed[nid.index()] = Some(t);
        }
        while let Some(pid) = pred_work.pop() {
            match mfa.pred(pid) {
                Pred::True | Pred::TextEq(_) => {}
                Pred::HasPath(n) => {
                    if !live_nfas[n.index()] {
                        live_nfas[n.index()] = true;
                        nfa_work.push(*n);
                    }
                }
                Pred::Not(p) => {
                    if !live_preds[p.index()] {
                        live_preds[p.index()] = true;
                        pred_work.push(*p);
                    }
                }
                Pred::And(ps) | Pred::Or(ps) => {
                    for &p in ps {
                        if !live_preds[p.index()] {
                            live_preds[p.index()] = true;
                            pred_work.push(p);
                        }
                    }
                }
            }
        }
    }

    // Phase 3: dense renumbering.
    let mut nfa_map: Vec<Option<NfaId>> = vec![None; mfa.nfa_count()];
    let mut next = 0u32;
    for i in 0..mfa.nfa_count() {
        if live_nfas[i] {
            nfa_map[i] = Some(NfaId(next));
            next += 1;
        }
    }
    let mut pred_map: Vec<Option<PredId>> = vec![None; mfa.pred_count()];
    let mut next = 0u32;
    for i in 0..mfa.pred_count() {
        if live_preds[i] {
            pred_map[i] = Some(PredId(next));
            next += 1;
        }
    }

    let mut new_nfas: Vec<Nfa> = Vec::new();
    for (i, keep) in live_nfas.iter().enumerate() {
        if !keep {
            continue;
        }
        let mut nfa = trimmed[i].take().expect("live NFA was trimmed");
        remap_guards(&mut nfa, &pred_map);
        new_nfas.push(nfa);
    }
    let mut new_preds: Vec<Pred> = Vec::new();
    for (i, keep) in live_preds.iter().enumerate() {
        if !keep {
            continue;
        }
        let p = match mfa.pred(PredId(i as u32)) {
            Pred::True => Pred::True,
            Pred::TextEq(s) => Pred::TextEq(s.clone()),
            Pred::HasPath(n) => Pred::HasPath(nfa_map[n.index()].expect("live pred's NFA")),
            Pred::Not(p) => Pred::Not(pred_map[p.index()].expect("live pred's child")),
            Pred::And(ps) => Pred::And(
                ps.iter()
                    .map(|p| pred_map[p.index()].expect("live pred's child"))
                    .collect(),
            ),
            Pred::Or(ps) => Pred::Or(
                ps.iter()
                    .map(|p| pred_map[p.index()].expect("live pred's child"))
                    .collect(),
            ),
        };
        new_preds.push(p);
    }
    let top = nfa_map[mfa.top().index()].expect("top is live");
    Mfa::from_parts(new_nfas, new_preds, top, mfa.vocabulary().clone())
}

fn remap_guards(nfa: &mut Nfa, pred_map: &[Option<PredId>]) {
    // Rebuild edges with remapped guard ids.
    let mut rebuilt = Nfa::new();
    for _ in 0..nfa.state_count() {
        rebuilt.add_state();
    }
    rebuilt.set_start(nfa.start());
    rebuilt.set_accept(nfa.accept());
    for s in nfa.states() {
        for e in nfa.eps_edges(s) {
            match e.guard {
                Some(g) => rebuilt.add_guarded_eps(
                    s,
                    e.target,
                    pred_map[g.index()].expect("guard pred is live"),
                ),
                None => rebuilt.add_eps(s, e.target),
            }
        }
        for t in nfa.transitions(s) {
            rebuilt.add_transition(s, t.test, t.target);
        }
    }
    *nfa = rebuilt;
}

/// Trims one NFA: keeps states that are reachable from the start *and* can
/// reach the accept state; deduplicates edges. If the automaton accepts
/// nothing, a canonical two-state dead NFA is returned.
pub fn trim(nfa: &Nfa) -> Nfa {
    let reach = reachable_states(nfa);
    let coreach = coreachable_states(nfa);
    let keep: Vec<bool> = reach
        .iter()
        .zip(coreach.iter())
        .map(|(&r, &c)| r && c)
        .collect();
    if nfa.state_count() == 0 || !keep[nfa.start().index()] {
        // The language is empty: canonical dead automaton.
        let mut dead = Nfa::new();
        let s = dead.add_state();
        let t = dead.add_state();
        dead.set_start(s);
        dead.set_accept(t);
        return dead;
    }
    let mut map: Vec<Option<StateId>> = vec![None; nfa.state_count()];
    let mut out = Nfa::new();
    for s in nfa.states() {
        if keep[s.index()] {
            map[s.index()] = Some(out.add_state());
        }
    }
    out.set_start(map[nfa.start().index()].expect("start kept"));
    out.set_accept(map[nfa.accept().index()].expect("accept kept"));
    let mut seen_eps: HashSet<(StateId, StateId, Option<PredId>)> = HashSet::new();
    let mut seen_trans: HashSet<(StateId, crate::mfa::LabelTest, StateId)> = HashSet::new();
    for s in nfa.states() {
        let Some(ns) = map[s.index()] else { continue };
        for e in nfa.eps_edges(s) {
            if let Some(nt) = map[e.target.index()] {
                if seen_eps.insert((ns, nt, e.guard)) && ns != nt {
                    match e.guard {
                        Some(g) => out.add_guarded_eps(ns, nt, g),
                        None => out.add_eps(ns, nt),
                    }
                }
            }
        }
        for t in nfa.transitions(s) {
            if let Some(nt) = map[t.target.index()] {
                if seen_trans.insert((ns, t.test, nt)) {
                    out.add_transition(ns, t.test, nt);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::accepts_word_unguarded;
    use crate::build::compile;
    use smoqe_rxpath::parse_path;
    use smoqe_xml::Vocabulary;

    #[test]
    fn trim_removes_dead_and_unreachable() {
        let vocab = Vocabulary::new();
        let a = vocab.intern("a");
        let mut nfa = Nfa::new();
        let s = nfa.add_state();
        let t = nfa.add_state();
        let dead = nfa.add_state();
        let orphan = nfa.add_state();
        nfa.set_start(s);
        nfa.set_accept(t);
        nfa.add_transition(s, crate::mfa::LabelTest::Label(a), t);
        nfa.add_transition(s, crate::mfa::LabelTest::Label(a), dead);
        nfa.add_transition(orphan, crate::mfa::LabelTest::Label(a), t);
        let trimmed = trim(&nfa);
        assert_eq!(trimmed.state_count(), 2);
        assert!(accepts_word_unguarded(&trimmed, &[a]));
        assert!(!accepts_word_unguarded(&trimmed, &[a, a]));
    }

    #[test]
    fn trim_dedups_edges() {
        let vocab = Vocabulary::new();
        let a = vocab.intern("a");
        let mut nfa = Nfa::new();
        let s = nfa.add_state();
        let t = nfa.add_state();
        nfa.set_start(s);
        nfa.set_accept(t);
        nfa.add_transition(s, crate::mfa::LabelTest::Label(a), t);
        nfa.add_transition(s, crate::mfa::LabelTest::Label(a), t);
        nfa.add_eps(s, t);
        nfa.add_eps(s, t);
        let trimmed = trim(&nfa);
        assert_eq!(trimmed.transition_count(), 1);
        assert_eq!(trimmed.eps_count(), 1);
    }

    #[test]
    fn empty_language_becomes_canonical_dead() {
        let vocab = Vocabulary::new();
        let a = vocab.intern("a");
        let mut nfa = Nfa::new();
        let s = nfa.add_state();
        let t = nfa.add_state();
        let u = nfa.add_state();
        nfa.set_start(s);
        nfa.set_accept(t);
        // accept unreachable.
        nfa.add_transition(s, crate::mfa::LabelTest::Label(a), u);
        let trimmed = trim(&nfa);
        assert_eq!(trimmed.state_count(), 2);
        assert_eq!(trimmed.transition_count(), 0);
        assert!(!accepts_word_unguarded(&trimmed, &[]));
        assert!(!accepts_word_unguarded(&trimmed, &[a]));
    }

    #[test]
    fn optimize_preserves_acceptance() {
        let vocab = Vocabulary::new();
        let queries = ["a/b/c", "(a/b)*/c", "a/(b | c)/d", "//x"];
        for q in queries {
            let p = parse_path(q, &vocab).unwrap();
            let mfa = compile(&p, &vocab);
            let opt = optimize(&mfa);
            assert!(opt.stats().total() <= mfa.stats().total());
            let words: Vec<Vec<smoqe_xml::Label>> = vec![
                vec![],
                vec![vocab.intern("a")],
                vec![vocab.intern("a"), vocab.intern("b"), vocab.intern("c")],
                vec![vocab.intern("c")],
                vec![vocab.intern("a"), vocab.intern("c"), vocab.intern("d")],
                vec![vocab.intern("x")],
                vec![vocab.intern("a"), vocab.intern("x")],
            ];
            for w in &words {
                assert_eq!(
                    accepts_word_unguarded(mfa.nfa(mfa.top()), w),
                    accepts_word_unguarded(opt.nfa(opt.top()), w),
                    "query {q}, word {w:?}"
                );
            }
        }
    }

    #[test]
    fn optimize_collects_dead_predicates() {
        // A qualifier inside a branch that cannot reach acceptance: the
        // union arm b[q]/zzz where zzz... build manually. Simpler: compile
        // a[b] and check pred survives; then break its guard edge by
        // optimizing a query whose guard is on a dead branch.
        let vocab = Vocabulary::new();
        let p = parse_path("a[b]", &vocab).unwrap();
        let mfa = compile(&p, &vocab);
        let opt = optimize(&mfa);
        assert_eq!(opt.pred_count(), 1);
        assert_eq!(opt.nfa_count(), 2);
    }

    #[test]
    fn optimize_is_idempotent() {
        let vocab = Vocabulary::new();
        let p = parse_path("(a/b)*/c[d and e = 'v']", &vocab).unwrap();
        let once = optimize(&compile(&p, &vocab));
        let twice = optimize(&once);
        assert_eq!(once.stats(), twice.stats());
    }
}
