//! Value-guard classification for jump-scan trigger narrowing.
//!
//! Jump-scan evaluation wants to know when a guarded ε-edge's predicate
//! pins a node's *text value*: those guards translate into posting-list
//! lookups on the (label, value) index instead of subtree walks. Two shapes
//! cover the canonical forms `build.rs` emits:
//!
//! * `[. = 'v']` / `[text() = 'v']` compiles to a bare [`Pred::TextEq`] —
//!   the guarded node itself must carry the text ([`ValueGuard::SelfText`]).
//! * `[b = 'v']` compiles to a [`Pred::HasPath`] whose sub-NFA is exactly
//!   `start --Label(b)--> mid --ε[TextEq(v)]--> accept` — some *child*
//!   labelled `b` must carry the text ([`ValueGuard::ChildText`]).
//!
//! Anything else (deeper witness paths, negation, disjunction, wildcard
//! steps) classifies as `None` and the caller falls back to unnarrowed
//! triggers. The check is purely structural, so a rewritten plan whose
//! sub-NFA happens to match the shape benefits too.

use crate::mfa::{LabelTest, Mfa, Nfa, Pred, PredId};
use smoqe_xml::Label;

/// A predicate that pins a text value, recognized by
/// [`classify_value_guard`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ValueGuard {
    /// The guarded node's own direct text must equal the value.
    SelfText(String),
    /// Some child with the given label must have the value as direct text.
    ChildText(Label, String),
}

/// Classifies `pred` as a value guard, if it has one of the two canonical
/// text-comparison shapes. Empty values never classify: the value index
/// only posts nodes with non-empty direct text, so narrowing on `""` would
/// drop real witnesses.
pub fn classify_value_guard(mfa: &Mfa, pred: PredId) -> Option<ValueGuard> {
    match mfa.pred(pred) {
        Pred::TextEq(v) if !v.is_empty() => Some(ValueGuard::SelfText(v.clone())),
        Pred::HasPath(sub) => classify_child_text(mfa, mfa.nfa(*sub)),
        _ => None,
    }
}

/// Matches the exact `start --Label(b)--> mid --ε[TextEq(v)]--> accept`
/// shape (three distinct states, no other edges).
fn classify_child_text(mfa: &Mfa, nfa: &Nfa) -> Option<ValueGuard> {
    if nfa.state_count() != 3 {
        return None;
    }
    let start = nfa.start();
    let accept = nfa.accept();
    if !nfa.eps_edges(start).is_empty() || nfa.transitions(start).len() != 1 {
        return None;
    }
    let step = nfa.transitions(start)[0];
    let label = match step.test {
        LabelTest::Label(l) => l,
        LabelTest::Wildcard => return None,
    };
    let mid = step.target;
    if mid == start || mid == accept || start == accept {
        return None;
    }
    if !nfa.transitions(mid).is_empty() || nfa.eps_edges(mid).len() != 1 {
        return None;
    }
    let eps = nfa.eps_edges(mid)[0];
    if eps.target != accept {
        return None;
    }
    let guard = eps.guard?;
    if !nfa.eps_edges(accept).is_empty() || !nfa.transitions(accept).is_empty() {
        return None;
    }
    match mfa.pred(guard) {
        Pred::TextEq(v) if !v.is_empty() => Some(ValueGuard::ChildText(label, v.clone())),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::compile;
    use smoqe_rxpath::parse_path;
    use smoqe_xml::Vocabulary;

    fn mfa_for(q: &str) -> (Vocabulary, Mfa) {
        let vocab = Vocabulary::new();
        let path = parse_path(q, &vocab).unwrap();
        let mfa = compile(&path, &vocab);
        (vocab, mfa)
    }

    /// All guards appearing on the top NFA's ε-edges, classified.
    fn top_guards(mfa: &Mfa) -> Vec<Option<ValueGuard>> {
        let nfa = mfa.nfa(mfa.top());
        nfa.states()
            .flat_map(|s| nfa.eps_edges(s))
            .filter_map(|e| e.guard)
            .map(|g| classify_value_guard(mfa, g))
            .collect()
    }

    #[test]
    fn self_text_classifies() {
        let (_, mfa) = mfa_for("a[. = 'v']");
        let guards = top_guards(&mfa);
        assert_eq!(guards, vec![Some(ValueGuard::SelfText("v".into()))]);
    }

    #[test]
    fn child_text_classifies() {
        let (vocab, mfa) = mfa_for("a[b = 'hello']");
        let b = vocab.lookup("b").unwrap();
        let guards = top_guards(&mfa);
        assert_eq!(guards, vec![Some(ValueGuard::ChildText(b, "hello".into()))]);
    }

    #[test]
    fn structural_and_complex_guards_do_not_classify() {
        for q in [
            "a[b]",            // existence, no value
            "a[b/c = 'v']",    // witness two steps down
            "a[not(b = 'v')]", // negation
            "a[b = 'v' or c]", // disjunction
            "a[* = 'v']",      // wildcard child step
        ] {
            let (_, mfa) = mfa_for(q);
            let guards = top_guards(&mfa);
            assert!(!guards.is_empty(), "{q} should have guards");
            assert!(
                guards.iter().all(Option::is_none),
                "{q} must not classify: {guards:?}"
            );
        }
    }

    #[test]
    fn empty_value_does_not_classify() {
        let (_, mfa) = mfa_for("a[. = '']");
        let guards = top_guards(&mfa);
        assert!(guards.iter().all(Option::is_none));
    }

    #[test]
    fn descendant_witness_does_not_classify() {
        // `a[//b = 'v']` walks arbitrarily deep — more than 3 states.
        let (_, mfa) = mfa_for("a[.//b = 'v']");
        let guards = top_guards(&mfa);
        assert!(guards.iter().all(Option::is_none));
    }
}
