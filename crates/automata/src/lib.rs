//! # smoqe-automata — mixed finite automata (MFA)
//!
//! The MFA is SMOQE's central data structure (paper §3): an NFA for the
//! data-selection path of a Regular XPath query, annotated with alternating
//! predicate automata for its qualifiers. MFAs are what the rewriter emits
//! (keeping rewritten queries linear-size) and what the HyPE evaluator
//! runs.
//!
//! * [`mfa`] — the arena representation ([`Mfa`], [`Nfa`], [`Pred`]);
//! * [`build`] — linear Thompson compilation from Regular XPath
//!   ([`compile`]);
//! * [`analysis`] — required-label analysis powering TAX pruning, plus
//!   reachability and guard-free simulation helpers;
//! * [`guards`] — value-guard classification ([`classify_value_guard`]):
//!   recognizes `text() = 'v'`-shaped predicates so jump-scan can narrow
//!   trigger sets to (label, value) posting lists;
//! * [`optimize`] — trimming + cross-arena garbage collection
//!   ([`optimize::optimize`]), the "optimization techniques" the demo
//!   toggles;
//! * [`compile`](mod@compile) — compiled evaluation plans
//!   ([`CompiledMfa`]): per-plan ε-closure precompute, subset-construction
//!   DFAs for the guard-free fragment, dense label-column transition
//!   tables and hoisted required-label analysis. This is the form the HyPE
//!   hot loop executes; the plan cache shares it engine-wide.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod build;
pub mod compile;
pub mod guards;
pub mod mfa;
pub mod optimize;

pub use build::{compile, compile_qualifier, Builder};
pub use compile::CompiledMfa;
pub use guards::{classify_value_guard, ValueGuard};
pub use mfa::{EpsEdge, LabelTest, Mfa, MfaStats, Nfa, NfaId, Pred, PredId, StateId, Transition};
