//! Compiled evaluation plans: the table form of an [`Mfa`] that the HyPE
//! hot loop actually executes.
//!
//! Interpreting the MFA per event — runtime ε-closures, linear scans over
//! transition lists, hash maps in the per-node path — leaves a lot of the
//! paper's "one pass at raw speed" promise on the table. This module
//! precomputes, **once per plan** (amortized engine-wide through the plan
//! cache):
//!
//! 1. **Guard-aware ε-closures** per state: the full ε-closure plus a flag
//!    recording whether any guarded edge is reachable inside it. Guard-free
//!    closures let the evaluator skip the formula machinery entirely.
//! 2. **Label columns**: every label a plan's transitions mention is
//!    assigned a dense column id; all other labels (including labels
//!    interned *after* compilation) share column 0, which only wildcard
//!    transitions can match. Tables are therefore query-width, not
//!    vocabulary-width.
//! 3. **CSR step rows** per NFA: `row(state, column)` is a precomputed
//!    slice of transition targets, replacing the per-event scan over
//!    `Nfa::transitions` with one offset lookup.
//! 4. **Subset-construction DFAs** for guard-free NFAs: states are
//!    ε-closed state sets (fixed-width bitsets during construction), the
//!    transition table is a dense `states × columns` array of `u32`, and
//!    acceptance is a bit per DFA state. A machine running a DFA-kind NFA
//!    carries a single `u32` per open tree level and steps with one array
//!    read. Construction aborts past [`DFA_STATE_CAP`] subsets (the
//!    theoretical exponential blow-up), falling back to the NFA rows.
//! 5. **Required-label analysis** ([`required_labels`]) hoisted out of the
//!    evaluator, so TAX-index pruning reads precomputed data.
//!
//! Predicates (`cans` spawning semantics) are untouched: guarded ε-edges
//! stay on the NFA side and are only crossed by the evaluator's guard-aware
//! closure, exactly as in the interpreted path.

use crate::analysis::{eps_closure_unguarded, required_labels, Requirement};
use crate::mfa::{LabelTest, Mfa, Nfa, NfaId, StateId};
use smoqe_xml::Label;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Sentinel for "no transition" in dense DFA tables.
pub const DEAD: u32 = u32::MAX;

/// Subset-construction abort threshold: a guard-free NFA producing more
/// DFA states than this keeps its NFA row representation instead. MFAs are
/// linear in the query, so real plans stay far below the cap; this guards
/// the theoretical exponential case.
pub const DFA_STATE_CAP: usize = 512;

static ANALYSIS_RUNS: AtomicU64 = AtomicU64::new(0);

/// Process-wide count of plan compilations (ε-closure + required-label
/// analyses). Eval paths must never bump this per machine or per batch
/// lane — the analyses are shared through the compiled plan; regression
/// tests assert the counter.
pub fn analysis_runs() -> u64 {
    ANALYSIS_RUNS.load(Ordering::Relaxed)
}

/// Precomputed ε-closure of one state.
#[derive(Clone, Debug)]
pub struct Closure {
    /// States reachable by ε-edges (guarded or not), sorted, self included.
    pub states: Vec<StateId>,
    /// Whether any edge inside the closure carries a guard. When `false`,
    /// the closure is tag-free and the precomputed `states` are exact.
    pub guarded: bool,
}

/// Dense transition table of a guard-free NFA after subset construction.
#[derive(Clone, Debug)]
pub struct DfaTable {
    width: usize,
    start: u32,
    /// `dfa_state * width + column -> next dfa state` or [`DEAD`].
    next: Vec<u32>,
    /// Whether the subset contains the NFA accept state.
    accept: Vec<bool>,
    /// Member NFA states per DFA state (sorted). Cold data: only read by
    /// TAX-index previews, which need per-member required-label checks.
    members: Vec<Vec<StateId>>,
}

impl DfaTable {
    /// The DFA start state (ε-closure of the NFA start).
    #[inline]
    pub fn start(&self) -> u32 {
        self.start
    }

    /// One consuming step: a single dense-row lookup.
    #[inline]
    pub fn step(&self, state: u32, col: usize) -> u32 {
        self.next[state as usize * self.width + col]
    }

    /// Whether `state` is accepting.
    #[inline]
    pub fn accept(&self, state: u32) -> bool {
        self.accept[state as usize]
    }

    /// The NFA states the subset contains.
    #[inline]
    pub fn members(&self, state: u32) -> &[StateId] {
        &self.members[state as usize]
    }

    /// Number of DFA states.
    pub fn state_count(&self) -> usize {
        self.accept.len()
    }
}

/// The compiled form of one NFA of the plan.
#[derive(Clone, Debug)]
pub struct CompiledNfa {
    states: usize,
    width: usize,
    required: Vec<Requirement>,
    closures: Vec<Closure>,
    /// CSR offsets: `(state * width + col)` indexes into `row_targets`.
    row_off: Vec<u32>,
    row_targets: Vec<StateId>,
    dfa: Option<DfaTable>,
    /// Guard-stripped DFA of a *guarded* NFA: subset construction that
    /// crosses guarded ε-edges as if their guards were true. An
    /// overapproximation — it accepts a superset of the guarded language —
    /// used by jump-scan as a navigation skeleton whose verdicts are
    /// re-verified guard-aware at candidate nodes. `None` for guard-free
    /// NFAs (use [`CompiledNfa::dfa`], which is exact) and past the cap.
    stripped: Option<DfaTable>,
}

impl CompiledNfa {
    /// Per-state required-label analysis (TAX pruning).
    #[inline]
    pub fn required(&self) -> &[Requirement] {
        &self.required
    }

    /// Precomputed ε-closure of `s`.
    #[inline]
    pub fn closure(&self, s: StateId) -> &Closure {
        &self.closures[s.index()]
    }

    /// Transition targets of `s` on a label column — the compiled
    /// equivalent of scanning `Nfa::transitions(s)` for matches.
    #[inline]
    pub fn row(&self, s: StateId, col: usize) -> &[StateId] {
        let i = s.index() * self.width + col;
        &self.row_targets[self.row_off[i] as usize..self.row_off[i + 1] as usize]
    }

    /// The dense DFA, present iff the NFA is guard-free and subset
    /// construction stayed under [`DFA_STATE_CAP`].
    #[inline]
    pub fn dfa(&self) -> Option<&DfaTable> {
        self.dfa.as_ref()
    }

    /// The guard-stripped DFA of a guarded NFA (guards treated as true
    /// during subset construction). Accepts a superset of the real
    /// language: a navigation skeleton, never an oracle — callers must
    /// re-verify acceptance guard-aware. `None` when the NFA is guard-free
    /// (the exact [`CompiledNfa::dfa`] exists instead) or past the cap.
    #[inline]
    pub fn stripped_dfa(&self) -> Option<&DfaTable> {
        self.stripped.as_ref()
    }

    /// Number of NFA states.
    pub fn state_count(&self) -> usize {
        self.states
    }
}

/// A fully compiled evaluation plan: the source [`Mfa`] plus the dense
/// tables the evaluator hot loop runs on. Build once per plan (the plan
/// cache stores `Arc<CompiledMfa>`), share across sessions, batches and
/// threads.
#[derive(Clone, Debug)]
pub struct CompiledMfa {
    mfa: Arc<Mfa>,
    /// `label id -> column`; ids past the end (labels interned after
    /// compilation) and unreferenced labels map to column 0.
    label_cols: Vec<u16>,
    width: usize,
    nfas: Vec<CompiledNfa>,
    max_states: usize,
}

impl CompiledMfa {
    /// Compiles a plan from a borrowed MFA (clones it into the plan).
    pub fn compile(mfa: &Mfa) -> Self {
        Self::from_arc(Arc::new(mfa.clone()))
    }

    /// Compiles a plan around an already-shared MFA.
    pub fn from_arc(mfa: Arc<Mfa>) -> Self {
        ANALYSIS_RUNS.fetch_add(1, Ordering::Relaxed);
        let num_labels = mfa.vocabulary().len();
        // Column 0 is reserved for "label not mentioned by this plan":
        // only wildcard transitions can consume those.
        let mut label_cols = vec![0u16; num_labels];
        let mut referenced: Vec<Label> = Vec::new();
        for (_, nfa) in mfa.nfas() {
            for s in nfa.states() {
                for t in nfa.transitions(s) {
                    if let LabelTest::Label(l) = t.test {
                        if label_cols[l.index()] == 0 {
                            referenced.push(l);
                            // Columns are u16; silently wrapping would map
                            // labels onto wrong columns and corrupt
                            // answers, so an absurdly wide plan must fail
                            // loudly instead.
                            assert!(
                                referenced.len() <= u16::MAX as usize,
                                "plan references more than {} distinct labels",
                                u16::MAX
                            );
                            label_cols[l.index()] = referenced.len() as u16;
                        }
                    }
                }
            }
        }
        let width = referenced.len() + 1;
        let mut max_states = 0;
        let nfas = mfa
            .nfas()
            .map(|(_, nfa)| {
                max_states = max_states.max(nfa.state_count());
                compile_nfa(nfa, num_labels, &label_cols, width)
            })
            .collect();
        CompiledMfa {
            mfa,
            label_cols,
            width,
            nfas,
            max_states,
        }
    }

    /// The source automaton.
    #[inline]
    pub fn mfa(&self) -> &Mfa {
        &self.mfa
    }

    /// Shared handle to the source automaton.
    #[inline]
    pub fn mfa_arc(&self) -> &Arc<Mfa> {
        &self.mfa
    }

    /// The dense column of `label` (0 = "not mentioned by this plan").
    #[inline]
    pub fn col(&self, label: Label) -> usize {
        self.label_cols.get(label.index()).copied().unwrap_or(0) as usize
    }

    /// Table width (referenced labels + the shared wildcard column).
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// The labels this plan's transitions mention, each with its dense
    /// column (always non-zero — every other label shares the wildcard
    /// column 0). Jump-scan evaluation enumerates these to know which
    /// occurrence lists can possibly move a DFA state.
    pub fn referenced_labels(&self) -> impl Iterator<Item = (Label, usize)> + '_ {
        self.label_cols
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c != 0)
            .map(|(i, &c)| (Label(i as u32), c as usize))
    }

    /// Compiled data of one NFA.
    #[inline]
    pub fn nfa(&self, id: NfaId) -> &CompiledNfa {
        &self.nfas[id.index()]
    }

    /// Largest state count across the plan's NFAs (scratch sizing).
    #[inline]
    pub fn max_states(&self) -> usize {
        self.max_states
    }

    /// How many of the plan's NFAs run as dense-table DFAs (the rest keep
    /// NFA rows: they carry guards or blew the subset cap).
    pub fn dfa_nfa_count(&self) -> usize {
        self.nfas.iter().filter(|n| n.dfa.is_some()).count()
    }
}

fn compile_nfa(nfa: &Nfa, num_labels: usize, label_cols: &[u16], width: usize) -> CompiledNfa {
    let states = nfa.state_count();
    let required = required_labels(nfa, num_labels);
    let closures = nfa
        .states()
        .map(|s| {
            // BFS over every ε-edge; record whether a guard is crossed.
            let mut seen = vec![false; states];
            let mut guarded = false;
            let mut out = Vec::new();
            let mut work = vec![s];
            seen[s.index()] = true;
            while let Some(x) = work.pop() {
                out.push(x);
                for e in nfa.eps_edges(x) {
                    if e.guard.is_some() {
                        guarded = true;
                    }
                    if !seen[e.target.index()] {
                        seen[e.target.index()] = true;
                        work.push(e.target);
                    }
                }
            }
            out.sort_unstable();
            Closure {
                states: out,
                guarded,
            }
        })
        .collect();

    // CSR step rows: per (state, column), the matching transition targets.
    let mut row_off = Vec::with_capacity(states * width + 1);
    let mut row_targets = Vec::new();
    row_off.push(0u32);
    for s in nfa.states() {
        for col in 0..width {
            for t in nfa.transitions(s) {
                let matches = match t.test {
                    LabelTest::Wildcard => true,
                    LabelTest::Label(l) => label_cols[l.index()] as usize == col && col != 0,
                };
                if matches {
                    row_targets.push(t.target);
                }
            }
            row_off.push(row_targets.len() as u32);
        }
    }

    // `build_dfa` closes over *every* ε-edge (guards ignored), so on a
    // guard-free NFA it is exact, and on a guarded NFA it is precisely the
    // guard-stripped overapproximation jump navigation wants.
    let (dfa, stripped) = if states == 0 {
        (None, None)
    } else if nfa.has_guards() {
        (None, build_dfa(nfa, width, &row_off, &row_targets))
    } else {
        (build_dfa(nfa, width, &row_off, &row_targets), None)
    };

    CompiledNfa {
        states,
        width,
        required,
        closures,
        row_off,
        row_targets,
        dfa,
        stripped,
    }
}

/// Subset construction over the label columns. Subsets are fixed-width
/// bitsets (`words` × u64) interned in a hash map; the output table is a
/// dense `states × width` array.
fn build_dfa(
    nfa: &Nfa,
    width: usize,
    row_off: &[u32],
    row_targets: &[StateId],
) -> Option<DfaTable> {
    let n = nfa.state_count();
    let words = n.div_ceil(64);
    let key_of = |set: &[StateId]| -> Vec<u64> {
        let mut key = vec![0u64; words];
        for s in set {
            key[s.index() / 64] |= 1u64 << (s.index() % 64);
        }
        key
    };
    let start_set = eps_closure_unguarded(nfa, &[nfa.start()]);
    let mut interned: HashMap<Vec<u64>, u32> = HashMap::new();
    let mut members: Vec<Vec<StateId>> = Vec::new();
    let mut accept: Vec<bool> = Vec::new();
    let mut next: Vec<u32> = Vec::new();

    let mut intern =
        |set: Vec<StateId>, members: &mut Vec<Vec<StateId>>, accept: &mut Vec<bool>| -> u32 {
            let key = key_of(&set);
            *interned.entry(key).or_insert_with(|| {
                let id = members.len() as u32;
                accept.push(set.iter().any(|&s| nfa.is_accept(s)));
                members.push(set);
                id
            })
        };

    let start = intern(start_set, &mut members, &mut accept);
    // Process subsets in id order so rows land at `state * width`; newly
    // interned subsets extend the frontier.
    let mut state: u32 = 0;
    while (state as usize) < members.len() {
        if members.len() > DFA_STATE_CAP {
            return None;
        }
        debug_assert_eq!(next.len(), state as usize * width);
        for col in 0..width {
            let mut moved: Vec<StateId> = Vec::new();
            for s in &members[state as usize] {
                let i = s.index() * width + col;
                moved.extend_from_slice(&row_targets[row_off[i] as usize..row_off[i + 1] as usize]);
            }
            moved.sort_unstable();
            moved.dedup();
            if moved.is_empty() {
                next.push(DEAD);
                continue;
            }
            let closed = eps_closure_unguarded(nfa, &moved);
            next.push(intern(closed, &mut members, &mut accept));
        }
        state += 1;
    }
    Some(DfaTable {
        width,
        start,
        next,
        accept,
        members,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::accepts_word_unguarded;
    use crate::build::compile;
    use smoqe_rxpath::parse_path;
    use smoqe_xml::Vocabulary;

    fn plan_for(q: &str) -> (Vocabulary, CompiledMfa) {
        let vocab = Vocabulary::new();
        let path = parse_path(q, &vocab).unwrap();
        let mfa = compile(&path, &vocab);
        (vocab, CompiledMfa::compile(&mfa))
    }

    /// Runs the compiled DFA over a label word.
    fn dfa_accepts(plan: &CompiledMfa, word: &[Label]) -> bool {
        let top = plan.mfa().top();
        let dfa = plan.nfa(top).dfa().expect("guard-free top NFA");
        let mut state = dfa.start();
        for &l in word {
            state = dfa.step(state, plan.col(l));
            if state == DEAD {
                return false;
            }
        }
        dfa.accept(state)
    }

    #[test]
    fn dfa_agrees_with_nfa_simulation() {
        for q in ["a/b/c", "(a/b)*/c", "a/(b | c)", "//b", "a/*/c", "."] {
            let (vocab, plan) = plan_for(q);
            let nfa = plan.mfa().nfa(plan.mfa().top());
            let labels: Vec<Label> = ["a", "b", "c", "d"]
                .iter()
                .map(|n| vocab.intern(n))
                .collect();
            // Recompile after interning extra labels is NOT needed: unseen
            // labels map to column 0 (wildcard-only).
            let mut words: Vec<Vec<Label>> = vec![vec![]];
            for _ in 0..3 {
                let mut next = Vec::new();
                for w in &words {
                    for &l in &labels {
                        let mut w2 = w.clone();
                        w2.push(l);
                        next.push(w2);
                    }
                }
                words.extend(next);
            }
            for w in &words {
                assert_eq!(
                    dfa_accepts(&plan, w),
                    accepts_word_unguarded(nfa, w),
                    "query `{q}`, word {w:?}"
                );
            }
        }
    }

    #[test]
    fn guarded_nfas_get_rows_not_dfas() {
        let (_, plan) = plan_for("a/b[c]/d");
        let top = plan.mfa().top();
        assert!(plan.nfa(top).dfa().is_none(), "guarded top NFA");
        // But the HasPath sub-NFA (the `c` path) is guard-free.
        assert!(plan.dfa_nfa_count() >= 1);
    }

    #[test]
    fn guarded_nfas_get_stripped_dfas() {
        let (vocab, plan) = plan_for("a/b[c]/d");
        let top = plan.mfa().top();
        let stripped = plan.nfa(top).stripped_dfa().expect("stripped DFA");
        // With the guard assumed true, the word a/b/d is accepted.
        let mut state = stripped.start();
        for l in ["a", "b", "d"] {
            state = stripped.step(state, plan.col(vocab.intern(l)));
            assert_ne!(state, DEAD, "stripped DFA died on {l}");
        }
        assert!(stripped.accept(state));
        // Agreement with guard-ignoring NFA simulation on short words.
        let nfa = plan.mfa().nfa(top);
        let labels: Vec<Label> = ["a", "b", "c", "d"]
            .iter()
            .map(|n| vocab.intern(n))
            .collect();
        for &x in &labels {
            for &y in &labels {
                for &z in &labels {
                    let w = [x, y, z];
                    let mut s = stripped.start();
                    for &l in &w {
                        if s != DEAD {
                            s = stripped.step(s, plan.col(l));
                        }
                    }
                    let got = s != DEAD && stripped.accept(s);
                    assert_eq!(got, accepts_word_unguarded(nfa, &w), "word {w:?}");
                }
            }
        }
        // Guard-free NFAs carry only the exact DFA.
        let (_, plain) = plan_for("a/b");
        let top = plain.mfa().top();
        assert!(plain.nfa(top).dfa().is_some());
        assert!(plain.nfa(top).stripped_dfa().is_none());
    }

    #[test]
    fn rows_match_transition_scans() {
        let (vocab, plan) = plan_for("a/(b | *)/c");
        let top_id = plan.mfa().top();
        let nfa = plan.mfa().nfa(top_id);
        let compiled = plan.nfa(top_id);
        let labels: Vec<Label> = ["a", "b", "c", "zzz"]
            .iter()
            .map(|n| vocab.intern(n))
            .collect();
        for s in nfa.states() {
            for &l in &labels {
                let mut want: Vec<StateId> = nfa
                    .transitions(s)
                    .iter()
                    .filter(|t| t.test.matches(l))
                    .map(|t| t.target)
                    .collect();
                let mut got: Vec<StateId> = compiled.row(s, plan.col(l)).to_vec();
                want.sort_unstable();
                got.sort_unstable();
                assert_eq!(got, want, "state {s:?}, label {l:?}");
            }
        }
    }

    #[test]
    fn unseen_labels_take_the_wildcard_column() {
        let (vocab, plan) = plan_for("a/*");
        // A label interned after compilation: must behave as wildcard-only.
        let late = vocab.intern("late-label");
        assert_eq!(plan.col(late), 0);
        assert!(dfa_accepts(&plan, &[vocab.lookup("a").unwrap(), late]));
        assert!(!dfa_accepts(&plan, &[late, late]));
    }

    #[test]
    fn closures_flag_guards() {
        let (_, plan) = plan_for("a[b]/c");
        let top = plan.mfa().top();
        let compiled = plan.nfa(top);
        let any_guarded =
            (0..compiled.state_count()).any(|i| compiled.closure(StateId(i as u32)).guarded);
        assert!(any_guarded, "the qualifier guard must be visible");
    }

    #[test]
    fn analysis_counter_moves_once_per_compile() {
        let before = analysis_runs();
        let (_, _plan) = plan_for("a/b/c");
        assert_eq!(analysis_runs(), before + 1);
    }
}
