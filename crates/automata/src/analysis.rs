//! Static analyses over MFAs.
//!
//! The TAX index can only prune a subtree if **no accepting continuation of
//! any live run can complete inside it** (paper §3, "Indexer": TAX keeps
//! track of which descendant types exist so the evaluator can skip
//! subtrees). The key analysis is [`required_labels`]: for every NFA state,
//! the set of labels that appear on *every* accepting continuation from
//! that state. If some required label does not occur in a subtree, no run
//! in that state can accept there — prune. Guards are conservatively
//! ignored (they can only shrink the set of accepting runs, so ignoring
//! them under-prunes, never over-prunes); the soundness property is tested
//! here and end-to-end in the evaluator tests.

use crate::mfa::{LabelTest, Nfa, StateId};
use smoqe_xml::{Label, LabelSet};

/// Per-state label requirement for reaching acceptance.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Requirement {
    /// No accepting continuation exists from this state at all.
    pub dead: bool,
    /// Labels appearing on **every** accepting continuation (empty when
    /// some continuation needs no specific labels, e.g. via wildcards or
    /// immediate acceptance).
    pub labels: LabelSet,
}

impl Requirement {
    /// Whether a run in this state could still accept inside a subtree
    /// offering exactly `available` element labels.
    pub fn satisfiable_within(&self, available: &LabelSet) -> bool {
        !self.dead && self.labels.is_subset_of(available)
    }
}

/// Computes [`Requirement`]s for every state of `nfa` (greatest fixpoint).
///
/// `num_labels` is the vocabulary size; label sets are bounded by it.
pub fn required_labels(nfa: &Nfa, num_labels: usize) -> Vec<Requirement> {
    // Value lattice: None = "no accepting path yet" (top), Some(set) =
    // intersection of labels over known accepting paths. Values only
    // descend, so iteration terminates.
    let n = nfa.state_count();
    let mut req: Vec<Option<LabelSet>> = vec![None; n];
    if n == 0 {
        return Vec::new();
    }
    req[nfa.accept().index()] = Some(LabelSet::with_capacity(num_labels));
    let mut changed = true;
    while changed {
        changed = false;
        for s in (0..n as u32).map(StateId) {
            let mut new: Option<LabelSet> = if nfa.is_accept(s) {
                Some(LabelSet::with_capacity(num_labels))
            } else {
                None
            };
            for e in nfa.eps_edges(s) {
                if let Some(r) = &req[e.target.index()] {
                    new = Some(match new {
                        None => r.clone(),
                        Some(mut cur) => {
                            cur.intersect_with(r);
                            cur
                        }
                    });
                }
            }
            for t in nfa.transitions(s) {
                if let Some(r) = &req[t.target.index()] {
                    let mut contribution = r.clone();
                    if let LabelTest::Label(l) = t.test {
                        contribution.insert(l);
                    }
                    new = Some(match new {
                        None => contribution,
                        Some(mut cur) => {
                            cur.intersect_with(&contribution);
                            cur
                        }
                    });
                }
            }
            if new != req[s.index()] {
                // Monotone: only None -> Some or shrinking sets.
                req[s.index()] = new;
                changed = true;
            }
        }
    }
    req.into_iter()
        .map(|r| match r {
            None => Requirement {
                dead: true,
                labels: LabelSet::with_capacity(num_labels),
            },
            Some(labels) => Requirement {
                dead: false,
                labels,
            },
        })
        .collect()
}

/// ε-closure of `states`, ignoring guards (used by type checking and by
/// tests; the evaluator computes a guard-aware closure itself).
pub fn eps_closure_unguarded(nfa: &Nfa, states: &[StateId]) -> Vec<StateId> {
    let mut in_set = vec![false; nfa.state_count()];
    let mut work: Vec<StateId> = Vec::new();
    for &s in states {
        if !in_set[s.index()] {
            in_set[s.index()] = true;
            work.push(s);
        }
    }
    while let Some(s) = work.pop() {
        for e in nfa.eps_edges(s) {
            if !in_set[e.target.index()] {
                in_set[e.target.index()] = true;
                work.push(e.target);
            }
        }
    }
    (0..nfa.state_count() as u32)
        .map(StateId)
        .filter(|s| in_set[s.index()])
        .collect()
}

/// One consuming step from `states` (assumed ε-closed) on `label`,
/// followed by ε-closure. Guards ignored.
pub fn step_unguarded(nfa: &Nfa, states: &[StateId], label: Label) -> Vec<StateId> {
    let mut out = Vec::new();
    for &s in states {
        for t in nfa.transitions(s) {
            if t.test.matches(label) {
                out.push(t.target);
            }
        }
    }
    out.sort_unstable();
    out.dedup();
    eps_closure_unguarded(nfa, &out)
}

/// Whether the NFA accepts the label word `word`, ignoring guards.
pub fn accepts_word_unguarded(nfa: &Nfa, word: &[Label]) -> bool {
    let mut cur = eps_closure_unguarded(nfa, &[nfa.start()]);
    for &l in word {
        if cur.is_empty() {
            return false;
        }
        cur = step_unguarded(nfa, &cur, l);
    }
    cur.iter().any(|&s| nfa.is_accept(s))
}

/// States reachable from `start` following every kind of edge.
pub fn reachable_states(nfa: &Nfa) -> Vec<bool> {
    let mut seen = vec![false; nfa.state_count()];
    if nfa.state_count() == 0 {
        return seen;
    }
    let mut work = vec![nfa.start()];
    seen[nfa.start().index()] = true;
    while let Some(s) = work.pop() {
        for e in nfa.eps_edges(s) {
            if !seen[e.target.index()] {
                seen[e.target.index()] = true;
                work.push(e.target);
            }
        }
        for t in nfa.transitions(s) {
            if !seen[t.target.index()] {
                seen[t.target.index()] = true;
                work.push(t.target);
            }
        }
    }
    seen
}

/// States from which the accept state is reachable.
pub fn coreachable_states(nfa: &Nfa) -> Vec<bool> {
    let n = nfa.state_count();
    let mut rev: Vec<Vec<StateId>> = vec![Vec::new(); n];
    for s in nfa.states() {
        for e in nfa.eps_edges(s) {
            rev[e.target.index()].push(s);
        }
        for t in nfa.transitions(s) {
            rev[t.target.index()].push(s);
        }
    }
    let mut seen = vec![false; n];
    if n == 0 {
        return seen;
    }
    let mut work = vec![nfa.accept()];
    seen[nfa.accept().index()] = true;
    while let Some(s) = work.pop() {
        for &p in &rev[s.index()] {
            if !seen[p.index()] {
                seen[p.index()] = true;
                work.push(p);
            }
        }
    }
    seen
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::compile;
    use smoqe_rxpath::parse_path;
    use smoqe_xml::Vocabulary;

    fn top_nfa(q: &str) -> (Vocabulary, crate::mfa::Mfa) {
        let vocab = Vocabulary::new();
        let p = parse_path(q, &vocab).unwrap();
        let mfa = compile(&p, &vocab);
        (vocab, mfa)
    }

    #[test]
    fn word_acceptance_matches_path_semantics() {
        let (vocab, mfa) = top_nfa("a/b/c");
        let nfa = mfa.nfa(mfa.top());
        let l = |n: &str| vocab.lookup(n).unwrap();
        assert!(accepts_word_unguarded(nfa, &[l("a"), l("b"), l("c")]));
        assert!(!accepts_word_unguarded(nfa, &[l("a"), l("b")]));
        assert!(!accepts_word_unguarded(nfa, &[l("a"), l("c"), l("b")]));
    }

    #[test]
    fn closure_word_acceptance() {
        let (vocab, mfa) = top_nfa("(a/b)*/c");
        let nfa = mfa.nfa(mfa.top());
        let l = |n: &str| vocab.lookup(n).unwrap();
        assert!(accepts_word_unguarded(nfa, &[l("c")]));
        assert!(accepts_word_unguarded(nfa, &[l("a"), l("b"), l("c")]));
        assert!(accepts_word_unguarded(
            nfa,
            &[l("a"), l("b"), l("a"), l("b"), l("c")]
        ));
        assert!(!accepts_word_unguarded(nfa, &[l("a"), l("c")]));
    }

    #[test]
    fn union_acceptance() {
        let (vocab, mfa) = top_nfa("a/(b | c)");
        let nfa = mfa.nfa(mfa.top());
        let l = |n: &str| vocab.lookup(n).unwrap();
        assert!(accepts_word_unguarded(nfa, &[l("a"), l("b")]));
        assert!(accepts_word_unguarded(nfa, &[l("a"), l("c")]));
        assert!(!accepts_word_unguarded(nfa, &[l("b")]));
    }

    #[test]
    fn required_labels_of_linear_path() {
        let (vocab, mfa) = top_nfa("a/b/c");
        let nfa = mfa.nfa(mfa.top());
        let req = required_labels(nfa, vocab.len());
        let start_req = &req[nfa.start().index()];
        assert!(!start_req.dead);
        // From the start, every accepting path uses a, b and c.
        let labels: Vec<String> = start_req
            .labels
            .iter()
            .map(|l| vocab.name(l).to_string())
            .collect();
        assert_eq!(labels, vec!["a", "b", "c"]);
        // At accept, nothing more is required.
        assert!(req[nfa.accept().index()].labels.is_empty());
    }

    #[test]
    fn required_labels_intersect_over_union() {
        let (vocab, mfa) = top_nfa("a/(b/d | c/d)");
        let nfa = mfa.nfa(mfa.top());
        let req = required_labels(nfa, vocab.len());
        let labels: Vec<String> = req[nfa.start().index()]
            .labels
            .iter()
            .map(|l| vocab.name(l).to_string())
            .collect();
        // b vs c differ per branch; a and d are on every path.
        assert_eq!(labels, vec!["a", "d"]);
    }

    #[test]
    fn wildcard_requires_nothing() {
        let (vocab, mfa) = top_nfa("//b");
        let nfa = mfa.nfa(mfa.top());
        let req = required_labels(nfa, vocab.len());
        let labels: Vec<String> = req[nfa.start().index()]
            .labels
            .iter()
            .map(|l| vocab.name(l).to_string())
            .collect();
        // The wildcard closure contributes nothing, but `b` is still on
        // every accepting path - this is exactly what lets TAX prune
        // subtrees with no `b` under a descendant query.
        assert_eq!(labels, vec!["b"]);
    }

    #[test]
    fn dead_states_detected() {
        let vocab = Vocabulary::new();
        let mut nfa = Nfa::new();
        let s = nfa.add_state();
        let t = nfa.add_state();
        let dead = nfa.add_state();
        nfa.set_start(s);
        nfa.set_accept(t);
        nfa.add_transition(s, LabelTest::Label(vocab.intern("a")), t);
        nfa.add_transition(s, LabelTest::Label(vocab.intern("b")), dead);
        let req = required_labels(&nfa, vocab.len());
        assert!(req[dead.index()].dead);
        assert!(!req[s.index()].dead);
        let avail: LabelSet = [vocab.lookup("a").unwrap()].into_iter().collect();
        assert!(req[s.index()].satisfiable_within(&avail));
        assert!(!req[dead.index()].satisfiable_within(&avail));
    }

    #[test]
    fn satisfiable_within_requires_subset() {
        let (vocab, mfa) = top_nfa("a/b");
        let nfa = mfa.nfa(mfa.top());
        let req = required_labels(nfa, vocab.len());
        let only_a: LabelSet = [vocab.lookup("a").unwrap()].into_iter().collect();
        let both: LabelSet = [vocab.lookup("a").unwrap(), vocab.lookup("b").unwrap()]
            .into_iter()
            .collect();
        assert!(!req[nfa.start().index()].satisfiable_within(&only_a));
        assert!(req[nfa.start().index()].satisfiable_within(&both));
    }

    #[test]
    fn reachable_and_coreachable() {
        let vocab = Vocabulary::new();
        let mut nfa = Nfa::new();
        let s = nfa.add_state();
        let t = nfa.add_state();
        let orphan = nfa.add_state();
        let sink = nfa.add_state();
        nfa.set_start(s);
        nfa.set_accept(t);
        nfa.add_transition(s, LabelTest::Label(vocab.intern("a")), t);
        nfa.add_transition(orphan, LabelTest::Wildcard, t);
        nfa.add_eps(s, sink);
        let reach = reachable_states(&nfa);
        assert_eq!(reach, vec![true, true, false, true]);
        let coreach = coreachable_states(&nfa);
        assert_eq!(coreach, vec![true, true, true, false]);
    }
}
