//! Applying an update to a document, maintaining the TAX index as it
//! goes.

use crate::ast::{InsertPos, Update, UpdateKind};
use crate::error::UpdateError;
use smoqe_tax::TaxIndex;
use smoqe_xml::{delete_subtree, insert_fragment, replace_subtree, SplicePlace};
use smoqe_xml::{Document, NodeId};

/// Applies `update` at every node of `targets` (which must be sorted
/// ascending in document order and belong to `doc`), producing the new
/// document and, when an index is supplied, a **incrementally patched**
/// TAX index over it. Returns the number of targets applied.
///
/// Targets are processed last-to-first: every edit changes one contiguous
/// pre-order id window, so ids *before* the window — including every
/// not-yet-processed target — stay valid across the edit. A target that
/// contains another (nested selection) is simply applied after its
/// descendant, which matches "apply the operation at every selected
/// node" semantics.
///
/// Nothing here checks policy or schema conformance; callers resolve and
/// authorize `targets` and validate the result. The function is
/// all-or-nothing by construction: the input document is never mutated.
pub fn apply_update(
    doc: &Document,
    update: &Update,
    targets: &[NodeId],
    tax: Option<&TaxIndex>,
) -> Result<(Document, Option<TaxIndex>, usize), UpdateError> {
    if targets.is_empty() {
        return Err(UpdateError::NoTarget);
    }
    debug_assert!(
        targets.windows(2).all(|w| w[0] < w[1]),
        "targets must be sorted ascending and deduplicated"
    );
    let mut state: Option<(Document, Option<TaxIndex>)> = None;
    for &target in targets.iter().rev() {
        let (cur_doc, cur_tax) = match &state {
            None => (doc, tax),
            Some((d, t)) => (d, t.as_ref()),
        };
        let (new_doc, span) = match &update.kind {
            UpdateKind::Delete => delete_subtree(cur_doc, target)?,
            UpdateKind::Replace { fragment } => replace_subtree(cur_doc, target, fragment)?,
            UpdateKind::Insert { fragment, pos } => {
                insert_fragment(cur_doc, target, place(*pos), fragment)?
            }
        };
        let new_tax = cur_tax.map(|t| t.patched(&new_doc, &span));
        state = Some((new_doc, new_tax));
    }
    let (new_doc, new_tax) = state.expect("at least one target was applied");
    Ok((new_doc, new_tax, targets.len()))
}

fn place(pos: InsertPos) -> SplicePlace {
    match pos {
        InsertPos::Into => SplicePlace::Into,
        InsertPos::Before => SplicePlace::Before,
        InsertPos::After => SplicePlace::After,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_update;
    use smoqe_rxpath::evaluate;
    use smoqe_xml::Vocabulary;

    fn setup(xml: &str) -> (Vocabulary, Document) {
        let vocab = Vocabulary::new();
        let doc = Document::parse_str(xml, &vocab).unwrap();
        (vocab, doc)
    }

    fn run(doc: &Document, vocab: &Vocabulary, stmt: &str) -> (Document, Option<TaxIndex>, usize) {
        let update = parse_update(stmt, vocab).unwrap();
        let targets = evaluate(doc, &update.target).into_vec();
        let tax = TaxIndex::build(doc);
        apply_update(doc, &update, &targets, Some(&tax)).unwrap()
    }

    #[test]
    fn multi_target_delete_removes_every_match() {
        let (vocab, doc) = setup("<a><b/><c><b/><b/></c><d/></a>");
        let (nd, tax, applied) = run(&doc, &vocab, "delete //b");
        assert_eq!(applied, 3);
        assert_eq!(nd.to_xml(), "<a><c/><d/></a>");
        // The chained incremental patches equal a rebuild.
        let rebuilt = TaxIndex::build(&nd);
        let tax = tax.unwrap();
        for n in nd.all_nodes() {
            assert_eq!(
                tax.descendant_labels(n).iter().collect::<Vec<_>>(),
                rebuilt.descendant_labels(n).iter().collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn multi_target_insert_hits_every_match() {
        let (vocab, doc) = setup("<a><b/><b/></a>");
        let (nd, _, applied) = run(&doc, &vocab, "insert <x>t</x> into a/b");
        assert_eq!(applied, 2);
        assert_eq!(nd.to_xml(), "<a><b><x>t</x></b><b><x>t</x></b></a>");
    }

    #[test]
    fn nested_targets_apply_innermost_first() {
        let (vocab, doc) = setup("<a><b><b/></b></a>");
        // Replacing every `b` (outer contains inner): the inner replace
        // happens first, then the outer replace supersedes it.
        let (nd, _, applied) = run(&doc, &vocab, "replace //b with <z/>");
        assert_eq!(applied, 2);
        assert_eq!(nd.to_xml(), "<a><z/></a>");
    }

    #[test]
    fn qualified_targets_select_precisely() {
        let (vocab, doc) = setup("<a><b><k/></b><b/></a>");
        let (nd, _, applied) = run(&doc, &vocab, "delete a/b[not(k)]");
        assert_eq!(applied, 1);
        assert_eq!(nd.to_xml(), "<a><b><k/></b></a>");
    }

    #[test]
    fn empty_target_set_is_an_error() {
        let (vocab, doc) = setup("<a/>");
        let update = parse_update("delete //zzz", &vocab).unwrap();
        let targets = evaluate(&doc, &update.target).into_vec();
        assert!(matches!(
            apply_update(&doc, &update, &targets, None),
            Err(UpdateError::NoTarget)
        ));
    }

    #[test]
    fn structural_violations_surface_as_edit_errors() {
        let (vocab, doc) = setup("<a><b/></a>");
        let update = parse_update("delete a", &vocab).unwrap();
        let targets = evaluate(&doc, &update.target).into_vec();
        assert!(matches!(
            apply_update(&doc, &update, &targets, None),
            Err(UpdateError::Edit(smoqe_xml::EditError::RootRemoval))
        ));
    }

    #[test]
    fn source_document_is_never_mutated() {
        let (vocab, doc) = setup("<a><b/></a>");
        let before = doc.to_xml();
        let _ = run(&doc, &vocab, "delete //b");
        assert_eq!(doc.to_xml(), before);
    }
}
