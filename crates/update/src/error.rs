//! Errors of the update subsystem.

use smoqe_rxpath::ParseError;
use smoqe_xml::{EditError, XmlError};
use std::fmt;

/// Anything that can go wrong parsing or applying an update.
///
/// Note the engine collapses most of these into an opaque
/// `UpdateDenied` for *group* sessions — a non-admin must not be able to
/// distinguish "target hidden by policy" from "target does not exist"
/// from "result would leak schema structure".
#[derive(Debug)]
pub enum UpdateError {
    /// The update statement does not follow the
    /// `insert/delete/replace` grammar.
    Syntax(String),
    /// The XML fragment of an insert/replace is malformed.
    Fragment(XmlError),
    /// The target path is not valid Regular XPath.
    Target(ParseError),
    /// The target path selected no node.
    NoTarget,
    /// The edit is structurally impossible (root deletion, sibling of the
    /// root, ...).
    Edit(EditError),
    /// The post-update document no longer conforms to the loaded DTD.
    Schema(XmlError),
}

impl fmt::Display for UpdateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UpdateError::Syntax(s) => write!(f, "update syntax error: {s}"),
            UpdateError::Fragment(e) => write!(f, "bad fragment in update: {e}"),
            UpdateError::Target(e) => write!(f, "bad target path in update: {e}"),
            UpdateError::NoTarget => write!(f, "update target selected no node"),
            UpdateError::Edit(e) => write!(f, "update cannot be applied: {e}"),
            UpdateError::Schema(e) => write!(f, "update violates the document schema: {e}"),
        }
    }
}

impl std::error::Error for UpdateError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            UpdateError::Fragment(e) | UpdateError::Schema(e) => Some(e),
            UpdateError::Target(e) => Some(e),
            UpdateError::Edit(e) => Some(e),
            _ => None,
        }
    }
}

impl From<EditError> for UpdateError {
    fn from(e: EditError) -> Self {
        UpdateError::Edit(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(UpdateError::Syntax("x".into()).to_string().contains("x"));
        assert!(UpdateError::NoTarget.to_string().contains("no node"));
        assert!(UpdateError::Edit(EditError::RootRemoval)
            .to_string()
            .contains("root"));
    }
}
