//! Parser for the concrete update syntax.
//!
//! The statement shell (`insert ... into ...`, `delete ...`,
//! `replace ... with ...`) is recognized here; the **target expression**
//! is handed verbatim to [`smoqe_rxpath::parse_path`], i.e. the same
//! lexer and recursive-descent parser queries go through, and the
//! **fragment** is scanned as one balanced XML element and parsed by the
//! document parser against the caller's vocabulary.

use crate::ast::{InsertPos, Update, UpdateKind};
use crate::error::UpdateError;
use smoqe_rxpath::parse_path;
use smoqe_xml::{Document, Vocabulary};

/// Parses one update statement.
///
/// ```
/// use smoqe_update::{parse_update, UpdateKind};
/// use smoqe_xml::Vocabulary;
/// let vocab = Vocabulary::new();
/// let u = parse_update("insert <visit><date>d</date></visit> into //patient", &vocab).unwrap();
/// assert!(matches!(u.kind, UpdateKind::Insert { .. }));
/// let u = parse_update("delete hospital/patient[pname = 'Bob']", &vocab).unwrap();
/// assert!(matches!(u.kind, UpdateKind::Delete));
/// ```
pub fn parse_update(input: &str, vocab: &Vocabulary) -> Result<Update, UpdateError> {
    let text = input.trim();
    if let Some(rest) = keyword(text, "insert") {
        let rest = rest.trim_start();
        let (fragment_text, rest) = scan_fragment(rest)?;
        let rest = rest.trim_start();
        let (pos, rest) = if let Some(r) = keyword(rest, "into") {
            (InsertPos::Into, r)
        } else if let Some(r) = keyword(rest, "before") {
            (InsertPos::Before, r)
        } else if let Some(r) = keyword(rest, "after") {
            (InsertPos::After, r)
        } else {
            return Err(UpdateError::Syntax(
                "expected `into`, `before` or `after` between fragment and target".to_string(),
            ));
        };
        Ok(Update {
            kind: UpdateKind::Insert {
                fragment: parse_fragment(fragment_text, vocab)?,
                pos,
            },
            target: parse_target(rest, vocab)?,
        })
    } else if let Some(rest) = keyword(text, "delete") {
        Ok(Update {
            kind: UpdateKind::Delete,
            target: parse_target(rest, vocab)?,
        })
    } else if let Some(rest) = keyword(text, "replace") {
        let lt = rest.find('<').ok_or_else(|| {
            UpdateError::Syntax("replace needs a `with <fragment>` clause".to_string())
        })?;
        let head = rest[..lt].trim_end();
        // `with` must be its own word: a target like `hospital/bandwith`
        // (user forgot the keyword) must error, not silently truncate to
        // `hospital/band` and mutate the wrong nodes.
        let target_text = head
            .strip_suffix("with")
            .filter(|t| t.is_empty() || t.ends_with(char::is_whitespace))
            .ok_or_else(|| {
                UpdateError::Syntax("expected `with` between target and fragment".to_string())
            })?;
        let (fragment_text, tail) = scan_fragment(rest[lt..].trim_start())?;
        if !tail.trim().is_empty() {
            return Err(UpdateError::Syntax(format!(
                "unexpected input after replacement fragment: `{}`",
                tail.trim()
            )));
        }
        Ok(Update {
            kind: UpdateKind::Replace {
                fragment: parse_fragment(fragment_text, vocab)?,
            },
            target: parse_target(target_text, vocab)?,
        })
    } else {
        Err(UpdateError::Syntax(
            "expected `insert`, `delete` or `replace`".to_string(),
        ))
    }
}

fn parse_fragment(text: &str, vocab: &Vocabulary) -> Result<Document, UpdateError> {
    Document::parse_str(text, vocab).map_err(UpdateError::Fragment)
}

fn parse_target(text: &str, vocab: &Vocabulary) -> Result<smoqe_rxpath::Path, UpdateError> {
    let text = text.trim();
    if text.is_empty() {
        return Err(UpdateError::Syntax(
            "missing target path in update".to_string(),
        ));
    }
    parse_path(text, vocab).map_err(UpdateError::Target)
}

/// Recognizes `kw` as a leading word of `s`: it must be followed by
/// whitespace, a fragment (`<`), a path that cannot start with a name
/// byte (`/`), or the end of input — so an element named `insertion` is
/// never mistaken for the keyword.
fn keyword<'a>(s: &'a str, kw: &str) -> Option<&'a str> {
    let rest = s.strip_prefix(kw)?;
    match rest.as_bytes().first() {
        None => Some(rest),
        Some(b) if b.is_ascii_whitespace() || *b == b'<' || *b == b'/' => Some(rest),
        _ => None,
    }
}

/// Splits `s` into one balanced XML element and the remainder. Attribute
/// values may contain `>`; comments/PIs are rejected (the document parser
/// does not produce nodes for them, so a fragment must not rely on them).
fn scan_fragment(s: &str) -> Result<(&str, &str), UpdateError> {
    let bytes = s.as_bytes();
    if bytes.first() != Some(&b'<') {
        return Err(UpdateError::Syntax(
            "expected an XML fragment starting with `<`".to_string(),
        ));
    }
    let mut i = 0usize;
    let mut depth = 0usize;
    while i < bytes.len() {
        if bytes[i] != b'<' {
            i += 1;
            continue;
        }
        match bytes.get(i + 1) {
            Some(b'/') => {
                let close = find_tag_end(bytes, i)?;
                depth = depth.checked_sub(1).ok_or_else(|| {
                    UpdateError::Syntax("unbalanced closing tag in fragment".to_string())
                })?;
                i = close + 1;
                if depth == 0 {
                    return Ok((&s[..i], &s[i..]));
                }
            }
            Some(b'!') | Some(b'?') => {
                return Err(UpdateError::Syntax(
                    "comments and processing instructions are not allowed in fragments".to_string(),
                ));
            }
            _ => {
                let close = find_tag_end(bytes, i)?;
                let self_closing = bytes[close - 1] == b'/';
                i = close + 1;
                if !self_closing {
                    depth += 1;
                } else if depth == 0 {
                    return Ok((&s[..i], &s[i..]));
                }
            }
        }
    }
    Err(UpdateError::Syntax("unterminated XML fragment".to_string()))
}

/// Index of the `>` closing the tag opened at `start`, skipping quoted
/// attribute values.
fn find_tag_end(bytes: &[u8], start: usize) -> Result<usize, UpdateError> {
    let mut quote: Option<u8> = None;
    let mut j = start + 1;
    while j < bytes.len() {
        let b = bytes[j];
        match quote {
            Some(q) => {
                if b == q {
                    quote = None;
                }
            }
            None => match b {
                b'"' | b'\'' => quote = Some(b),
                b'>' => return Ok(j),
                _ => {}
            },
        }
        j += 1;
    }
    Err(UpdateError::Syntax(
        "unterminated tag in fragment".to_string(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vocab() -> Vocabulary {
        Vocabulary::new()
    }

    #[test]
    fn parses_all_three_forms() {
        let v = vocab();
        let u = parse_update("insert <b/> into a", &v).unwrap();
        assert!(matches!(
            u.kind,
            UpdateKind::Insert {
                pos: InsertPos::Into,
                ..
            }
        ));
        let u = parse_update("insert <b>t</b> before a/b", &v).unwrap();
        assert!(matches!(
            u.kind,
            UpdateKind::Insert {
                pos: InsertPos::Before,
                ..
            }
        ));
        let u = parse_update("insert <b/> after //a[c]", &v).unwrap();
        assert!(matches!(
            u.kind,
            UpdateKind::Insert {
                pos: InsertPos::After,
                ..
            }
        ));
        assert!(matches!(
            parse_update("delete //a", &v).unwrap().kind,
            UpdateKind::Delete
        ));
        let u = parse_update("replace a/b with <b><c/></b>", &v).unwrap();
        match u.kind {
            UpdateKind::Replace { fragment } => assert_eq!(fragment.node_count(), 2),
            _ => panic!("expected replace"),
        }
    }

    #[test]
    fn target_paths_use_the_rxpath_grammar() {
        let v = vocab();
        let u = parse_update(
            "delete hospital/patient[(parent/patient)*/visit and not(pname = 'Ann')]",
            &v,
        )
        .unwrap();
        // The path round-trips through the rxpath pretty-printer.
        let printed = u.target.display(&v).to_string();
        assert!(printed.contains("(parent/patient)*"));
        assert!(matches!(
            parse_update("delete hospital//", &v),
            Err(UpdateError::Target(_))
        ));
    }

    #[test]
    fn fragments_may_contain_quoted_angle_brackets_and_nesting() {
        let v = vocab();
        let u = parse_update("insert <a x=\"1>2\"><b/><a><b/></a></a> into r", &v).unwrap();
        match u.kind {
            UpdateKind::Insert { fragment, .. } => {
                assert_eq!(fragment.node_count(), 4);
                assert_eq!(fragment.attribute(fragment.root(), "x"), Some("1>2"));
            }
            _ => panic!("expected insert"),
        }
    }

    #[test]
    fn element_names_prefixed_by_keywords_are_not_keywords() {
        let v = vocab();
        // `deleted` is an element name, not the `delete` keyword.
        assert!(matches!(
            parse_update("deleted", &v),
            Err(UpdateError::Syntax(_))
        ));
        // ... but `delete deleted` deletes elements named `deleted`.
        assert!(parse_update("delete deleted", &v).is_ok());
    }

    #[test]
    fn malformed_statements_are_rejected() {
        let v = vocab();
        for bad in [
            "",
            "upsert <a/> into b",
            "insert into b",
            "insert <a/> inside b",
            "insert <a/> into",
            "insert <a> into b",
            "replace a/b with",
            "replace a/b <b/>",
            "replace a/b with <b/> trailing",
            "replace hospital/bandwith <x/>",
            "replace with <x/>",
            "insert <a></b> into c",
            "insert <!-- no --> into c",
            "delete",
        ] {
            assert!(parse_update(bad, &v).is_err(), "accepted `{bad}`");
        }
    }

    #[test]
    fn fragment_scan_rejects_unbalanced_markup() {
        assert!(
            scan_fragment("<a><b></a>").is_err() || {
                // `</a>` closes `<b>`'s depth slot; the *document parser*
                // rejects the mismatched names.
                let v = vocab();
                parse_update("insert <a><b></a> into c", &v).is_err()
            }
        );
        assert!(scan_fragment("<a x='1'").is_err());
        assert!(scan_fragment("no-fragment").is_err());
    }
}
