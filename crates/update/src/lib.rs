//! # smoqe-update — the write path of the engine
//!
//! SMOQE (VLDB 2006) enforces access control on *reads*; Mahfoud & Imine
//! ("A General Approach for Securely Querying and Updating XML Data",
//! 2012) show the same security-view machinery extends to *writes*. This
//! crate provides the update half of that picture:
//!
//! * an **update language** over Regular XPath targets —
//!   `insert <fragment> into|before|after <path>`, `delete <path>`,
//!   `replace <path> with <fragment>` — with an AST ([`ast`]) and a parser
//!   ([`parse_update`]) whose target expressions go through the `rxpath`
//!   lexer/parser, so queries and update targets share one syntax;
//! * **application** ([`apply_update`]): targets are applied
//!   last-to-first in document order (pre-order ids before an edit window
//!   are stable, so earlier targets stay valid), each edit rebuilds the
//!   arena through `smoqe_xml::edit`, and when a TAX index rides along it
//!   is **incrementally patched** per edit instead of rebuilt.
//!
//! Policy enforcement (which targets a group session may touch) lives in
//! the engine (`smoqe::Session::update`): accessibility is decided against
//! the session's security view, and a denied write is indistinguishable
//! from a write to a non-existent target. This crate is policy-agnostic —
//! it mutates whatever targets it is handed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod apply;
pub mod ast;
pub mod error;
pub mod parse;

pub use apply::apply_update;
pub use ast::{InsertPos, Update, UpdateKind};
pub use error::UpdateError;
pub use parse::parse_update;
