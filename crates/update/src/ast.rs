//! Abstract syntax of the update language.
//!
//! ```text
//! u ::= insert <fragment> (into | before | after) p
//!     | delete p
//!     | replace p with <fragment>
//! ```
//!
//! where `p` is a Regular XPath path (the same language queries use — one
//! lexer, one parser, one semantics for "which nodes does this select")
//! and `<fragment>` is a well-formed XML element.

use smoqe_rxpath::Path;
use smoqe_xml::Document;

/// Where an inserted fragment lands relative to each target node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InsertPos {
    /// `into`: appended as the target's last child.
    Into,
    /// `before`: the target's immediately preceding sibling.
    Before,
    /// `after`: the target's immediately following sibling.
    After,
}

/// What an update does at its targets.
#[derive(Clone)]
pub enum UpdateKind {
    /// `insert <fragment> into/before/after target`.
    Insert {
        /// The parsed fragment; its root element is what gets inserted.
        fragment: Document,
        /// Placement relative to the target.
        pos: InsertPos,
    },
    /// `delete target`: remove each target subtree.
    Delete,
    /// `replace target with <fragment>`.
    Replace {
        /// The parsed replacement; its root element substitutes the
        /// target subtree.
        fragment: Document,
    },
}

/// One parsed update statement: an operation and the Regular XPath
/// expression selecting its target nodes.
#[derive(Clone)]
pub struct Update {
    /// The operation to perform.
    pub kind: UpdateKind,
    /// Selects the target nodes (evaluated from the document root for
    /// admins, against the security view for group sessions).
    pub target: Path,
}

impl Update {
    /// The statement's verb, for messages and reports.
    pub fn verb(&self) -> &'static str {
        match self.kind {
            UpdateKind::Insert { .. } => "insert",
            UpdateKind::Delete => "delete",
            UpdateKind::Replace { .. } => "replace",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verbs_name_the_operation() {
        let vocab = smoqe_xml::Vocabulary::new();
        let frag = Document::parse_str("<x/>", &vocab).unwrap();
        let target = Path::Label(vocab.intern("a"));
        let insert = Update {
            kind: UpdateKind::Insert {
                fragment: frag.clone(),
                pos: InsertPos::Into,
            },
            target: target.clone(),
        };
        let delete = Update {
            kind: UpdateKind::Delete,
            target: target.clone(),
        };
        let replace = Update {
            kind: UpdateKind::Replace { fragment: frag },
            target,
        };
        assert_eq!(insert.verb(), "insert");
        assert_eq!(delete.verb(), "delete");
        assert_eq!(replace.verb(), "replace");
    }
}
