//! Poison-transparent wrappers over [`std::sync`] primitives.
//!
//! The engine previously used `parking_lot`, which is unavailable in this
//! offline build environment. The std primitives are API-compatible except
//! for lock poisoning; since every critical section in the engine is a
//! short, panic-free pointer swap or map update, poisoning carries no
//! recovery information here and is deliberately ignored (`into_inner` on
//! a poisoned guard), matching `parking_lot` semantics.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A reader-writer lock with `parking_lot`-style (non-poisoning) `read` /
/// `write` accessors.
#[derive(Default, Debug)]
pub(crate) struct RwLock<T>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wraps `value`.
    pub(crate) fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Acquires a shared read guard.
    pub(crate) fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard.
    pub(crate) fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// A mutex with a `parking_lot`-style (non-poisoning) `lock` accessor.
/// Serializes the catalog's writers (updates and reloads); readers never
/// take it.
#[derive(Default, Debug)]
pub(crate) struct Mutex<T>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wraps `value`.
    pub(crate) fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Acquires the lock.
    pub(crate) fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_locks_and_survives_poisoning() {
        let m = std::sync::Arc::new(Mutex::<u32>::default());
        *m.lock() = 3;
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison the mutex");
        })
        .join();
        assert_eq!(*m.lock(), 3); // must not panic
    }

    #[test]
    fn read_write_round_trip() {
        let lock = RwLock::new(1);
        assert_eq!(*lock.read(), 1);
        *lock.write() = 2;
        assert_eq!(*lock.read(), 2);
    }

    #[test]
    fn survives_poisoning() {
        let lock = std::sync::Arc::new(RwLock::new(0));
        let l2 = lock.clone();
        let _ = std::thread::spawn(move || {
            let _guard = l2.write();
            panic!("poison the lock");
        })
        .join();
        *lock.write() = 7; // must not panic
        assert_eq!(*lock.read(), 7);
    }
}
