//! Engine configuration.

/// How documents are processed (paper §2, "XML documents").
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum DocumentMode {
    /// The whole document tree in memory; enables TAX pruning.
    #[default]
    Dom,
    /// One sequential scan of the serialized document (StAX mode);
    /// bounded memory, no index.
    Stream,
}

/// How DOM-mode queries traverse the document.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum EvalMode {
    /// Always walk the tree (the compiled scan walker).
    Scan,
    /// Jump between candidate subtrees through the positional label index
    /// whenever the plan allows it (predicate-free DFA plans with a TAX
    /// index); ineligible plans scan.
    Jump,
    /// Pick per query: jump when the plan is eligible **and** its
    /// estimated selectivity (rarest required label's occurrence count /
    /// node count) is at most [`EngineConfig::jump_selectivity`];
    /// otherwise scan, whose per-node constants win on unselective
    /// queries.
    #[default]
    Auto,
}

/// Engine tuning knobs (each is an experiment toggle somewhere in
/// EXPERIMENTS.md).
#[derive(Clone, Copy, Debug)]
pub struct EngineConfig {
    /// DOM or streaming evaluation.
    pub mode: DocumentMode,
    /// Consult the TAX index (DOM mode only) — the E5 toggle.
    pub use_tax: bool,
    /// Run the MFA optimizer on compiled/rewritten queries.
    pub optimize_mfa: bool,
    /// Execute plans through their dense-table compiled form (DFA fast
    /// path, CSR rows, epoch arenas). Off = the per-event NFA interpreter,
    /// kept for differential testing and the `ablation` bench; answers are
    /// identical either way.
    pub compiled_plans: bool,
    /// Scan, jump, or auto-picked DOM traversal (requires
    /// `compiled_plans`; jumping additionally needs a TAX index with its
    /// positional label index, so `use_tax` off pins everything to scan).
    pub eval_mode: EvalMode,
    /// Selectivity ceiling under which auto mode jumps (fraction of the
    /// document the rarest required label occupies).
    pub jump_selectivity: f64,
    /// Worker threads for DOM-mode query batches: `> 1` partitions a
    /// batch's plans across scoped threads sharing one document snapshot
    /// (streaming batches always use the single shared scan instead).
    pub eval_threads: usize,
    /// Maximum number of compiled plans memoized engine-wide (0 disables
    /// the plan cache entirely).
    pub plan_cache_capacity: usize,
    /// Durable engines only: checkpoint automatically after this many
    /// WAL records have accumulated since the last checkpoint (0 = never
    /// checkpoint periodically; explicit [`Engine::checkpoint`]
    /// (crate::engine::Engine::checkpoint) calls — e.g. on graceful
    /// server drain — still work). Ignored by in-memory engines.
    pub checkpoint_every: u64,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            mode: DocumentMode::Dom,
            use_tax: true,
            optimize_mfa: true,
            compiled_plans: true,
            eval_mode: EvalMode::Auto,
            jump_selectivity: 0.1,
            eval_threads: 1,
            plan_cache_capacity: 1024,
            checkpoint_every: 1024,
        }
    }
}

impl EngineConfig {
    /// DOM mode with every optimization off (the baseline configuration).
    pub fn plain() -> Self {
        EngineConfig {
            mode: DocumentMode::Dom,
            use_tax: false,
            optimize_mfa: false,
            compiled_plans: false,
            eval_mode: EvalMode::Scan,
            jump_selectivity: 0.0,
            eval_threads: 1,
            plan_cache_capacity: 0,
            checkpoint_every: 0,
        }
    }

    /// Streaming configuration.
    pub fn streaming() -> Self {
        EngineConfig {
            mode: DocumentMode::Stream,
            use_tax: false,
            optimize_mfa: true,
            ..EngineConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_dom_with_everything_on() {
        let c = EngineConfig::default();
        assert_eq!(c.mode, DocumentMode::Dom);
        assert!(c.use_tax);
        assert!(c.optimize_mfa);
        assert!(c.compiled_plans);
        assert_eq!(c.eval_mode, EvalMode::Auto);
        assert!(c.jump_selectivity > 0.0);
        assert_eq!(c.eval_threads, 1);
        assert!(c.plan_cache_capacity > 0);
        assert!(c.checkpoint_every > 0);
        assert_eq!(EngineConfig::plain().checkpoint_every, 0);
        assert!(!EngineConfig::plain().use_tax);
        assert!(!EngineConfig::plain().compiled_plans);
        assert_eq!(EngineConfig::plain().eval_mode, EvalMode::Scan);
        assert_eq!(EngineConfig::plain().plan_cache_capacity, 0);
        assert_eq!(EngineConfig::streaming().mode, DocumentMode::Stream);
        assert!(EngineConfig::streaming().compiled_plans);
        assert!(EngineConfig::streaming().plan_cache_capacity > 0);
    }
}
