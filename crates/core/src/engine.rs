//! The SMOQE engine façade: a multi-tenant catalog of documents, a shared
//! compiled-plan cache, and owned, thread-safe sessions.
//!
//! Mirrors the architecture of Fig. 1 at serving scale: the engine owns
//! *named* documents (each with its DTD, DOM/stream source, TAX index and
//! registered security views — see [`crate::catalog`]); a [`Session`] is
//! the access path of one user into one document — either an administrator
//! querying it directly, or a member of a user group whose queries are
//! transparently **rewritten** against the group's virtual view and
//! answered without materialization (§2, "Query support").
//!
//! Sessions are owned values (`Arc`-based, `Send + Sync`): one engine
//! answers queries from many threads concurrently. Evaluation works on
//! snapshots (`Arc` clones) of the catalog state, so no lock is held while
//! a query runs, and compiled plans are memoized engine-wide in the
//! [plan cache](crate::plancache).

use crate::catalog::{Catalog, DocHandle, DocumentEntry, LoadedSource, ViewSlot, ViewSource};
use crate::config::{DocumentMode, EngineConfig, EvalMode};
use crate::durable::wal::WalOp;
use crate::error::EngineError;
use crate::plancache::{CacheMetrics, PlanCache, PlanKey};
use smoqe_automata::compile::CompiledMfa;
use smoqe_automata::{compile, optimize::optimize, Mfa};
use smoqe_hype::batch::evaluate_batch_stream_plans_budgeted;
use smoqe_hype::dom::{evaluate_mfa_plan_budgeted, DomOptions};
use smoqe_hype::stream::{evaluate_stream_plan_budgeted, StreamOptions};
use smoqe_hype::{evaluate_jump_frontier_budgeted, jump_available, selectivity_estimate};
use smoqe_hype::{DriverError, EvalObserver, EvalStats, ExecMode, NoopObserver, WorkBudget};
use smoqe_rxpath::parse_path;
use smoqe_tax::TaxIndex;
use smoqe_update::{parse_update, UpdateError};
use smoqe_view::{
    derive, materialize, materialize_fragment, AccessPolicy, MaterializedView, ViewSpec,
};
use smoqe_xml::{Document, Dtd, NodeId, Vocabulary};
use std::path::{Path as FsPath, PathBuf};
use std::sync::Arc;

/// The catalog name used by the single-document convenience methods
/// ([`Engine::load_document`] and friends).
pub const DEFAULT_DOCUMENT: &str = "default";

/// The Secure MOdular Query Engine.
///
/// Construct with [`Engine::new`] / [`Engine::with_defaults`] (both return
/// `Arc<Engine>`), populate the catalog through [`Engine::open_document`],
/// then serve queries through owned [`Session`]s from as many threads as
/// desired.
pub struct Engine {
    vocab: Vocabulary,
    config: EngineConfig,
    catalog: Catalog,
    plans: PlanCache,
    tenants: crate::tenants::TenantRegistry,
    /// Durable state (WAL + checkpoints), set once by
    /// [`Engine::recover`]; `None` for a purely in-memory engine.
    pub(crate) durable: std::sync::OnceLock<Arc<crate::durable::Durability>>,
}

/// Who a session belongs to.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum User {
    /// May query the underlying document directly.
    Admin,
    /// Queries are answered through the group's security view.
    Group(String),
}

/// One user's owned access path into one document of an engine.
///
/// Sessions are `Send + Sync + Clone`: hand them to worker threads freely.
/// A session holds `Arc`s to the engine and its document entry, never
/// locks, so concurrent queries proceed in parallel and a session stays
/// valid (seeing the latest contents) across document reloads.
#[derive(Clone)]
pub struct Session {
    engine: Arc<Engine>,
    entry: Arc<DocumentEntry>,
    user: User,
}

/// A query answer: nodes of the underlying document (in document order)
/// plus evaluation statistics.
#[derive(Debug)]
pub struct Answer {
    /// Answer node ids (ids of the *source* document, document order).
    pub nodes: Vec<NodeId>,
    /// Evaluator counters.
    pub stats: EvalStats,
    /// Whether the plan came from the engine's plan cache.
    pub plan_cached: bool,
    /// The execution mode the plan actually ran in — in particular
    /// whether [`EvalMode::Auto`](crate::config::EvalMode) picked the
    /// jump scan or the tree walk for this query.
    pub mode: ExecMode,
    /// Serialized answer subtrees (always present in stream mode; filled
    /// lazily from the DOM otherwise via [`Answer::serialize_with`]).
    pub xml: Option<Vec<String>>,
}

impl Answer {
    /// Number of answer nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the answer is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Serializes each answer's **raw source subtree** using `doc`.
    ///
    /// Intended for admin-level inspection; view users should go through
    /// [`Session::query_xml`], which filters hidden descendants.
    pub fn serialize_with(&self, doc: &Document) -> Vec<String> {
        self.nodes
            .iter()
            .map(|&n| smoqe_xml::serialize::subtree_to_string(doc, n))
            .collect()
    }
}

/// Result of a batched query.
///
/// Returned by [`Session::query_batch`], [`DocHandle::query_batch`] and
/// [`Engine::evaluate_batch`]. A batch amortizes one of two ways:
///
/// * **Shared scan** (the default, and always in stream mode): every plan
///   rides **one** sequential parse of the document. `events` is the
///   total parser event count of that scan — the same count a *single*
///   streamed query reports, which is the proof the pass was shared — and
///   every answer carries its serialized XML: raw source subtrees for
///   admin sessions, the access-controlled view rendering for group
///   sessions.
/// * **Parallel DOM** (`EngineConfig::eval_threads > 1` in DOM mode): the
///   batch's plans are partitioned across scoped worker threads sharing
///   one `Arc` document/TAX snapshot, each evaluated exactly as
///   [`Session::query`] would (including jump-scan auto-picking), with
///   per-worker statistics merged via [`BatchAnswer::merged_stats`].
///   Nothing is parsed, so `events` is 0 and `xml` stays `None`, like any
///   other DOM-mode answer.
#[derive(Debug)]
pub struct BatchAnswer {
    /// One answer per query, in input order.
    pub answers: Vec<Answer>,
    /// Parser events of the single shared document scan (0 for the
    /// parallel DOM path, which does not parse — it partitions plans over
    /// one in-memory snapshot).
    pub events: usize,
}

impl BatchAnswer {
    /// The per-query evaluation counters merged into one total (additive
    /// counters sum, depth takes the maximum) — the batch-level figure
    /// the parallel DOM path's workers contribute to.
    pub fn merged_stats(&self) -> EvalStats {
        let mut total = EvalStats::default();
        for a in &self.answers {
            total.merge(&a.stats);
        }
        total
    }
}

/// Outcome of one accepted update statement.
///
/// Returned by [`Session::update`], [`DocHandle::update`] and
/// [`DocHandle::update_batch`].
#[derive(Clone, Copy, Debug)]
pub struct UpdateReport {
    /// Number of target nodes the operation was applied to (an update
    /// whose path selects several nodes applies at each of them).
    pub applied: usize,
    /// Node count **of the document as the session sees it** before this
    /// statement: the source document for admins, the security view for
    /// group sessions — source-side counts would reveal how many hidden
    /// nodes an edited subtree contained.
    pub nodes_before: usize,
    /// Same count after the statement.
    pub nodes_after: usize,
    /// Whether a TAX index was present and was **incrementally patched**
    /// across the edit (an update never triggers an index build, and
    /// never discards one either).
    pub tax_patched: bool,
}

impl Engine {
    /// Creates an engine with the given configuration and a fresh
    /// vocabulary.
    pub fn new(config: EngineConfig) -> Arc<Self> {
        Arc::new(Engine {
            vocab: Vocabulary::new(),
            plans: PlanCache::new(config.plan_cache_capacity),
            config,
            catalog: Catalog::default(),
            tenants: crate::tenants::TenantRegistry::default(),
            durable: std::sync::OnceLock::new(),
        })
    }

    /// Creates an engine with default configuration.
    pub fn with_defaults() -> Arc<Self> {
        Engine::new(EngineConfig::default())
    }

    /// The engine's vocabulary (shared by its documents, views and
    /// queries).
    pub fn vocabulary(&self) -> &Vocabulary {
        &self.vocab
    }

    /// The engine configuration.
    pub fn config(&self) -> EngineConfig {
        self.config
    }

    // ------------------------------------------------------------------
    // Catalog management
    // ------------------------------------------------------------------

    /// Opens (creating if necessary) the named document, returning an
    /// owned handle for loading data and minting sessions.
    ///
    /// A durability failure on the creation record is deferred here (an
    /// empty entry holds no data, and every data-bearing operation on the
    /// handle reports the dead durability layer); callers that want it
    /// eagerly use [`Engine::try_open_document`].
    pub fn open_document(self: &Arc<Self>, name: &str) -> DocHandle {
        self.open_document_logged(name).0
    }

    /// Like [`Engine::open_document`], but surfaces a durability failure
    /// on the creation record immediately instead of deferring it to the
    /// first data-bearing operation.
    pub fn try_open_document(self: &Arc<Self>, name: &str) -> Result<DocHandle, EngineError> {
        let (handle, logged) = self.open_document_logged(name);
        logged?;
        Ok(handle)
    }

    fn open_document_logged(self: &Arc<Self>, name: &str) -> (DocHandle, Result<(), EngineError>) {
        let (entry, created) = self.catalog.entry_or_create_tracked(name);
        let logged = if created {
            // Under the new entry's write lock, like every other durable
            // mutation, so the record cannot interleave with a concurrent
            // checkpoint's cut.
            let _writer = entry.write_serial.lock();
            self.durable_log(WalOp::OpenDocument {
                doc: name.to_string(),
            })
        } else {
            Ok(())
        };
        let handle = DocHandle {
            engine: self.clone(),
            entry,
        };
        (handle, logged)
    }

    /// A handle to an *existing* document, or `UnknownDocument`.
    pub fn document_handle(self: &Arc<Self>, name: &str) -> Result<DocHandle, EngineError> {
        Ok(DocHandle {
            engine: self.clone(),
            entry: self.catalog.entry(name)?,
        })
    }

    /// Removes `name` from the catalog and purges its cached plans.
    /// Sessions already bound to the document keep working on it.
    ///
    /// On a durable engine the drop is logged first, so recovery can
    /// never resurrect the document; a drop that cannot be logged does
    /// not happen (and reports `false`) — use
    /// [`Engine::try_drop_document`] to see the durability error.
    pub fn drop_document(&self, name: &str) -> bool {
        self.try_drop_document(name).unwrap_or(false)
    }

    /// Like [`Engine::drop_document`], surfacing durability failures
    /// instead of folding them into `false`.
    pub fn try_drop_document(&self, name: &str) -> Result<bool, EngineError> {
        let Ok(entry) = self.catalog.entry(name) else {
            return Ok(false);
        };
        // Under the entry's write lock the drop record and the catalog
        // removal are atomic with respect to a concurrent checkpoint
        // capture — a checkpoint can never include a document whose drop
        // record its LSN already covers.
        let _writer = entry.write_serial.lock();
        if entry.is_dropped() {
            return Ok(false); // another dropper won the race
        }
        self.durable_log(WalOp::DropDocument {
            doc: name.to_string(),
        })?;
        Ok(self.drop_document_local(name))
    }

    /// The in-memory half of a drop (also the replay path — the record
    /// is already in the log then).
    pub(crate) fn drop_document_local(&self, name: &str) -> bool {
        let existed = self.catalog.remove(name);
        if existed {
            self.plans.purge_document(name);
        }
        existed
    }

    /// The catalog (durability's capture/replay entry point).
    pub(crate) fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Sorted names of the documents currently in the catalog.
    pub fn document_names(&self) -> Vec<String> {
        self.catalog.names()
    }

    /// Point-in-time plan-cache counters (hits, misses, invalidations,
    /// resident entries).
    pub fn cache_metrics(&self) -> CacheMetrics {
        self.plans.metrics()
    }

    /// Sorted per-tenant load counters — one row per principal this engine
    /// has served ([`crate::tenants::ADMIN_TENANT`] for admin sessions,
    /// the group name otherwise). The serving layer's `Stats` op reports
    /// these so per-group load on a shared engine is observable; the CLI
    /// prints them under `--cache-stats`.
    pub fn tenant_metrics(&self) -> Vec<(String, crate::tenants::TenantMetrics)> {
        self.tenants.metrics()
    }

    // ------------------------------------------------------------------
    // Single-document conveniences (operate on `DEFAULT_DOCUMENT`)
    // ------------------------------------------------------------------

    fn default_entry(&self) -> Arc<DocumentEntry> {
        self.catalog.entry_or_create(DEFAULT_DOCUMENT)
    }

    /// Parses and installs the default document's DTD.
    pub fn load_dtd(&self, dtd_text: &str) -> Result<(), EngineError> {
        self.load_dtd_on(&self.default_entry(), dtd_text)
    }

    /// The default document's DTD, if any.
    pub fn dtd(&self) -> Option<Arc<Dtd>> {
        self.default_entry().dtd.read().clone()
    }

    /// Loads the default document from XML text, validating against the
    /// DTD when one is installed.
    pub fn load_document(&self, xml: &str) -> Result<(), EngineError> {
        self.load_document_on(&self.default_entry(), xml)
    }

    /// Loads (and validates) the default document from a file.
    pub fn load_document_file(&self, path: impl AsRef<FsPath>) -> Result<(), EngineError> {
        self.load_document_file_on(&self.default_entry(), path.as_ref())
    }

    /// Installs an already-built default document (e.g. from the
    /// generator).
    pub fn load_document_tree(&self, doc: Document) -> Result<(), EngineError> {
        self.load_document_tree_on(&self.default_entry(), doc)
    }

    /// The loaded default document.
    pub fn document(&self) -> Result<Arc<Document>, EngineError> {
        Ok(self.default_entry().snapshot()?.doc.clone())
    }

    /// Builds the TAX index over the default document (the "indexer" box
    /// of Fig. 1).
    pub fn build_tax_index(&self) -> Result<Arc<TaxIndex>, EngineError> {
        self.build_tax_index_on(&self.default_entry())
    }

    /// The default document's TAX index, if built or loaded.
    pub fn tax_index(&self) -> Option<Arc<TaxIndex>> {
        self.default_entry()
            .source
            .read()
            .as_ref()
            .and_then(|s| s.tax.clone())
    }

    /// Persists the default document's TAX index ("compresses it before
    /// it is stored in disk").
    pub fn save_tax_index(&self, path: impl AsRef<FsPath>) -> Result<(), EngineError> {
        self.save_tax_index_on(&self.default_entry(), path.as_ref())
    }

    /// Loads a TAX index for the default document from disk ("uploads it
    /// from disk when needed").
    pub fn load_tax_index(&self, path: impl AsRef<FsPath>) -> Result<(), EngineError> {
        self.load_tax_index_on(&self.default_entry(), path.as_ref())
    }

    /// Registers a user group of the default document by access-control
    /// policy: the view is derived automatically (§2, automated view
    /// derivation).
    pub fn register_policy(&self, group: &str, policy_text: &str) -> Result<(), EngineError> {
        self.register_policy_on(&self.default_entry(), group, policy_text)
    }

    /// Registers a user group of the default document with a
    /// hand-authored view specification (the DAD/AXSD-style mode).
    pub fn register_view_spec(&self, group: &str, spec_text: &str) -> Result<(), EngineError> {
        self.register_view_spec_on(&self.default_entry(), group, spec_text)
    }

    /// The view spec registered for `group` on the default document.
    pub fn view(&self, group: &str) -> Result<Arc<ViewSpec>, EngineError> {
        Ok(self.default_entry().view_slot(group)?.0)
    }

    /// Opens a session for `user` on the default document.
    pub fn session(self: &Arc<Self>, user: User) -> Session {
        Session::new(self.clone(), self.default_entry(), user)
    }

    /// Opens a session for `user` on an existing named document.
    pub fn session_on(
        self: &Arc<Self>,
        document: &str,
        user: User,
    ) -> Result<Session, EngineError> {
        Ok(Session::new(
            self.clone(),
            self.catalog.entry(document)?,
            user,
        ))
    }

    /// Compiles (and, per config, rewrites and optimizes) a query for
    /// `user` on the default document, consulting the plan cache.
    pub fn plan(&self, user: &User, query: &str) -> Result<Arc<Mfa>, EngineError> {
        self.plan_on(&self.default_entry(), user, query)
    }

    /// The execution mode streaming paths run plans in (jumping needs
    /// random access, so streams only ever compile or interpret).
    fn exec_mode(&self) -> ExecMode {
        if self.config.compiled_plans {
            ExecMode::Compiled
        } else {
            ExecMode::Interpreted
        }
    }

    /// Picks the DOM traversal for one (plan, snapshot) pair: scan, jump,
    /// or — in auto mode — whichever the selectivity estimate favours.
    /// Observed evaluations always scan (a jump produces no per-node
    /// event stream for the observer).
    fn resolve_dom_mode(
        &self,
        source: &LoadedSource,
        plan: &CompiledMfa,
        observed: bool,
    ) -> ExecMode {
        if !self.config.compiled_plans {
            return ExecMode::Interpreted;
        }
        if observed {
            return ExecMode::Compiled;
        }
        let tax = if self.config.use_tax {
            source.tax.as_deref()
        } else {
            None
        };
        let jumpable = jump_available(&source.doc, plan, tax);
        match self.config.eval_mode {
            EvalMode::Scan => ExecMode::Compiled,
            EvalMode::Jump if jumpable => ExecMode::Jump,
            EvalMode::Auto
                if jumpable
                    && selectivity_estimate(&source.doc, plan, tax)
                        .measured()
                        .is_some_and(|s| s <= self.config.jump_selectivity) =>
            {
                ExecMode::Jump
            }
            // An unselective estimate, a `NoRequiredLabel` plan, or (in
            // principle — `jumpable` already implies an index) a
            // `NoIndex` report all stay on the scan walker.
            _ => ExecMode::Compiled,
        }
    }

    /// Materializes the view of `group` over the default document — only
    /// used by tests and the E6 baseline; production queries never
    /// materialize.
    pub fn materialize_view(
        &self,
        group: &str,
    ) -> Result<smoqe_view::MaterializedView, EngineError> {
        let entry = self.default_entry();
        let spec = entry.view_slot(group)?.0;
        let doc = entry.snapshot()?.doc.clone();
        Ok(materialize(&spec, &doc)?)
    }

    // ------------------------------------------------------------------
    // Per-entry operations (shared by DocHandle and the conveniences)
    // ------------------------------------------------------------------

    pub(crate) fn load_dtd_on(
        &self,
        entry: &Arc<DocumentEntry>,
        dtd_text: &str,
    ) -> Result<(), EngineError> {
        let dtd = Dtd::parse(dtd_text, &self.vocab)?;
        let _writer = entry.write_serial.lock();
        self.durable_log(WalOp::LoadDtd {
            doc: entry.name().to_string(),
            text: dtd_text.to_string(),
        })?;
        *entry.dtd.write() = Some(Arc::new(dtd));
        *entry.dtd_text.write() = Some(Arc::from(dtd_text));
        entry.bump_generation();
        self.plans.purge_document(entry.name());
        Ok(())
    }

    fn install_document(
        &self,
        entry: &Arc<DocumentEntry>,
        doc: Document,
        raw: Option<Arc<str>>,
        path: Option<PathBuf>,
        log_xml: Arc<str>,
    ) -> Result<(), EngineError> {
        // A fresh source carries no TAX index (the old one described the
        // old document) and invalidates the cached plans. The WAL record
        // goes first, under the same write lock that orders installs, so
        // log order and install order can never disagree.
        let _writer = entry.write_serial.lock();
        self.durable_log(WalOp::LoadDocument {
            doc: entry.name().to_string(),
            xml: log_xml.to_string(),
        })?;
        *entry.source.write() = Some(Arc::new(LoadedSource {
            doc: Arc::new(doc),
            raw,
            path,
            tax: None,
        }));
        entry.bump_generation();
        self.plans.purge_document(entry.name());
        Ok(())
    }

    pub(crate) fn load_document_on(
        &self,
        entry: &Arc<DocumentEntry>,
        xml: &str,
    ) -> Result<(), EngineError> {
        let doc = Document::parse_str(xml, &self.vocab)?;
        if let Some(dtd) = entry.dtd.read().clone() {
            dtd.validate(&doc)?;
        }
        // Streaming mode reads the document's own shared buffer — the
        // input is held exactly once.
        let raw = doc.shared_buffer();
        let log_xml = raw.clone().unwrap_or_else(|| Arc::from(xml));
        self.install_document(entry, doc, raw, None, log_xml)
    }

    pub(crate) fn load_document_file_on(
        &self,
        entry: &Arc<DocumentEntry>,
        path: &FsPath,
    ) -> Result<(), EngineError> {
        let path = path.to_path_buf();
        let doc = smoqe_xml::parse_file(&path, &self.vocab)?;
        if let Some(dtd) = entry.dtd.read().clone() {
            dtd.validate(&doc)?;
        }
        let log_xml = doc
            .shared_buffer()
            .unwrap_or_else(|| Arc::from(doc.to_xml()));
        self.install_document(entry, doc, None, Some(path), log_xml)
    }

    pub(crate) fn load_document_tree_on(
        &self,
        entry: &Arc<DocumentEntry>,
        doc: Document,
    ) -> Result<(), EngineError> {
        // Parsed documents already hold their source; programmatically
        // built trees serialize once to obtain a streamable buffer.
        let raw = doc
            .shared_buffer()
            .unwrap_or_else(|| Arc::from(doc.to_xml()));
        self.install_document(entry, doc, Some(raw.clone()), None, raw)
    }

    pub(crate) fn build_tax_index_on(
        &self,
        entry: &Arc<DocumentEntry>,
    ) -> Result<Arc<TaxIndex>, EngineError> {
        let snapshot = entry.snapshot()?;
        let tax = Arc::new(TaxIndex::build(&snapshot.doc));
        self.attach_tax_logged(entry, &snapshot, tax.clone())?;
        Ok(tax)
    }

    /// [`Engine::attach_tax_restored`] plus a WAL record (when the index
    /// actually attached), under the entry's write lock so the record's
    /// position among the entry's updates matches the document state the
    /// index was built over.
    fn attach_tax_logged(
        &self,
        entry: &Arc<DocumentEntry>,
        built_over: &LoadedSource,
        tax: Arc<TaxIndex>,
    ) -> Result<(), EngineError> {
        let _writer = entry.write_serial.lock();
        let mut source = entry.source.write();
        if let Some(current) = source.as_ref() {
            if Arc::ptr_eq(&current.doc, &built_over.doc) {
                self.durable_log(WalOp::BuildTaxIndex {
                    doc: entry.name().to_string(),
                })?;
                *source = Some(Arc::new(current.with_tax(tax)));
            }
        }
        Ok(())
    }

    /// Installs `tax` on the entry's source, but only if the source is
    /// still the one the index was built over — a concurrent reload makes
    /// the freshly built index describe a dead document, in which case it
    /// is discarded (the reload already invalidated it).
    pub(crate) fn attach_tax_restored(
        &self,
        entry: &Arc<DocumentEntry>,
        built_over: &LoadedSource,
        tax: Arc<TaxIndex>,
    ) {
        let mut source = entry.source.write();
        if let Some(current) = source.as_ref() {
            if Arc::ptr_eq(&current.doc, &built_over.doc) {
                *source = Some(Arc::new(current.with_tax(tax)));
            }
        }
    }

    pub(crate) fn save_tax_index_on(
        &self,
        entry: &Arc<DocumentEntry>,
        path: &FsPath,
    ) -> Result<(), EngineError> {
        let tax = entry
            .snapshot()?
            .tax
            .clone()
            .ok_or(EngineError::NoDocument)?;
        tax.save_to_file(path, &self.vocab)?;
        Ok(())
    }

    pub(crate) fn load_tax_index_on(
        &self,
        entry: &Arc<DocumentEntry>,
        path: &FsPath,
    ) -> Result<(), EngineError> {
        let snapshot = entry.snapshot()?;
        let mut tax = TaxIndex::load_from_file(path, &self.vocab)?;
        // The on-disk format carries the descendant sets only; rebuild
        // the positional label index from the live document so jump-scan
        // evaluation works for loaded indexes too.
        tax.attach_label_index(&snapshot.doc);
        self.attach_tax_logged(entry, &snapshot, Arc::new(tax))
    }

    pub(crate) fn register_policy_on(
        &self,
        entry: &Arc<DocumentEntry>,
        group: &str,
        policy_text: &str,
    ) -> Result<(), EngineError> {
        let dtd = entry.dtd.read().clone().ok_or(EngineError::NoDocument)?;
        let policy = AccessPolicy::parse((*dtd).clone(), policy_text)?;
        let spec = derive(&policy);
        spec.validate(&dtd)?;
        self.install_view(
            entry,
            group,
            spec,
            ViewSource::Policy(Arc::from(policy_text)),
        )
    }

    pub(crate) fn register_view_spec_on(
        &self,
        entry: &Arc<DocumentEntry>,
        group: &str,
        spec_text: &str,
    ) -> Result<(), EngineError> {
        let spec = ViewSpec::parse(spec_text, &self.vocab)?;
        if let Some(dtd) = entry.dtd.read().clone() {
            spec.validate(&dtd)?;
        }
        self.install_view(entry, group, spec, ViewSource::Spec(Arc::from(spec_text)))
    }

    fn install_view(
        &self,
        entry: &Arc<DocumentEntry>,
        group: &str,
        spec: ViewSpec,
        source: ViewSource,
    ) -> Result<(), EngineError> {
        // Registrations serialize with the entry's other writers so the
        // WAL interleaves view changes and updates in install order — a
        // replayed group update must resolve against the same view
        // version the original write saw.
        let _writer = entry.write_serial.lock();
        self.durable_log(match &source {
            ViewSource::Policy(text) => WalOp::RegisterPolicy {
                doc: entry.name().to_string(),
                group: group.to_string(),
                text: text.to_string(),
            },
            ViewSource::Spec(text) => WalOp::RegisterViewSpec {
                doc: entry.name().to_string(),
                group: group.to_string(),
                text: text.to_string(),
            },
        })?;
        let slot = ViewSlot {
            spec: Arc::new(spec),
            generation: entry.next_view_generation(),
            source,
        };
        entry.views.write().insert(group.to_string(), slot);
        self.plans.purge_view(entry.name(), group);
        Ok(())
    }

    /// Plans `query` for `user` on `entry`: cache lookup first, full
    /// parse → rewrite → compile → optimize pipeline on a miss.
    pub(crate) fn plan_on(
        &self,
        entry: &Arc<DocumentEntry>,
        user: &User,
        query: &str,
    ) -> Result<Arc<Mfa>, EngineError> {
        Ok(self.plan_tracked(entry, user, query)?.0.mfa_arc().clone())
    }

    /// Like [`Engine::plan_on`], also reporting whether the plan was a
    /// cache hit.
    pub(crate) fn plan_tracked(
        &self,
        entry: &Arc<DocumentEntry>,
        user: &User,
        query: &str,
    ) -> Result<(Arc<CompiledMfa>, bool), EngineError> {
        // Resolve the view first: an unknown group must error even for
        // queries that were cached for other principals.
        let (spec, view_generation) = match user {
            User::Admin => (None, 0),
            User::Group(g) => {
                let (spec, generation) = entry.view_slot(g)?;
                (Some(spec), generation)
            }
        };
        let doc_generation = entry.generation();
        // Plans of a dropped entry stay out of the shared cache: the drop
        // purged them, and sessions still bound to the entry must not
        // regrow residency for a document the catalog has forgotten.
        let cacheable = !entry.is_dropped();
        let key = PlanKey {
            document: entry.name().to_string(),
            entry_id: entry.id(),
            doc_generation,
            scope: PlanKey::scope_of(user, view_generation),
            query: query.to_string(),
            optimized: self.config.optimize_mfa,
        };
        if cacheable {
            if let Some(plan) = self.plans.get(&key) {
                return Ok((plan, true));
            }
        }
        let path = parse_path(query, &self.vocab)?;
        let mfa = match &spec {
            None => compile(&path, &self.vocab),
            Some(spec) => smoqe_rewrite::rewrite(&path, spec),
        };
        let mfa = Arc::new(if self.config.optimize_mfa {
            optimize(&mfa)
        } else {
            mfa
        });
        // Table compilation (ε-closures, subset DFAs, CSR rows, required
        // labels) happens exactly once per cached plan; every evaluation
        // of the plan — any session, batch lane or thread — reuses it.
        let mfa = Arc::new(CompiledMfa::from_arc(mfa));
        if cacheable {
            self.plans.insert(key, mfa.clone(), doc_generation);
            // A concurrent drop_document may have marked the entry and
            // purged between the check above and the insert; whichever
            // side purges last wins, so re-checking here closes the race
            // (drop marks before it purges).
            if entry.is_dropped() {
                self.plans.purge_document(entry.name());
            }
        }
        Ok((mfa, false))
    }

    // ------------------------------------------------------------------
    // Secure updates
    // ------------------------------------------------------------------

    /// Applies a sequence of update statements to `entry` on behalf of
    /// `user`, **all-or-nothing**.
    ///
    /// * **Target resolution.** Admins resolve targets directly against
    ///   the document. Group users resolve them against their *security
    ///   view*: the view is materialized over the snapshot (the same
    ///   [`smoqe_view::accessible_nodes`] relation that defines read
    ///   semantics), the target path is evaluated **on the view**, and
    ///   the selected view nodes map back to their source origins. A
    ///   hidden node is therefore never selected, and an empty target set
    ///   — whether the node is hidden, conditionally hidden, or simply
    ///   absent — yields the same opaque [`EngineError::UpdateDenied`].
    /// * **Application.** Each statement's targets are applied
    ///   last-to-first (pre-order ids before an edit window are stable),
    ///   rebuilding the arena per edit and **incrementally patching** the
    ///   TAX index instead of rebuilding it.
    /// * **Conformance.** The final document is validated against the
    ///   entry's DTD. Admins see the typed schema error; for group users
    ///   it collapses into `UpdateDenied` too — a validation message
    ///   could describe content the view hides.
    /// * **Installation.** Only after everything succeeded is the new
    ///   snapshot swapped in, the entry's generation bumped, and exactly
    ///   this document's cached plans invalidated. Writers are serialized
    ///   on the entry's write lock; readers keep evaluating on their old
    ///   snapshot throughout and are never blocked.
    pub(crate) fn apply_updates_on(
        &self,
        entry: &Arc<DocumentEntry>,
        user: &User,
        updates: &[&str],
    ) -> Result<Vec<UpdateReport>, EngineError> {
        let result = self.apply_updates_inner(entry, user, updates);
        self.tenants
            .record_update(user, updates.len(), result.as_ref().err());
        if result.is_ok() {
            // The periodic checkpoint cadence rides the update path (the
            // only high-frequency durable mutation).
            self.maybe_checkpoint();
        }
        result
    }

    pub(crate) fn apply_updates_inner(
        &self,
        entry: &Arc<DocumentEntry>,
        user: &User,
        updates: &[&str],
    ) -> Result<Vec<UpdateReport>, EngineError> {
        if updates.is_empty() {
            return Ok(Vec::new());
        }
        let _writer = entry.write_serial.lock();
        let snapshot = entry.snapshot()?;
        let dtd = entry.dtd.read().clone();
        let mut doc: Arc<Document> = snapshot.doc.clone();
        let mut tax: Option<Arc<TaxIndex>> = snapshot.tax.clone();
        let mut reports = Vec::with_capacity(updates.len());
        // One view spec for the whole transaction (group sessions only).
        let spec = match user {
            User::Admin => None,
            User::Group(group) => Some(entry.view_slot(group)?.0),
        };
        // The materialized view of the *current* document state: target
        // resolution and the report's node counts both read it, and each
        // post-edit state is materialized exactly once (reused as the
        // next statement's pre-state). A group update that breaks
        // materialization itself (e.g. replacing the root with a foreign
        // type) is opaquely denied — a ViewError message is not part of
        // the group update contract.
        let make_view = |doc: &Document| -> Result<Option<MaterializedView>, EngineError> {
            match &spec {
                None => Ok(None),
                Some(spec) => match materialize(spec, doc) {
                    Ok(view) => Ok(Some(view)),
                    Err(_) => Err(EngineError::UpdateDenied),
                },
            }
        };
        // Group sessions never see source-side node counts: the report
        // counts the document *as the session sees it* (the view), or a
        // delete of a visible node with hidden descendants would leak how
        // many hidden nodes its subtree held.
        let visible_count = |doc: &Document, view: &Option<MaterializedView>| match view {
            None => doc.node_count(),
            Some(view) => view.doc.node_count(),
        };
        let mut view = make_view(&doc)?;
        let mut nodes_before = visible_count(&doc, &view);
        for text in updates {
            let update = parse_update(text, &self.vocab)?;
            let targets: Vec<NodeId> = match &view {
                None => smoqe_rxpath::evaluate(&doc, &update.target).into_vec(),
                Some(view) => {
                    let hits = smoqe_rxpath::evaluate(&view.doc, &update.target);
                    view.origins_of(hits.iter())
                }
            };
            if targets.is_empty() {
                return Err(match user {
                    User::Admin => EngineError::Update(UpdateError::NoTarget),
                    User::Group(_) => EngineError::UpdateDenied,
                });
            }
            let (new_doc, new_tax, applied) =
                smoqe_update::apply_update(&doc, &update, &targets, tax.as_deref())?;
            doc = Arc::new(new_doc);
            tax = new_tax.map(Arc::new);
            view = make_view(&doc)?;
            let nodes_after = visible_count(&doc, &view);
            reports.push(UpdateReport {
                applied,
                nodes_before,
                nodes_after,
                tax_patched: tax.is_some(),
            });
            nodes_before = nodes_after;
        }
        if let Some(dtd) = dtd {
            dtd.validate(&doc).map_err(|e| match user {
                User::Admin => EngineError::Update(UpdateError::Schema(e)),
                // A schema message can describe hidden content; the view
                // user learns only that the write did not happen.
                User::Group(_) => EngineError::UpdateDenied,
            })?;
        }
        // Buffer-spliced updates leave the new document holding its own
        // serialized source; rebuild-path updates serialize once here.
        let raw = doc
            .shared_buffer()
            .unwrap_or_else(|| Arc::from(doc.to_xml()));
        // Write-ahead: the accepted transaction is logged (statement
        // texts + acting principal) before the snapshot is installed. A
        // crash after this point recovers *with* the transaction; before
        // it, without — either way a prefix, never a torn document.
        self.durable_log(WalOp::Update {
            doc: entry.name().to_string(),
            group: match user {
                User::Admin => None,
                User::Group(g) => Some(g.clone()),
            },
            statements: updates.iter().map(|s| s.to_string()).collect(),
        })?;
        *entry.source.write() = Some(Arc::new(LoadedSource {
            doc,
            raw: Some(raw),
            path: None,
            tax,
        }));
        entry.bump_generation();
        if !entry.is_dropped() {
            // Dropped entries have no plans in the cache (and purging by
            // name would hit an unrelated re-opened document).
            self.plans.purge_document(entry.name());
        }
        Ok(reports)
    }

    /// Applies one admin update to the default document (single-document
    /// convenience; see [`DocHandle::update`]).
    pub fn update(&self, update: &str) -> Result<UpdateReport, EngineError> {
        let mut reports = self.apply_updates_on(&self.default_entry(), &User::Admin, &[update])?;
        Ok(reports.pop().expect("one statement yields one report"))
    }

    /// Evaluates each `(session, query)` request — possibly for different
    /// users, groups and views — against their (shared) document in **one
    /// sequential scan**.
    ///
    /// Every session must belong to this engine and target the same
    /// catalog entry; mixing documents or engines is a
    /// [`EngineError::BatchMismatch`] (one scan can only serve one
    /// document). Plans are resolved per request through the shared plan
    /// cache, so a busy serving mix pays at most one compilation per
    /// distinct `(scope, query)` pair and exactly one parse of the
    /// document for the whole batch.
    pub fn evaluate_batch(
        self: &Arc<Self>,
        requests: &[(&Session, &str)],
    ) -> Result<BatchAnswer, EngineError> {
        let Some((first, _)) = requests.first() else {
            return Ok(BatchAnswer {
                answers: Vec::new(),
                events: 0,
            });
        };
        let entry = first.entry.clone();
        let mut parts = Vec::with_capacity(requests.len());
        for (session, query) in requests {
            if !Arc::ptr_eq(&session.engine, self) || !Arc::ptr_eq(&session.entry, &entry) {
                return Err(EngineError::BatchMismatch);
            }
            let (mfa, cached) = self.plan_tracked(&entry, &session.user, query)?;
            parts.push((session.user.clone(), mfa, cached));
        }
        let result = self.evaluate_batch_parts(&entry, &parts, &WorkBudget::unlimited());
        // Cross-session batches account each answer to its own tenant
        // (the per-session `query_batch` path records through
        // `record_batch` instead).
        match &result {
            Ok(batch) => {
                for ((session, _), answer) in requests.iter().zip(&batch.answers) {
                    self.tenants.record_query(&session.user, Ok(answer));
                }
            }
            Err(e) => {
                for (session, _) in requests {
                    self.tenants.record_query(&session.user, Err(e));
                }
            }
        }
        result
    }

    /// Shared batch path: one snapshot, one scan, N machines — or, for
    /// DOM engines with `eval_threads > 1`, one snapshot partitioned
    /// across worker threads. `parts` are `(user, plan, plan_cached)`
    /// triples in answer order.
    pub(crate) fn evaluate_batch_parts(
        &self,
        entry: &Arc<DocumentEntry>,
        parts: &[(User, Arc<CompiledMfa>, bool)],
        budget: &WorkBudget,
    ) -> Result<BatchAnswer, EngineError> {
        if parts.is_empty() {
            return Ok(BatchAnswer {
                answers: Vec::new(),
                events: 0,
            });
        }
        let source = entry.snapshot()?;
        if self.config.mode == DocumentMode::Dom && self.config.eval_threads > 1 {
            return self.evaluate_batch_parallel(&source, parts, budget);
        }
        // Single-threaded batches evaluate by streaming (one shared scan)
        // and every answer is returned serialized. Only admin lanes
        // buffer subtree XML during the scan; group answers are rendered
        // through their view from the snapshot's DOM afterwards (the raw
        // buffered subtrees would leak hidden descendants and be
        // discarded anyway). Node ids are mode-independent by the parity
        // invariant, so DOM-mode engines get identical answers.
        let plans: Vec<(&CompiledMfa, StreamOptions)> = parts
            .iter()
            .map(|(user, mfa, _)| {
                let want_xml = matches!(user, User::Admin);
                (mfa.as_ref(), StreamOptions { want_xml })
            })
            .collect();
        let mode = self.exec_mode();
        let mut observers: Vec<NoopObserver> = plans.iter().map(|_| NoopObserver).collect();
        let mut dyns: Vec<&mut dyn EvalObserver> = observers
            .iter_mut()
            .map(|o| o as &mut dyn EvalObserver)
            .collect();
        let outcome = if let Some(path) = &source.path {
            let file = std::fs::File::open(path).map_err(smoqe_xml::XmlError::Io)?;
            evaluate_batch_stream_plans_budgeted(
                std::io::BufReader::new(file),
                &plans,
                &self.vocab,
                mode,
                &mut dyns,
                budget,
            )
            .map_err(driver_error)?
        } else if let Some(raw) = &source.raw {
            evaluate_batch_stream_plans_budgeted(
                raw.as_bytes(),
                &plans,
                &self.vocab,
                mode,
                &mut dyns,
                budget,
            )
            .map_err(driver_error)?
        } else {
            return Err(EngineError::NoStreamSource);
        };
        let events = outcome.events;
        let mut answers = Vec::with_capacity(parts.len());
        for (out, (user, _, cached)) in outcome.outcomes.into_iter().zip(parts) {
            let mut answer = Answer {
                nodes: out.answers.into_iter().map(NodeId).collect(),
                stats: out.stats,
                plan_cached: *cached,
                mode,
                xml: out.answer_xml,
            };
            if let User::Group(g) = user {
                answer.xml = Some(render_view_xml(entry, g, &source, &answer.nodes)?);
            }
            answers.push(answer);
        }
        Ok(BatchAnswer { answers, events })
    }

    /// The parallel DOM batch path. Plans that resolve to jump mode (per
    /// the same scan/jump auto-pick [`Session::query`] applies) merge
    /// their candidate lists into **one shared ascending frontier**,
    /// partitioned by frontier ranges across
    /// [`EngineConfig::eval_threads`] workers — one hop sequence drives
    /// all of them instead of each worker re-walking the document. The
    /// remaining plans partition across scoped workers as before, all
    /// evaluating against the same `Arc` document/TAX snapshot
    /// (`Send + Sync`, no worker takes a lock). Answers are independent
    /// of the thread count by construction.
    fn evaluate_batch_parallel(
        &self,
        source: &Arc<LoadedSource>,
        parts: &[(User, Arc<CompiledMfa>, bool)],
        budget: &WorkBudget,
    ) -> Result<BatchAnswer, EngineError> {
        let mut slots: Vec<Option<Result<Answer, EngineError>>> = Vec::new();
        slots.resize_with(parts.len(), || None);
        let mut jump_idx: Vec<usize> = Vec::new();
        let mut scan_idx: Vec<usize> = Vec::new();
        for (i, (_, plan, _)) in parts.iter().enumerate() {
            if self.resolve_dom_mode(source, plan, false) == ExecMode::Jump {
                jump_idx.push(i);
            } else {
                scan_idx.push(i);
            }
        }
        if !jump_idx.is_empty() {
            let tax = source
                .tax
                .as_deref()
                .expect("resolving to jump mode implies a TAX index");
            let plans: Vec<&CompiledMfa> = jump_idx.iter().map(|&i| parts[i].1.as_ref()).collect();
            let outcomes = evaluate_jump_frontier_budgeted(
                &source.doc,
                &plans,
                tax,
                self.config.eval_threads,
                budget,
            )
            .map_err(|interrupt| EngineError::from(interrupt.kind))?;
            for (&i, outcome) in jump_idx.iter().zip(outcomes) {
                match outcome {
                    Some((nodes, stats)) => {
                        slots[i] = Some(Ok(Answer {
                            nodes: nodes.into_vec(),
                            stats,
                            plan_cached: parts[i].2,
                            mode: ExecMode::Jump,
                            xml: None,
                        }));
                    }
                    // The mode pick said jump but the frontier could not
                    // admit the plan: evaluate it with the scan workers.
                    None => scan_idx.push(i),
                }
            }
            scan_idx.sort_unstable();
        }
        if !scan_idx.is_empty() {
            let workers = self.config.eval_threads.min(scan_idx.len()).max(1);
            let chunk = scan_idx.len().div_ceil(workers);
            let mut scan_slots: Vec<Option<Result<Answer, EngineError>>> = Vec::new();
            scan_slots.resize_with(scan_idx.len(), || None);
            std::thread::scope(|scope| {
                for (idx_chunk, slot_chunk) in
                    scan_idx.chunks(chunk).zip(scan_slots.chunks_mut(chunk))
                {
                    scope.spawn(move || {
                        for (&i, slot) in idx_chunk.iter().zip(slot_chunk.iter_mut()) {
                            let (_, plan, cached) = &parts[i];
                            let result = self
                                .evaluate_snapshot_budgeted(source, plan, &mut NoopObserver, budget)
                                .map(|mut answer| {
                                    answer.plan_cached = *cached;
                                    answer
                                });
                            *slot = Some(result);
                        }
                    });
                }
            });
            for (i, slot) in scan_idx.into_iter().zip(scan_slots) {
                slots[i] = slot;
            }
        }
        let answers = slots
            .into_iter()
            .map(|slot| slot.expect("every batch slot is written by its worker"))
            .collect::<Result<Vec<Answer>, EngineError>>()?;
        Ok(BatchAnswer { answers, events: 0 })
    }

    /// Evaluates a compiled plan against one consistent source snapshot
    /// (document + its TAX index travel together inside the
    /// `LoadedSource`) under a [`WorkBudget`]: the evaluator abandons mid-scan
    /// — surfacing the opaque [`EngineError::DeadlineExceeded`] /
    /// [`EngineError::Cancelled`] — when the deadline passes or the
    /// cancel token flips. Abandonment drops only evaluator-local state;
    /// the snapshot is immutable and shared by reference, so a torn-down
    /// evaluation leaves nothing to clean up.
    pub(crate) fn evaluate_snapshot_budgeted(
        &self,
        source: &LoadedSource,
        plan: &CompiledMfa,
        observer: &mut dyn EvalObserver,
        budget: &WorkBudget,
    ) -> Result<Answer, EngineError> {
        let mode = self.exec_mode();
        match self.config.mode {
            DocumentMode::Dom => {
                let tax = if self.config.use_tax {
                    source.tax.as_deref()
                } else {
                    None
                };
                let mode = self.resolve_dom_mode(source, plan, !observer.is_noop());
                let options = DomOptions { tax };
                let (nodes, stats) =
                    evaluate_mfa_plan_budgeted(&source.doc, plan, &options, mode, observer, budget)
                        .map_err(|interrupt| EngineError::from(interrupt.kind))?;
                Ok(Answer {
                    nodes: nodes.into_vec(),
                    stats,
                    plan_cached: false,
                    mode,
                    xml: None,
                })
            }
            DocumentMode::Stream => {
                let options = StreamOptions { want_xml: true };
                let outcome = if let Some(path) = &source.path {
                    let file = std::fs::File::open(path).map_err(smoqe_xml::XmlError::Io)?;
                    evaluate_stream_plan_budgeted(
                        std::io::BufReader::new(file),
                        plan,
                        &self.vocab,
                        options,
                        mode,
                        observer,
                        budget,
                    )
                    .map_err(driver_error)?
                } else if let Some(raw) = &source.raw {
                    evaluate_stream_plan_budgeted(
                        raw.as_bytes(),
                        plan,
                        &self.vocab,
                        options,
                        mode,
                        observer,
                        budget,
                    )
                    .map_err(driver_error)?
                } else {
                    return Err(EngineError::NoStreamSource);
                };
                Ok(Answer {
                    nodes: outcome.answers.into_iter().map(NodeId).collect(),
                    stats: outcome.stats,
                    plan_cached: false,
                    mode,
                    xml: outcome.answer_xml,
                })
            }
        }
    }
}

/// Maps a streaming-driver failure onto the engine error surface: parse
/// failures keep their detail, budget interrupts collapse to the opaque
/// deadline/cancel variants.
fn driver_error(e: DriverError) -> EngineError {
    match e {
        DriverError::Xml(e) => EngineError::Xml(e),
        DriverError::Interrupted(interrupt) => interrupt.kind.into(),
    }
}

/// Serializes each answer node through `group`'s view so hidden
/// descendants never reach the user (stream mode buffers raw source
/// subtrees; serving them to a view user verbatim would leak).
fn render_view_xml(
    entry: &Arc<DocumentEntry>,
    group: &str,
    source: &LoadedSource,
    nodes: &[NodeId],
) -> Result<Vec<String>, EngineError> {
    let spec = entry.view_slot(group)?.0;
    nodes
        .iter()
        .map(|&n| {
            let fragment = materialize_fragment(&spec, &source.doc, n)?;
            Ok(fragment.doc.to_xml())
        })
        .collect()
}

impl Session {
    pub(crate) fn new(engine: Arc<Engine>, entry: Arc<DocumentEntry>, user: User) -> Self {
        Session {
            engine,
            entry,
            user,
        }
    }

    /// The session's user.
    pub fn user(&self) -> &User {
        &self.user
    }

    /// The catalog name of the document this session queries.
    pub fn document_name(&self) -> &str {
        self.entry.name()
    }

    /// The engine this session belongs to.
    pub fn engine(&self) -> &Arc<Engine> {
        &self.engine
    }

    /// Answers a Regular XPath query. Group sessions are rewritten through
    /// their view; admin sessions run directly on the document.
    pub fn query(&self, query: &str) -> Result<Answer, EngineError> {
        self.query_observed(query, &mut NoopObserver)
    }

    /// Like [`Session::query`], reporting evaluation events to `observer`
    /// (the iSMOQE monitoring hook).
    pub fn query_observed(
        &self,
        query: &str,
        observer: &mut dyn EvalObserver,
    ) -> Result<Answer, EngineError> {
        Ok(self
            .query_with_source(query, observer, &WorkBudget::unlimited())?
            .0)
    }

    /// The shared query path: plan (cached), take ONE source snapshot,
    /// evaluate against it, and re-render stream answers through the view
    /// using that same snapshot. Answer node ids are only meaningful
    /// relative to the returned snapshot's document, so serialization must
    /// use it too — a concurrent reload must never mix documents.
    fn query_with_source(
        &self,
        query: &str,
        observer: &mut dyn EvalObserver,
        budget: &WorkBudget,
    ) -> Result<(Answer, Arc<crate::catalog::LoadedSource>), EngineError> {
        let result = self.query_with_source_inner(query, observer, budget);
        self.engine
            .tenants
            .record_query(&self.user, result.as_ref().map(|(a, _)| a));
        result
    }

    fn query_with_source_inner(
        &self,
        query: &str,
        observer: &mut dyn EvalObserver,
        budget: &WorkBudget,
    ) -> Result<(Answer, Arc<crate::catalog::LoadedSource>), EngineError> {
        let (mfa, cached) = self.engine.plan_tracked(&self.entry, &self.user, query)?;
        let source = self.entry.snapshot()?;
        let mut answer = self
            .engine
            .evaluate_snapshot_budgeted(&source, &mfa, observer, budget)?;
        answer.plan_cached = cached;
        // Stream mode buffers raw source subtrees; for group sessions
        // re-render each answer through the view so hidden descendants
        // never reach the user.
        if answer.xml.is_some() {
            if let User::Group(g) = &self.user {
                answer.xml = Some(render_view_xml(&self.entry, g, &source, &answer.nodes)?);
            }
        }
        Ok((answer, source))
    }

    /// Answers a whole batch of queries in **one sequential scan** of the
    /// document (all plans are fed the same pull-parser events; see
    /// [`smoqe_hype::batch`]). Answers come back in query order, each
    /// identical to what [`Session::query`] would have returned, plus the
    /// shared event count proving the document was parsed once.
    pub fn query_batch(&self, queries: &[&str]) -> Result<BatchAnswer, EngineError> {
        self.query_batch_budgeted(queries, &WorkBudget::unlimited())
    }

    /// [`Session::query_batch`] under a [`WorkBudget`] shared by every
    /// plan in the batch (one scan, one deadline).
    pub fn query_batch_budgeted(
        &self,
        queries: &[&str],
        budget: &WorkBudget,
    ) -> Result<BatchAnswer, EngineError> {
        let result = self.query_batch_inner(queries, budget);
        self.engine
            .tenants
            .record_batch(&self.user, queries.len(), result.as_ref());
        result
    }

    fn query_batch_inner(
        &self,
        queries: &[&str],
        budget: &WorkBudget,
    ) -> Result<BatchAnswer, EngineError> {
        let mut parts = Vec::with_capacity(queries.len());
        for query in queries {
            let (mfa, cached) = self.engine.plan_tracked(&self.entry, &self.user, query)?;
            parts.push((self.user.clone(), mfa, cached));
        }
        self.engine
            .evaluate_batch_parts(&self.entry, &parts, budget)
    }

    /// Like [`Session::query`], with `xml` always filled **safely for
    /// this principal**: raw source subtrees for admin sessions, the view
    /// image (hidden descendants filtered) for group sessions — the
    /// answer and its serialization come from one source snapshot. This
    /// is the evaluation the network server runs for the `Query` op: a
    /// remote client only ever receives what [`Session::query_xml`] would
    /// have shown it.
    pub fn query_serialized(&self, query: &str) -> Result<Answer, EngineError> {
        self.query_serialized_budgeted(query, &WorkBudget::unlimited())
    }

    /// [`Session::query_serialized`] under a [`WorkBudget`] — the serving
    /// path for requests carrying a deadline or a cancel token. An
    /// interrupted evaluation surfaces the opaque
    /// [`EngineError::DeadlineExceeded`] / [`EngineError::Cancelled`]
    /// within one budget check interval of the trigger.
    pub fn query_serialized_budgeted(
        &self,
        query: &str,
        budget: &WorkBudget,
    ) -> Result<Answer, EngineError> {
        let (mut answer, source) = self.query_with_source(query, &mut NoopObserver, budget)?;
        if answer.xml.is_none() {
            answer.xml = Some(match &self.user {
                User::Admin => answer.serialize_with(&source.doc),
                User::Group(g) => render_view_xml(&self.entry, g, &source, &answer.nodes)?,
            });
        }
        Ok(answer)
    }

    /// Like [`Session::query_batch`], with every answer's `xml` filled
    /// safely for this principal (see [`Session::query_serialized`]).
    /// Streaming batches already serialize during the scan; parallel DOM
    /// batches render afterwards from the current snapshot.
    pub fn query_batch_serialized(&self, queries: &[&str]) -> Result<BatchAnswer, EngineError> {
        self.query_batch_serialized_budgeted(queries, &WorkBudget::unlimited())
    }

    /// [`Session::query_batch_serialized`] under a [`WorkBudget`] shared
    /// by the whole batch.
    pub fn query_batch_serialized_budgeted(
        &self,
        queries: &[&str],
        budget: &WorkBudget,
    ) -> Result<BatchAnswer, EngineError> {
        let mut batch = self.query_batch_budgeted(queries, budget)?;
        if batch.answers.iter().any(|a| a.xml.is_none()) {
            let source = self.entry.snapshot()?;
            for answer in &mut batch.answers {
                if answer.xml.is_none() {
                    answer.xml = Some(match &self.user {
                        User::Admin => answer.serialize_with(&source.doc),
                        User::Group(g) => render_view_xml(&self.entry, g, &source, &answer.nodes)?,
                    });
                }
            }
        }
        Ok(batch)
    }

    /// The compiled/rewritten (and possibly cached) MFA for a query, for
    /// inspection.
    pub fn plan(&self, query: &str) -> Result<Arc<Mfa>, EngineError> {
        self.engine.plan_on(&self.entry, &self.user, query)
    }

    /// Applies one update statement (`insert <f> into|before|after p`,
    /// `delete p`, `replace p with <f>`) **subject to this session's
    /// access policy**.
    ///
    /// Admin sessions mutate the document directly. Group sessions
    /// resolve the target path against their security view, so an update
    /// can only ever touch nodes the session may read; a statement whose
    /// target is hidden, conditionally hidden, or non-existent fails with
    /// the same opaque [`EngineError::UpdateDenied`] — denials do not
    /// reveal whether anything matched. Accepted updates incrementally
    /// patch the TAX index, bump only this document's generation (cached
    /// plans of other documents survive untouched) and never block
    /// concurrent readers, which finish on their pre-update snapshot.
    pub fn update(&self, update: &str) -> Result<UpdateReport, EngineError> {
        let mut reports = self
            .engine
            .apply_updates_on(&self.entry, &self.user, &[update])?;
        Ok(reports.pop().expect("one statement yields one report"))
    }

    /// Applies a sequence of update statements **transactionally** under
    /// this session's policy: each statement resolves against the
    /// document (and view) as left by the previous one, and any failure —
    /// including a denial of a later statement — installs nothing (see
    /// [`DocHandle::update_batch`] for the admin counterpart).
    pub fn update_batch(&self, updates: &[&str]) -> Result<Vec<UpdateReport>, EngineError> {
        self.engine
            .apply_updates_on(&self.entry, &self.user, updates)
    }

    /// Answers a query and serializes each answer **safely for this
    /// session**: admin sessions get the raw source subtrees, group
    /// sessions get the *view image* of each answer node (hidden
    /// descendants filtered out — serializing the raw subtree would leak
    /// them).
    pub fn query_xml(&self, query: &str) -> Result<Vec<String>, EngineError> {
        let (answer, source) =
            self.query_with_source(query, &mut NoopObserver, &WorkBudget::unlimited())?;
        match &self.user {
            User::Admin => Ok(answer.serialize_with(&source.doc)),
            User::Group(g) => render_view_xml(&self.entry, g, &source, &answer.nodes),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::{hospital, org};

    fn engine_with_sample() -> Arc<Engine> {
        let engine = Engine::with_defaults();
        engine.load_dtd(smoqe_xml::HOSPITAL_DTD).unwrap();
        engine.load_document(hospital::SAMPLE_DOCUMENT).unwrap();
        engine
            .register_policy("researchers", smoqe_view::HOSPITAL_POLICY)
            .unwrap();
        engine
    }

    #[test]
    fn admin_sees_everything() {
        let engine = engine_with_sample();
        let admin = engine.session(User::Admin);
        let names = admin.query("hospital/patient/pname").unwrap();
        assert!(names.len() >= 2);
    }

    #[test]
    fn group_queries_are_rewritten() {
        let engine = engine_with_sample();
        let session = engine.session(User::Group("researchers".into()));
        // pname is hidden from the view.
        assert!(session.query("//pname").unwrap().is_empty());
        // treatments of autism patients are visible.
        let meds = session
            .query("hospital/patient/treatment/medication")
            .unwrap();
        assert!(!meds.is_empty());
    }

    #[test]
    fn unknown_group_is_an_error() {
        let engine = engine_with_sample();
        let session = engine.session(User::Group("nosuch".into()));
        assert!(matches!(
            session.query("hospital"),
            Err(EngineError::UnknownGroup(_))
        ));
    }

    #[test]
    fn tax_round_trip_through_engine() {
        let engine = engine_with_sample();
        engine.build_tax_index().unwrap();
        let dir = std::env::temp_dir().join("smoqe-core-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("engine.tax");
        engine.save_tax_index(&path).unwrap();
        engine.load_tax_index(&path).unwrap();
        assert!(engine.tax_index().is_some());
        std::fs::remove_file(&path).ok();
        // Query still correct with the loaded index.
        let admin = engine.session(User::Admin);
        assert!(!admin.query("//medication").unwrap().is_empty());
    }

    #[test]
    fn stream_mode_agrees_with_dom_mode() {
        let dom = engine_with_sample();
        let stream = Engine::new(EngineConfig::streaming());
        stream.load_dtd(smoqe_xml::HOSPITAL_DTD).unwrap();
        stream.load_document(hospital::SAMPLE_DOCUMENT).unwrap();
        stream
            .register_policy("researchers", smoqe_view::HOSPITAL_POLICY)
            .unwrap();
        for q in ["//medication", "hospital/patient/treatment"] {
            let a = dom
                .session(User::Group("researchers".into()))
                .query(q)
                .unwrap();
            let b = stream
                .session(User::Group("researchers".into()))
                .query(q)
                .unwrap();
            assert_eq!(a.nodes, b.nodes, "query {q}");
            assert!(b.xml.is_some());
        }
    }

    #[test]
    fn hand_authored_view_spec_mode() {
        let engine = engine_with_sample();
        engine
            .register_view_spec(
                "meds-only",
                "<!ELEMENT hospital (medication*)>\n\
                 <!ELEMENT medication (#PCDATA)>\n\
                 sigma(hospital, medication) = patient/visit/treatment/medication\n",
            )
            .unwrap();
        let session = engine.session(User::Group("meds-only".into()));
        let meds = session.query("hospital/medication").unwrap();
        assert_eq!(meds.len(), 4); // all four medications in the sample
        assert!(session.query("//patient").unwrap().is_empty());
    }

    #[test]
    fn plan_exposes_rewritten_mfa() {
        let engine = engine_with_sample();
        let session = engine.session(User::Group("researchers".into()));
        let mfa = session.plan("hospital/patient/treatment").unwrap();
        // The rewritten automaton navigates through hidden `visit` nodes.
        let vocab = engine.vocabulary();
        let visit = vocab.lookup("visit").unwrap();
        let uses_visit = mfa.nfas().any(|(_, nfa)| {
            nfa.states().any(|s| {
                nfa.transitions(s).iter().any(|t| {
                    t.test.matches(visit) && !matches!(t.test, smoqe_automata::LabelTest::Wildcard)
                })
            })
        });
        assert!(uses_visit, "rewritten plan should traverse visit");
    }

    #[test]
    fn loading_new_document_invalidates_index() {
        let engine = engine_with_sample();
        engine.build_tax_index().unwrap();
        assert!(engine.tax_index().is_some());
        engine.load_document(hospital::SAMPLE_DOCUMENT).unwrap();
        assert!(engine.tax_index().is_none());
    }

    #[test]
    fn catalog_serves_multiple_documents_and_groups() {
        let engine = Engine::with_defaults();
        let hosp = engine.open_document("hospital");
        hosp.load_dtd(hospital::DTD).unwrap();
        hosp.load_document(hospital::SAMPLE_DOCUMENT).unwrap();
        hosp.register_policy("researchers", hospital::POLICY)
            .unwrap();
        let orgdoc = engine.open_document("org");
        orgdoc.load_dtd(org::DTD).unwrap();
        orgdoc.load_document(org::SAMPLE_DOCUMENT).unwrap();
        orgdoc.register_policy("staff", org::POLICY).unwrap();

        assert_eq!(engine.document_names(), vec!["hospital", "org"]);

        let meds = hosp
            .session(User::Group("researchers".into()))
            .query("//medication")
            .unwrap();
        assert!(!meds.is_empty());
        let salaries = orgdoc
            .session(User::Group("staff".into()))
            .query("//salary")
            .unwrap();
        assert!(salaries.is_empty(), "salaries are confidential");
        // Groups are per document: the hospital group does not exist on
        // the org document.
        assert!(matches!(
            engine
                .session_on("org", User::Group("researchers".into()))
                .unwrap()
                .query("//emp"),
            Err(EngineError::UnknownGroup(_))
        ));
        // Dropping a document forgets it.
        assert!(engine.drop_document("org"));
        assert!(engine.session_on("org", User::Admin).is_err());
        assert!(matches!(
            engine.document_handle("org"),
            Err(EngineError::UnknownDocument(_))
        ));
    }

    #[test]
    fn repeated_queries_hit_the_plan_cache() {
        let engine = engine_with_sample();
        let session = engine.session(User::Group("researchers".into()));
        let first = session.query("//medication").unwrap();
        assert!(!first.plan_cached);
        let second = session.query("//medication").unwrap();
        assert!(second.plan_cached);
        assert_eq!(first.nodes, second.nodes);
        let m = engine.cache_metrics();
        assert!(m.hits >= 1, "{m:?}");
        assert!(m.entries >= 1, "{m:?}");
    }

    #[test]
    fn document_replacement_invalidates_cached_plans() {
        let engine = engine_with_sample();
        let session = engine.session(User::Admin);
        session.query("//medication").unwrap();
        assert!(session.query("//medication").unwrap().plan_cached);
        engine.load_document(hospital::SAMPLE_DOCUMENT).unwrap();
        assert!(
            !session.query("//medication").unwrap().plan_cached,
            "reload must invalidate the cached plan"
        );
    }

    #[test]
    fn view_reregistration_invalidates_only_that_group() {
        let engine = engine_with_sample();
        let researchers = engine.session(User::Group("researchers".into()));
        let admin = engine.session(User::Admin);
        researchers.query("//medication").unwrap();
        admin.query("//medication").unwrap();
        engine
            .register_policy("researchers", hospital::POLICY)
            .unwrap();
        assert!(
            !researchers.query("//medication").unwrap().plan_cached,
            "re-registration must invalidate the group's plans"
        );
        assert!(
            admin.query("//medication").unwrap().plan_cached,
            "admin plans are untouched by a view change"
        );
    }

    #[test]
    fn query_batch_agrees_with_serial_queries() {
        for config in [EngineConfig::default(), EngineConfig::streaming()] {
            let engine = Engine::new(config);
            engine.load_dtd(smoqe_xml::HOSPITAL_DTD).unwrap();
            engine.load_document(hospital::SAMPLE_DOCUMENT).unwrap();
            engine
                .register_policy("researchers", smoqe_view::HOSPITAL_POLICY)
                .unwrap();
            let session = engine.session(User::Group("researchers".into()));
            let queries: Vec<&str> = hospital::VIEW_QUERIES.iter().map(|(_, q)| *q).collect();
            let batch = session.query_batch(&queries).unwrap();
            assert_eq!(batch.answers.len(), queries.len());
            for (q, batched) in queries.iter().zip(&batch.answers) {
                let serial = session.query(q).unwrap();
                assert_eq!(batched.nodes, serial.nodes, "batched `{q}` diverged");
            }
            // The scan is shared: a batch of one reports the same event
            // count as the full batch.
            let single = session.query_batch(&queries[..1]).unwrap();
            assert_eq!(batch.events, single.events, "batch must not re-scan");
        }
    }

    #[test]
    fn query_batch_filters_view_xml_in_stream_mode() {
        let engine = Engine::new(EngineConfig::streaming());
        engine.load_dtd(org::DTD).unwrap();
        engine.load_document(org::SAMPLE_DOCUMENT).unwrap();
        engine.register_policy("staff", org::POLICY).unwrap();
        let session = engine.session(User::Group("staff".into()));
        let batch = session.query_batch(&["//review", "//ename"]).unwrap();
        let reviews = batch.answers[0].xml.as_ref().unwrap();
        assert_eq!(reviews.len(), 2);
        for xml in reviews {
            assert!(xml.contains("public") && !xml.contains("private"));
        }
    }

    #[test]
    fn cross_session_batch_spans_groups_but_not_documents() {
        let engine = Engine::with_defaults();
        let hosp = engine.open_document("hospital");
        hosp.load_dtd(hospital::DTD).unwrap();
        hosp.load_document(hospital::SAMPLE_DOCUMENT).unwrap();
        hosp.register_policy("researchers", hospital::POLICY)
            .unwrap();
        let admin = hosp.session(User::Admin);
        let researcher = hosp.session(User::Group("researchers".into()));
        let requests: Vec<(&Session, &str)> = vec![
            (&admin, "//pname"),
            (&researcher, "//pname"),
            (&admin, "//medication"),
            (&researcher, "//medication"),
        ];
        let batch = engine.evaluate_batch(&requests).unwrap();
        for ((session, q), batched) in requests.iter().zip(&batch.answers) {
            assert_eq!(
                batched.nodes,
                session.query(q).unwrap().nodes,
                "cross-session batch diverged on `{q}` as {:?}",
                session.user()
            );
        }
        // Admin sees names, the researcher view hides them — in one scan.
        assert!(!batch.answers[0].is_empty());
        assert!(batch.answers[1].is_empty());

        // A second document cannot ride the same scan.
        let orgdoc = engine.open_document("org");
        org::install_sample(&orgdoc).unwrap();
        let org_admin = orgdoc.session(User::Admin);
        assert!(matches!(
            engine.evaluate_batch(&[(&admin, "//pname"), (&org_admin, "//ename")]),
            Err(EngineError::BatchMismatch)
        ));
        // Nor can a session of a different engine.
        let other = Engine::with_defaults();
        other.load_document(hospital::SAMPLE_DOCUMENT).unwrap();
        let foreign = other.session(User::Admin);
        assert!(matches!(
            engine.evaluate_batch(&[(&admin, "//pname"), (&foreign, "//pname")]),
            Err(EngineError::BatchMismatch)
        ));

        let empty = engine.evaluate_batch(&[]).unwrap();
        assert!(empty.answers.is_empty());
        assert_eq!(empty.events, 0);
    }

    #[test]
    fn admin_updates_mutate_the_document() {
        let engine = engine_with_sample();
        let doc = engine.document_handle(DEFAULT_DOCUMENT).unwrap();
        let admin = engine.session(User::Admin);
        let before = admin.query("//patient").unwrap().len();
        let report = doc
            .update(
                "insert <patient><pname>Zoe</pname>\
                 <visit><treatment><medication>autism</medication></treatment>\
                 <date>2006-06-01</date></visit></patient> into hospital",
            )
            .unwrap();
        assert_eq!(report.applied, 1);
        assert!(report.nodes_after > report.nodes_before);
        assert_eq!(admin.query("//patient").unwrap().len(), before + 1);
        assert_eq!(
            admin
                .query("hospital/patient[pname = 'Zoe']")
                .unwrap()
                .len(),
            1
        );

        // delete + replace round out the primitives.
        doc.update("replace hospital/patient[pname = 'Zoe']/pname with <pname>Zed</pname>")
            .unwrap();
        assert!(admin.query("//patient[pname = 'Zoe']").unwrap().is_empty());
        doc.update("delete hospital/patient[pname = 'Zed']")
            .unwrap();
        assert_eq!(admin.query("//patient").unwrap().len(), before);
    }

    #[test]
    fn updates_are_dtd_checked() {
        let engine = engine_with_sample();
        let doc = engine.document_handle(DEFAULT_DOCUMENT).unwrap();
        // A patient inside a treatment violates the hospital DTD.
        let err = doc
            .update("insert <patient><pname>X</pname></patient> into //treatment")
            .unwrap_err();
        assert!(matches!(
            err,
            EngineError::Update(smoqe_update::UpdateError::Schema(_))
        ));
        // Nothing was installed.
        let admin = engine.session(User::Admin);
        assert!(admin.query("//treatment/patient").unwrap().is_empty());
    }

    #[test]
    fn group_updates_go_through_the_view() {
        let engine = engine_with_sample();
        let session = engine.session(User::Group("researchers".into()));
        // Accessible target (a visible medication), view-side path.
        let report = session
            .update("replace hospital/patient/treatment/medication with <medication>autism</medication>")
            .unwrap();
        assert!(report.applied >= 1);
        // Hidden target and non-existent target: the SAME opaque denial.
        let hidden = session.update("delete //pname").unwrap_err();
        let missing = session.update("delete //nonexistent-thing").unwrap_err();
        assert!(matches!(hidden, EngineError::UpdateDenied));
        assert!(matches!(missing, EngineError::UpdateDenied));
        assert_eq!(hidden.to_string(), missing.to_string());
        // Schema violations are opaque for groups too.
        let invalid = session
            .update("insert <medication>x</medication> into hospital/patient/treatment")
            .unwrap_err();
        assert!(matches!(invalid, EngineError::UpdateDenied));
        // The document is intact after every denial.
        let admin = engine.session(User::Admin);
        assert!(!admin.query("//pname").unwrap().is_empty());
    }

    #[test]
    fn update_bumps_only_the_affected_documents_generation() {
        let engine = Engine::with_defaults();
        let hosp = engine.open_document("hospital");
        hospital::install_sample(&hosp).unwrap();
        let orgdoc = engine.open_document("org");
        org::install_sample(&orgdoc).unwrap();
        let hosp_admin = hosp.session(User::Admin);
        let org_admin = orgdoc.session(User::Admin);
        hosp_admin.query("//medication").unwrap();
        org_admin.query("//salary").unwrap();
        assert!(hosp_admin.query("//medication").unwrap().plan_cached);
        assert!(org_admin.query("//salary").unwrap().plan_cached);

        let invalidations_before = engine.cache_metrics().invalidations;
        hosp.update("delete hospital/patient[pname = 'Bob']")
            .unwrap();

        assert!(
            !hosp_admin.query("//medication").unwrap().plan_cached,
            "updated document must recompile"
        );
        assert!(
            org_admin.query("//salary").unwrap().plan_cached,
            "the other document's plans must survive"
        );
        assert!(engine.cache_metrics().invalidations > invalidations_before);
    }

    #[test]
    fn update_patches_the_tax_index_incrementally() {
        let engine = engine_with_sample();
        engine.build_tax_index().unwrap();
        let doc = engine.document_handle(DEFAULT_DOCUMENT).unwrap();
        let report = doc
            .update("insert <visit><treatment><test>mri</test></treatment><date>d</date></visit> into hospital/patient[pname = 'Bob']")
            .unwrap();
        assert!(report.tax_patched, "the index must ride along");
        let tax = engine.tax_index().expect("index survives the update");
        let current = engine.document().unwrap();
        assert_eq!(tax.node_count(), current.node_count());
        // The patched index equals a rebuild, node for node.
        let rebuilt = TaxIndex::build(&current);
        for n in current.all_nodes() {
            assert_eq!(
                tax.descendant_labels(n).iter().collect::<Vec<_>>(),
                rebuilt.descendant_labels(n).iter().collect::<Vec<_>>()
            );
        }
        // And TAX-pruned answers stay correct.
        let admin = engine.session(User::Admin);
        assert_eq!(admin.query("//test").unwrap().len(), 2);
    }

    #[test]
    fn update_batch_is_all_or_nothing() {
        let engine = engine_with_sample();
        let doc = engine.document_handle(DEFAULT_DOCUMENT).unwrap();
        let before = engine.document().unwrap().to_xml();
        let err = doc
            .update_batch(&[
                "delete hospital/patient[pname = 'Bob']",
                "delete //no-such-element",
            ])
            .unwrap_err();
        assert!(matches!(
            err,
            EngineError::Update(smoqe_update::UpdateError::NoTarget)
        ));
        assert_eq!(
            engine.document().unwrap().to_xml(),
            before,
            "a failing batch must install nothing"
        );
        // A good batch applies in order: the second statement sees the
        // first one's effect.
        let reports = doc
            .update_batch(&[
                "insert <patient><pname>New</pname><visit><treatment><test>blood</test>\
                 </treatment><date>d</date></visit></patient> into hospital",
                "replace hospital/patient[pname = 'New']/pname with <pname>Renamed</pname>",
            ])
            .unwrap();
        assert_eq!(reports.len(), 2);
        let admin = engine.session(User::Admin);
        assert_eq!(
            admin.query("//patient[pname = 'Renamed']").unwrap().len(),
            1
        );
        assert!(admin.query("//patient[pname = 'New']").unwrap().is_empty());
    }

    #[test]
    fn updates_serve_stream_mode_sessions_too() {
        let engine = Engine::new(EngineConfig::streaming());
        engine.load_dtd(smoqe_xml::HOSPITAL_DTD).unwrap();
        engine.load_document(hospital::SAMPLE_DOCUMENT).unwrap();
        engine
            .register_policy("researchers", smoqe_view::HOSPITAL_POLICY)
            .unwrap();
        engine
            .update("delete hospital/patient[pname = 'Cal']")
            .unwrap();
        // Streaming needs a raw source: the update must have regenerated it.
        let admin = engine.session(User::Admin);
        let answer = admin.query("//patient").unwrap();
        assert_eq!(answer.len(), 3); // Ann, Pat (nested), Bob
        assert!(answer.xml.is_some(), "stream mode serializes answers");
    }

    #[test]
    fn update_on_an_empty_entry_is_no_document() {
        let engine = Engine::with_defaults();
        let doc = engine.open_document("empty");
        assert!(matches!(
            doc.update("delete //x"),
            Err(EngineError::NoDocument)
        ));
    }

    #[test]
    fn auto_mode_jumps_on_selective_queries_and_reports_it() {
        let engine = Engine::with_defaults();
        hospital::dtd(engine.vocabulary());
        let doc = hospital::generate_document(engine.vocabulary(), 9, 4_000);
        engine.load_document_tree(doc).unwrap();
        engine.build_tax_index().unwrap();
        let admin = engine.session(User::Admin);
        // `test` is rare in the generated workload: auto must jump, and
        // the answer must match an explicit scan-mode engine.
        let jumped = admin.query("//test").unwrap();
        assert_eq!(jumped.mode, ExecMode::Jump, "auto should pick jump");
        let scan_engine = Engine::new(EngineConfig {
            eval_mode: crate::config::EvalMode::Scan,
            ..EngineConfig::default()
        });
        hospital::dtd(scan_engine.vocabulary());
        let doc2 = hospital::generate_document(scan_engine.vocabulary(), 9, 4_000);
        scan_engine.load_document_tree(doc2).unwrap();
        scan_engine.build_tax_index().unwrap();
        let scanned = scan_engine.session(User::Admin).query("//test").unwrap();
        assert_eq!(scanned.mode, ExecMode::Compiled);
        assert_eq!(jumped.nodes, scanned.nodes);
        assert!(
            jumped.stats.nodes_visited <= scanned.stats.nodes_visited,
            "jump visited {} > scan {}",
            jumped.stats.nodes_visited,
            scanned.stats.nodes_visited
        );
        // `//patient` blankets the document: auto must keep scanning.
        let unselective = admin.query("//patient").unwrap();
        assert_eq!(unselective.mode, ExecMode::Compiled);
    }

    #[test]
    fn jump_mode_falls_back_without_an_index_and_runs_guarded_plans() {
        let engine = Engine::new(EngineConfig {
            eval_mode: crate::config::EvalMode::Jump,
            ..EngineConfig::default()
        });
        engine.load_dtd(smoqe_xml::HOSPITAL_DTD).unwrap();
        engine.load_document(hospital::SAMPLE_DOCUMENT).unwrap();
        engine
            .register_policy("researchers", smoqe_view::HOSPITAL_POLICY)
            .unwrap();
        let admin = engine.session(User::Admin);
        // No TAX index yet: no positional lists, so jump cannot engage.
        assert_eq!(admin.query("//test").unwrap().mode, ExecMode::Compiled);
        engine.build_tax_index().unwrap();
        assert_eq!(admin.query("//test").unwrap().mode, ExecMode::Jump);
        // Predicated plans jump too now (guard-stripped DFA + exact
        // re-verification at candidates); answers stay correct.
        let guarded = admin.query("hospital/patient[pname = 'Ann']").unwrap();
        assert_eq!(guarded.mode, ExecMode::Jump);
        assert_eq!(guarded.len(), 1);
        let scan = Engine::new(EngineConfig {
            eval_mode: crate::config::EvalMode::Scan,
            ..EngineConfig::default()
        });
        scan.load_dtd(smoqe_xml::HOSPITAL_DTD).unwrap();
        scan.load_document(hospital::SAMPLE_DOCUMENT).unwrap();
        let reference = scan
            .session(User::Admin)
            .query("hospital/patient[pname = 'Ann']")
            .unwrap();
        assert_eq!(reference.mode, ExecMode::Compiled);
        assert_eq!(guarded.nodes, reference.nodes);
        // Rewritten (view) plans ride the same resolution transparently.
        let group = engine.session(User::Group("researchers".into()));
        let meds = group.query("//medication").unwrap();
        assert!(!meds.is_empty());
    }

    #[test]
    fn parallel_dom_batch_agrees_with_serial_and_merges_stats() {
        let queries: Vec<&str> = hospital::DOC_QUERIES.iter().map(|(_, q)| *q).collect();
        let serial = {
            let engine = engine_with_sample();
            engine.build_tax_index().unwrap();
            engine.session(User::Admin).query_batch(&queries).unwrap()
        };
        for threads in [2, 4] {
            let engine = Engine::new(EngineConfig {
                eval_threads: threads,
                ..EngineConfig::default()
            });
            engine.load_dtd(smoqe_xml::HOSPITAL_DTD).unwrap();
            engine.load_document(hospital::SAMPLE_DOCUMENT).unwrap();
            engine.build_tax_index().unwrap();
            let session = engine.session(User::Admin);
            let batch = session.query_batch(&queries).unwrap();
            assert_eq!(batch.events, 0, "the parallel DOM path does not parse");
            assert_eq!(batch.answers.len(), serial.answers.len());
            for ((q, serial_answer), parallel_answer) in
                queries.iter().zip(&serial.answers).zip(&batch.answers)
            {
                assert_eq!(
                    parallel_answer.nodes, serial_answer.nodes,
                    "parallel batch diverged on `{q}` at {threads} threads"
                );
                // Each parallel answer equals what a lone query returns.
                assert_eq!(parallel_answer.nodes, session.query(q).unwrap().nodes);
            }
            let merged = batch.merged_stats();
            assert_eq!(
                merged.nodes_visited,
                batch
                    .answers
                    .iter()
                    .map(|a| a.stats.nodes_visited)
                    .sum::<usize>()
            );
            assert_eq!(merged.tree_passes, queries.len());
        }
    }

    #[test]
    fn loaded_tax_index_reattaches_the_positional_lists() {
        let engine = engine_with_sample();
        engine.build_tax_index().unwrap();
        let dir = std::env::temp_dir().join("smoqe-jump-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("reattach.tax");
        engine.save_tax_index(&path).unwrap();
        engine.load_tax_index(&path).unwrap();
        std::fs::remove_file(&path).ok();
        let tax = engine.tax_index().unwrap();
        assert!(
            tax.label_index().is_some(),
            "loading through the engine must rebuild the label index"
        );
        // And jump mode works on the loaded index.
        let jump_engine_answer = {
            let e2 = Engine::new(EngineConfig {
                eval_mode: crate::config::EvalMode::Jump,
                ..EngineConfig::default()
            });
            e2.load_dtd(smoqe_xml::HOSPITAL_DTD).unwrap();
            e2.load_document(hospital::SAMPLE_DOCUMENT).unwrap();
            e2.build_tax_index().unwrap();
            e2.session(User::Admin).query("//test").unwrap()
        };
        assert_eq!(jump_engine_answer.mode, ExecMode::Jump);
        assert_eq!(
            engine.session(User::Admin).query("//test").unwrap().nodes,
            jump_engine_answer.nodes
        );
    }

    #[test]
    fn sessions_are_send_sync_and_clonable() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Session>();
        assert_send_sync::<Engine>();
        assert_send_sync::<DocHandle>();
        let engine = engine_with_sample();
        let session = engine.session(User::Admin);
        let clone = session.clone();
        let handle = std::thread::spawn(move || clone.query("//medication").unwrap().len());
        let here = session.query("//medication").unwrap().len();
        assert_eq!(handle.join().unwrap(), here);
    }
}
