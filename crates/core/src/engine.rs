//! The SMOQE engine façade: documents, views, sessions, queries.
//!
//! Mirrors the architecture of Fig. 1: the engine owns the document (DOM
//! or streamable source), the **indexer** (TAX), and the registered
//! security views; a [`Session`] is the access path of one user — either
//! an administrator querying the document directly, or a member of a user
//! group whose queries are transparently **rewritten** against the group's
//! virtual view and answered without materialization (§2, "Query
//! support").

use crate::config::{DocumentMode, EngineConfig};
use crate::error::EngineError;
use parking_lot::RwLock;
use smoqe_automata::{compile, optimize::optimize, Mfa};
use smoqe_hype::dom::{evaluate_mfa_with, DomOptions};
use smoqe_hype::stream::{evaluate_stream_with, StreamOptions};
use smoqe_hype::{EvalObserver, EvalStats, NoopObserver};
use smoqe_rxpath::{parse_path, Path};
use smoqe_tax::TaxIndex;
use smoqe_view::{derive, materialize, materialize_fragment, AccessPolicy, ViewSpec};
use smoqe_xml::{Document, Dtd, NodeId, Vocabulary};
use std::collections::HashMap;
use std::path::{Path as FsPath, PathBuf};
use std::sync::Arc;

/// A loaded document with its streamable backing (if any).
struct LoadedSource {
    doc: Arc<Document>,
    /// Raw XML text (kept when loaded from a string) for streaming mode.
    raw: Option<Arc<String>>,
    /// File path (kept when loaded from disk) for streaming mode.
    path: Option<PathBuf>,
}

/// The Secure MOdular Query Engine.
pub struct Engine {
    vocab: Vocabulary,
    config: EngineConfig,
    dtd: RwLock<Option<Arc<Dtd>>>,
    source: RwLock<Option<LoadedSource>>,
    tax: RwLock<Option<Arc<TaxIndex>>>,
    views: RwLock<HashMap<String, Arc<ViewSpec>>>,
}

/// Who a session belongs to.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum User {
    /// May query the underlying document directly.
    Admin,
    /// Queries are answered through the group's security view.
    Group(String),
}

/// One user's access path into the engine.
pub struct Session<'e> {
    engine: &'e Engine,
    user: User,
}

/// A query answer: nodes of the underlying document (in document order)
/// plus evaluation statistics.
#[derive(Debug)]
pub struct Answer {
    /// Answer node ids (ids of the *source* document, document order).
    pub nodes: Vec<NodeId>,
    /// Evaluator counters.
    pub stats: EvalStats,
    /// Serialized answer subtrees (always present in stream mode; filled
    /// lazily from the DOM otherwise via [`Answer::serialize_with`]).
    pub xml: Option<Vec<String>>,
}

impl Answer {
    /// Number of answer nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the answer is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Serializes each answer's **raw source subtree** using `doc`.
    ///
    /// Intended for admin-level inspection; view users should go through
    /// [`Session::query_xml`], which filters hidden descendants.
    pub fn serialize_with(&self, doc: &Document) -> Vec<String> {
        self.nodes
            .iter()
            .map(|&n| smoqe_xml::serialize::subtree_to_string(doc, n))
            .collect()
    }
}

impl Engine {
    /// Creates an engine with the given configuration and a fresh
    /// vocabulary.
    pub fn new(config: EngineConfig) -> Self {
        Engine {
            vocab: Vocabulary::new(),
            config,
            dtd: RwLock::new(None),
            source: RwLock::new(None),
            tax: RwLock::new(None),
            views: RwLock::new(HashMap::new()),
        }
    }

    /// Creates an engine with default configuration.
    pub fn with_defaults() -> Self {
        Engine::new(EngineConfig::default())
    }

    /// The engine's vocabulary (shared by its documents, views and
    /// queries).
    pub fn vocabulary(&self) -> &Vocabulary {
        &self.vocab
    }

    /// The engine configuration.
    pub fn config(&self) -> EngineConfig {
        self.config
    }

    /// Parses and installs the document DTD.
    pub fn load_dtd(&self, dtd_text: &str) -> Result<(), EngineError> {
        let dtd = Dtd::parse(dtd_text, &self.vocab)?;
        *self.dtd.write() = Some(Arc::new(dtd));
        Ok(())
    }

    /// The installed DTD, if any.
    pub fn dtd(&self) -> Option<Arc<Dtd>> {
        self.dtd.read().clone()
    }

    fn install_document(&self, doc: Document, raw: Option<String>, path: Option<PathBuf>) {
        // A new document invalidates the index.
        *self.tax.write() = None;
        *self.source.write() = Some(LoadedSource {
            doc: Arc::new(doc),
            raw: raw.map(Arc::new),
            path,
        });
    }

    /// Loads a document from XML text, validating against the DTD when one
    /// is installed.
    pub fn load_document(&self, xml: &str) -> Result<(), EngineError> {
        let doc = Document::parse_str(xml, &self.vocab)?;
        if let Some(dtd) = self.dtd() {
            dtd.validate(&doc)?;
        }
        self.install_document(doc, Some(xml.to_string()), None);
        Ok(())
    }

    /// Loads (and validates) a document from a file.
    pub fn load_document_file(&self, path: impl AsRef<FsPath>) -> Result<(), EngineError> {
        let path = path.as_ref().to_path_buf();
        let doc = smoqe_xml::parse_file(&path, &self.vocab)?;
        if let Some(dtd) = self.dtd() {
            dtd.validate(&doc)?;
        }
        self.install_document(doc, None, Some(path));
        Ok(())
    }

    /// Installs an already-built document (e.g. from the generator).
    pub fn load_document_tree(&self, doc: Document) {
        let raw = doc.to_xml();
        self.install_document(doc, Some(raw), None);
    }

    /// The loaded document.
    pub fn document(&self) -> Result<Arc<Document>, EngineError> {
        self.source
            .read()
            .as_ref()
            .map(|s| s.doc.clone())
            .ok_or(EngineError::NoDocument)
    }

    /// Builds the TAX index over the loaded document (the "indexer" box of
    /// Fig. 1). Returns build statistics.
    pub fn build_tax_index(&self) -> Result<Arc<TaxIndex>, EngineError> {
        let doc = self.document()?;
        let tax = Arc::new(TaxIndex::build(&doc));
        *self.tax.write() = Some(tax.clone());
        Ok(tax)
    }

    /// The TAX index, if built or loaded.
    pub fn tax_index(&self) -> Option<Arc<TaxIndex>> {
        self.tax.read().clone()
    }

    /// Persists the TAX index ("compresses it before it is stored in
    /// disk").
    pub fn save_tax_index(&self, path: impl AsRef<FsPath>) -> Result<(), EngineError> {
        let tax = self
            .tax
            .read()
            .clone()
            .ok_or(EngineError::NoDocument)?;
        tax.save_to_file(path, &self.vocab)?;
        Ok(())
    }

    /// Loads a TAX index from disk ("uploads it from disk when needed").
    pub fn load_tax_index(&self, path: impl AsRef<FsPath>) -> Result<(), EngineError> {
        let tax = TaxIndex::load_from_file(path, &self.vocab)?;
        *self.tax.write() = Some(Arc::new(tax));
        Ok(())
    }

    /// Registers a user group by access-control policy: the view is
    /// derived automatically (§2, automated view derivation).
    pub fn register_policy(&self, group: &str, policy_text: &str) -> Result<(), EngineError> {
        let dtd = self
            .dtd()
            .ok_or(EngineError::NoDocument)?;
        let policy = AccessPolicy::parse((*dtd).clone(), policy_text)?;
        let spec = derive(&policy);
        spec.validate(&dtd)?;
        self.views.write().insert(group.to_string(), Arc::new(spec));
        Ok(())
    }

    /// Registers a user group with a hand-authored view specification
    /// (the DAD/AXSD-style mode).
    pub fn register_view_spec(&self, group: &str, spec_text: &str) -> Result<(), EngineError> {
        let spec = ViewSpec::parse(spec_text, &self.vocab)?;
        if let Some(dtd) = self.dtd() {
            spec.validate(&dtd)?;
        }
        self.views.write().insert(group.to_string(), Arc::new(spec));
        Ok(())
    }

    /// The view spec registered for `group`.
    pub fn view(&self, group: &str) -> Result<Arc<ViewSpec>, EngineError> {
        self.views
            .read()
            .get(group)
            .cloned()
            .ok_or_else(|| EngineError::UnknownGroup(group.to_string()))
    }

    /// Opens a session for `user`.
    pub fn session(&self, user: User) -> Session<'_> {
        Session { engine: self, user }
    }

    /// Compiles (and, per config, rewrites and optimizes) a query for
    /// `user` into the MFA that will run on the source document.
    pub fn plan(&self, user: &User, query: &str) -> Result<Mfa, EngineError> {
        let path = parse_path(query, &self.vocab)?;
        self.plan_path(user, &path)
    }

    fn plan_path(&self, user: &User, path: &Path) -> Result<Mfa, EngineError> {
        let mfa = match user {
            User::Admin => compile(path, &self.vocab),
            User::Group(g) => {
                let spec = self.view(g)?;
                smoqe_rewrite::rewrite(path, &spec)
            }
        };
        Ok(if self.config.optimize_mfa {
            optimize(&mfa)
        } else {
            mfa
        })
    }

    fn evaluate(&self, mfa: &Mfa, observer: &mut dyn EvalObserver) -> Result<Answer, EngineError> {
        match self.config.mode {
            DocumentMode::Dom => {
                let doc = self.document()?;
                let tax = if self.config.use_tax {
                    self.tax.read().clone()
                } else {
                    None
                };
                let options = DomOptions {
                    tax: tax.as_deref(),
                };
                let (nodes, stats) = evaluate_mfa_with(&doc, mfa, &options, observer);
                Ok(Answer {
                    nodes: nodes.into_vec(),
                    stats,
                    xml: None,
                })
            }
            DocumentMode::Stream => {
                let source = self.source.read();
                let source = source.as_ref().ok_or(EngineError::NoDocument)?;
                let options = StreamOptions { want_xml: true };
                let outcome = if let Some(path) = &source.path {
                    let file = std::fs::File::open(path).map_err(smoqe_xml::XmlError::Io)?;
                    evaluate_stream_with(
                        std::io::BufReader::new(file),
                        mfa,
                        &self.vocab,
                        options,
                        observer,
                    )?
                } else if let Some(raw) = &source.raw {
                    evaluate_stream_with(raw.as_bytes(), mfa, &self.vocab, options, observer)?
                } else {
                    return Err(EngineError::NoStreamSource);
                };
                Ok(Answer {
                    nodes: outcome.answers.into_iter().map(NodeId).collect(),
                    stats: outcome.stats,
                    xml: outcome.answer_xml,
                })
            }
        }
    }

    /// Materializes the view of `group` over the loaded document — only
    /// used by tests and the E6 baseline; production queries never
    /// materialize.
    pub fn materialize_view(
        &self,
        group: &str,
    ) -> Result<smoqe_view::MaterializedView, EngineError> {
        let spec = self.view(group)?;
        let doc = self.document()?;
        Ok(materialize(&spec, &doc)?)
    }
}

impl Session<'_> {
    /// The session's user.
    pub fn user(&self) -> &User {
        &self.user
    }

    /// Answers a Regular XPath query. Group sessions are rewritten through
    /// their view; admin sessions run directly on the document.
    pub fn query(&self, query: &str) -> Result<Answer, EngineError> {
        self.query_observed(query, &mut NoopObserver)
    }

    /// Like [`Session::query`], reporting evaluation events to `observer`
    /// (the iSMOQE monitoring hook).
    pub fn query_observed(
        &self,
        query: &str,
        observer: &mut dyn EvalObserver,
    ) -> Result<Answer, EngineError> {
        let mfa = self.engine.plan(&self.user, query)?;
        let mut answer = self.engine.evaluate(&mfa, observer)?;
        // Stream mode buffers raw source subtrees; for group sessions
        // re-render each answer through the view so hidden descendants
        // never reach the user.
        if answer.xml.is_some() {
            if let User::Group(g) = &self.user {
                let spec = self.engine.view(g)?;
                let doc = self.engine.document()?;
                let safe: Result<Vec<String>, EngineError> = answer
                    .nodes
                    .iter()
                    .map(|&n| {
                        let fragment = materialize_fragment(&spec, &doc, n)?;
                        Ok(fragment.doc.to_xml())
                    })
                    .collect();
                answer.xml = Some(safe?);
            }
        }
        Ok(answer)
    }

    /// The compiled/rewritten MFA for a query, for inspection.
    pub fn plan(&self, query: &str) -> Result<Mfa, EngineError> {
        self.engine.plan(&self.user, query)
    }

    /// Answers a query and serializes each answer **safely for this
    /// session**: admin sessions get the raw source subtrees, group
    /// sessions get the *view image* of each answer node (hidden
    /// descendants filtered out — serializing the raw subtree would leak
    /// them).
    pub fn query_xml(&self, query: &str) -> Result<Vec<String>, EngineError> {
        let answer = self.query(query)?;
        let doc = self.engine.document()?;
        match &self.user {
            User::Admin => Ok(answer.serialize_with(&doc)),
            User::Group(g) => {
                let spec = self.engine.view(g)?;
                answer
                    .nodes
                    .iter()
                    .map(|&n| {
                        let fragment = materialize_fragment(&spec, &doc, n)?;
                        Ok(fragment.doc.to_xml())
                    })
                    .collect()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::hospital;

    fn engine_with_sample() -> Engine {
        let engine = Engine::with_defaults();
        engine.load_dtd(smoqe_xml::HOSPITAL_DTD).unwrap();
        engine.load_document(hospital::SAMPLE_DOCUMENT).unwrap();
        engine
            .register_policy("researchers", smoqe_view::HOSPITAL_POLICY)
            .unwrap();
        engine
    }

    #[test]
    fn admin_sees_everything() {
        let engine = engine_with_sample();
        let admin = engine.session(User::Admin);
        let names = admin.query("hospital/patient/pname").unwrap();
        assert!(names.len() >= 2);
    }

    #[test]
    fn group_queries_are_rewritten() {
        let engine = engine_with_sample();
        let session = engine.session(User::Group("researchers".into()));
        // pname is hidden from the view.
        assert!(session.query("//pname").unwrap().is_empty());
        // treatments of autism patients are visible.
        let meds = session
            .query("hospital/patient/treatment/medication")
            .unwrap();
        assert!(!meds.is_empty());
    }

    #[test]
    fn unknown_group_is_an_error() {
        let engine = engine_with_sample();
        let session = engine.session(User::Group("nosuch".into()));
        assert!(matches!(
            session.query("hospital"),
            Err(EngineError::UnknownGroup(_))
        ));
    }

    #[test]
    fn tax_round_trip_through_engine() {
        let engine = engine_with_sample();
        engine.build_tax_index().unwrap();
        let dir = std::env::temp_dir().join("smoqe-core-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("engine.tax");
        engine.save_tax_index(&path).unwrap();
        engine.load_tax_index(&path).unwrap();
        assert!(engine.tax_index().is_some());
        std::fs::remove_file(&path).ok();
        // Query still correct with the loaded index.
        let admin = engine.session(User::Admin);
        assert!(!admin.query("//medication").unwrap().is_empty());
    }

    #[test]
    fn stream_mode_agrees_with_dom_mode() {
        let dom = engine_with_sample();
        let stream = Engine::new(EngineConfig::streaming());
        stream.load_dtd(smoqe_xml::HOSPITAL_DTD).unwrap();
        stream.load_document(hospital::SAMPLE_DOCUMENT).unwrap();
        stream
            .register_policy("researchers", smoqe_view::HOSPITAL_POLICY)
            .unwrap();
        for q in ["//medication", "hospital/patient/treatment"] {
            let a = dom
                .session(User::Group("researchers".into()))
                .query(q)
                .unwrap();
            let b = stream
                .session(User::Group("researchers".into()))
                .query(q)
                .unwrap();
            assert_eq!(a.nodes, b.nodes, "query {q}");
            assert!(b.xml.is_some());
        }
    }

    #[test]
    fn hand_authored_view_spec_mode() {
        let engine = engine_with_sample();
        engine
            .register_view_spec(
                "meds-only",
                "<!ELEMENT hospital (medication*)>\n\
                 <!ELEMENT medication (#PCDATA)>\n\
                 sigma(hospital, medication) = patient/visit/treatment/medication\n",
            )
            .unwrap();
        let session = engine.session(User::Group("meds-only".into()));
        let meds = session.query("hospital/medication").unwrap();
        assert_eq!(meds.len(), 4); // all four medications in the sample
        assert!(session.query("//patient").unwrap().is_empty());
    }

    #[test]
    fn plan_exposes_rewritten_mfa() {
        let engine = engine_with_sample();
        let session = engine.session(User::Group("researchers".into()));
        let mfa = session.plan("hospital/patient/treatment").unwrap();
        // The rewritten automaton navigates through hidden `visit` nodes.
        let vocab = engine.vocabulary();
        let visit = vocab.lookup("visit").unwrap();
        let uses_visit = mfa.nfas().any(|(_, nfa)| {
            nfa.states().any(|s| {
                nfa.transitions(s)
                    .iter()
                    .any(|t| t.test.matches(visit) && !matches!(t.test, smoqe_automata::LabelTest::Wildcard))
            })
        });
        assert!(uses_visit, "rewritten plan should traverse visit");
    }

    #[test]
    fn loading_new_document_invalidates_index() {
        let engine = engine_with_sample();
        engine.build_tax_index().unwrap();
        assert!(engine.tax_index().is_some());
        engine.load_document(hospital::SAMPLE_DOCUMENT).unwrap();
        assert!(engine.tax_index().is_none());
    }
}
