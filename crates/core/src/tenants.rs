//! Per-tenant load accounting.
//!
//! The serving layer multiplexes many principals onto one engine; when the
//! engine is busy, "who is doing what" must be answerable without guessing.
//! Every query/update path records into a per-tenant counter slab keyed by
//! principal — `"(admin)"` for administrator sessions (parenthesized so it
//! can never collide with a user-group name, which the policy grammar keeps
//! to bare identifiers), the group name otherwise. [`Engine::tenant_metrics`]
//! returns a point-in-time snapshot, the CLI prints it under
//! `--cache-stats`, and the server's `Stats` op ships it over the wire.
//!
//! [`Engine::tenant_metrics`]: crate::Engine::tenant_metrics

use crate::engine::User;
use crate::error::EngineError;
use crate::sync::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The tenant key admin sessions are accounted under.
pub const ADMIN_TENANT: &str = "(admin)";

/// Point-in-time counters for one tenant (user group or the admin
/// principal) — the per-tenant analogue of [`crate::CacheMetrics`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TenantMetrics {
    /// Queries evaluated for this tenant (batch members each count).
    pub queries: u64,
    /// Query batches evaluated (each also counted per member in
    /// `queries`).
    pub batches: u64,
    /// Update statements attempted (accepted or not).
    pub updates: u64,
    /// Updates refused by the tenant's security policy (the opaque
    /// [`EngineError::UpdateDenied`]). Counted per *transaction*: a
    /// denied batch installs nothing and counts once.
    pub update_denials: u64,
    /// Requests that failed with any other error.
    pub errors: u64,
    /// Total answer nodes returned.
    pub answers: u64,
    /// Total element nodes the evaluator entered on behalf of this tenant
    /// — the work figure admission control wants to see per group.
    pub nodes_visited: u64,
}

/// Lock-free (post-registration) counter slab for one tenant.
#[derive(Default)]
struct TenantCounters {
    queries: AtomicU64,
    batches: AtomicU64,
    updates: AtomicU64,
    update_denials: AtomicU64,
    errors: AtomicU64,
    answers: AtomicU64,
    nodes_visited: AtomicU64,
}

impl TenantCounters {
    fn snapshot(&self) -> TenantMetrics {
        TenantMetrics {
            queries: self.queries.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            updates: self.updates.load(Ordering::Relaxed),
            update_denials: self.update_denials.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            answers: self.answers.load(Ordering::Relaxed),
            nodes_visited: self.nodes_visited.load(Ordering::Relaxed),
        }
    }
}

/// Engine-wide tenant → counters map. The map lock is only taken to
/// register a first-seen tenant; recording increments atomics through an
/// `Arc` and never blocks queries against each other.
#[derive(Default)]
pub(crate) struct TenantRegistry {
    tenants: RwLock<HashMap<String, Arc<TenantCounters>>>,
}

/// The accounting key of a user.
pub(crate) fn tenant_key(user: &User) -> &str {
    match user {
        User::Admin => ADMIN_TENANT,
        User::Group(g) => g.as_str(),
    }
}

impl TenantRegistry {
    fn counters(&self, key: &str) -> Arc<TenantCounters> {
        if let Some(c) = self.tenants.read().get(key) {
            return c.clone();
        }
        self.tenants
            .write()
            .entry(key.to_string())
            .or_default()
            .clone()
    }

    /// Records one query outcome (also used per member of a batch).
    pub(crate) fn record_query(&self, user: &User, outcome: Result<&crate::Answer, &EngineError>) {
        let c = self.counters(tenant_key(user));
        c.queries.fetch_add(1, Ordering::Relaxed);
        match outcome {
            Ok(answer) => {
                c.answers.fetch_add(answer.len() as u64, Ordering::Relaxed);
                c.nodes_visited
                    .fetch_add(answer.stats.nodes_visited as u64, Ordering::Relaxed);
            }
            Err(_) => {
                c.errors.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Records a whole batch: one batch tick plus one query record per
    /// member answer (a failed batch charges its members as errors).
    pub(crate) fn record_batch(
        &self,
        user: &User,
        members: usize,
        outcome: Result<&crate::BatchAnswer, &EngineError>,
    ) {
        let c = self.counters(tenant_key(user));
        c.batches.fetch_add(1, Ordering::Relaxed);
        match outcome {
            Ok(batch) => {
                c.queries
                    .fetch_add(batch.answers.len() as u64, Ordering::Relaxed);
                for answer in &batch.answers {
                    c.answers.fetch_add(answer.len() as u64, Ordering::Relaxed);
                    c.nodes_visited
                        .fetch_add(answer.stats.nodes_visited as u64, Ordering::Relaxed);
                }
            }
            Err(_) => {
                c.queries.fetch_add(members as u64, Ordering::Relaxed);
                c.errors.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Records one update transaction of `statements` statements.
    pub(crate) fn record_update(
        &self,
        user: &User,
        statements: usize,
        error: Option<&EngineError>,
    ) {
        let c = self.counters(tenant_key(user));
        c.updates.fetch_add(statements as u64, Ordering::Relaxed);
        match error {
            None => {}
            Some(EngineError::UpdateDenied) => {
                c.update_denials.fetch_add(1, Ordering::Relaxed);
            }
            Some(_) => {
                c.errors.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Sorted point-in-time snapshot of every tenant seen so far.
    pub(crate) fn metrics(&self) -> Vec<(String, TenantMetrics)> {
        let mut rows: Vec<(String, TenantMetrics)> = self
            .tenants
            .read()
            .iter()
            .map(|(k, v)| (k.clone(), v.snapshot()))
            .collect();
        rows.sort_by(|a, b| a.0.cmp(&b.0));
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admin_key_cannot_collide_with_groups() {
        // Policy group names are bare identifiers; the parenthesized admin
        // key stays out of their namespace.
        assert_eq!(tenant_key(&User::Admin), "(admin)");
        assert_eq!(tenant_key(&User::Group("admin".into())), "admin");
        assert_ne!(tenant_key(&User::Admin), "admin");
    }

    #[test]
    fn update_denials_are_counted_separately_from_errors() {
        let reg = TenantRegistry::default();
        let g = User::Group("researchers".into());
        reg.record_update(&g, 1, Some(&EngineError::UpdateDenied));
        reg.record_update(&g, 2, None);
        reg.record_update(&g, 1, Some(&EngineError::NoDocument));
        let rows = reg.metrics();
        assert_eq!(rows.len(), 1);
        let (name, m) = &rows[0];
        assert_eq!(name, "researchers");
        assert_eq!(m.updates, 4);
        assert_eq!(m.update_denials, 1);
        assert_eq!(m.errors, 1);
    }
}
