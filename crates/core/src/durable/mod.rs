//! Durability: write-ahead logging, checkpoints and crash recovery.
//!
//! An engine constructed with [`Engine::recover`] is **durable**: every
//! catalog mutation — document loads, DTD swaps, policy/view
//! registrations, index builds, accepted updates, drops — appends a
//! checksummed, LSN-sequenced record to `wal.log` in the data directory
//! *before* the new snapshot is installed in memory (see [`wal`]), and
//! [`Engine::checkpoint`] (run periodically after
//! [`EngineConfig::checkpoint_every`](crate::config::EngineConfig)
//! accepted records, on graceful server drain, and at the end of every
//! recovery) captures the whole catalog into an atomically-renamed
//! snapshot file so the log stays short (see [`checkpoint`]).
//!
//! Recovery loads the newest valid checkpoint, replays the WAL tail
//! through the ordinary engine paths (an update record re-resolves its
//! targets through the same security view the original write used),
//! truncates a torn final record, and refuses with a typed error on
//! mid-log corruption.
//!
//! ## The crash-consistency contract
//!
//! * WAL appends are flushed to the operating system (one `write(2)` per
//!   record) but **not** fsynced per record: a `kill -9` of the process
//!   loses nothing, while an operating-system crash or power failure may
//!   lose a suffix of accepted records. Checkpoints and clean shutdown
//!   fsync everything.
//! * Recovery always yields a **prefix-consistent** engine: the state
//!   equals the one produced by some prefix of the logged operations —
//!   never a torn document, never an index describing a different
//!   document (indexes are rebuilt through the same incremental-patch
//!   path that built them live).
//! * [`failpoints`] injects crashes at every write-path site so the
//!   fault-injection harness (`tests/fault_injection.rs`) can check that
//!   contract without killing the test process.

pub mod checkpoint;
pub mod failpoints;
pub mod wal;

use crate::catalog::ViewSource;
use crate::config::EngineConfig;
use crate::engine::{Engine, User};
use crate::error::EngineError;
use crate::sync::Mutex;
use checkpoint::{Checkpoint, CheckpointDoc, ViewKind};
use failpoints::{Failpoint, FailpointRegistry};
use smoqe_tax::TaxIndex;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use wal::{WalOp, WalWriter};

/// Name of the write-ahead log inside the data directory.
const WAL_FILE: &str = "wal.log";

/// A durability failure. Wrapped as
/// [`EngineError::Durability`](crate::error::EngineError) when it crosses
/// the engine API.
#[derive(Debug)]
pub enum DurError {
    /// The underlying filesystem operation failed.
    Io(std::io::Error),
    /// A *complete* WAL record mid-log failed its checksum or structure —
    /// distinct from a torn tail, which recovery silently truncates.
    Corrupt {
        /// Byte offset of the broken record in `wal.log`.
        offset: u64,
        /// What exactly was wrong.
        detail: String,
    },
    /// Checkpoint files exist but none passes its checksum.
    Checkpoint(String),
    /// The operation's WAL record would exceed the per-record ceiling
    /// that recovery enforces. The operation is refused before any bytes
    /// reach the log, so the log stays recoverable and the engine stays
    /// alive.
    RecordTooLarge {
        /// Encoded payload size the record would have had.
        size: u64,
        /// The enforced ceiling ([`wal::MAX_RECORD`]).
        limit: u64,
    },
    /// Replaying the record with this LSN failed against the recovered
    /// state — the log and the checkpoint disagree.
    Replay {
        /// LSN of the record that failed to replay.
        lsn: u64,
        /// The engine error the replay surfaced.
        detail: String,
    },
    /// An armed [`Failpoint`] fired here (fault injection only).
    Injected(&'static str),
    /// A previous injected crash or append failure killed this engine's
    /// durability; writes are refused until the directory is recovered.
    Crashed,
}

impl std::fmt::Display for DurError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DurError::Io(e) => write!(f, "durability I/O error: {e}"),
            DurError::Corrupt { offset, detail } => {
                write!(f, "write-ahead log corrupt at byte {offset}: {detail}")
            }
            DurError::Checkpoint(detail) => write!(f, "checkpoint unreadable: {detail}"),
            DurError::RecordTooLarge { size, limit } => write!(
                f,
                "operation refused: its WAL record would be {size} bytes, \
                 over the {limit}-byte ceiling recovery enforces"
            ),
            DurError::Replay { lsn, detail } => {
                write!(f, "replay of WAL record {lsn} failed: {detail}")
            }
            DurError::Injected(name) => write!(f, "injected crash at failpoint '{name}'"),
            DurError::Crashed => write!(
                f,
                "durability layer is dead after a crash; recover the data directory"
            ),
        }
    }
}

impl std::error::Error for DurError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DurError::Io(e) => Some(e),
            _ => None,
        }
    }
}

/// The durable state attached to an [`Engine`] by [`Engine::recover`]:
/// the WAL writer, the failpoint registry, and the recovery epoch.
pub struct Durability {
    dir: PathBuf,
    failpoints: FailpointRegistry,
    writer: Mutex<WalWriter>,
    /// Serializes checkpointers (each takes every entry's write lock).
    checkpoint_serial: Mutex<()>,
    /// Set after an injected crash or an append failure: the on-disk log
    /// may end mid-state, so further durable writes are refused and the
    /// engine behaves like a dead process awaiting recovery.
    dead: AtomicBool,
    /// How many times this data directory has been recovered. Counters
    /// and the trace ring restart from zero on recovery; this marker
    /// makes the reset observable (a consumer seeing the epoch advance
    /// knows the zeros mean "recovered", not "idle").
    epoch: u64,
    records_since_checkpoint: AtomicU64,
}

impl Durability {
    /// The data directory this engine persists into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The recovery epoch (0 for a freshly initialized directory).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The fault-injection registry (armed from `SMOQE_FAILPOINTS` at
    /// recovery, or programmatically by tests).
    pub fn failpoints(&self) -> &FailpointRegistry {
        &self.failpoints
    }

    /// Whether an injected crash or append failure has killed this
    /// durability layer.
    pub fn is_dead(&self) -> bool {
        self.dead.load(Ordering::Acquire)
    }

    fn die(&self, fp: Failpoint) -> DurError {
        self.dead.store(true, Ordering::Release);
        DurError::Injected(fp.name())
    }

    /// Appends one record. Called by the engine's write paths under the
    /// affected entry's write lock, so log order and install order agree
    /// per document; LSN order is fixed under the writer mutex.
    pub(crate) fn log(&self, op: WalOp) -> Result<(), DurError> {
        if self.is_dead() {
            return Err(DurError::Crashed);
        }
        if self.failpoints.fire(Failpoint::CrashBeforeAppend) {
            return Err(self.die(Failpoint::CrashBeforeAppend));
        }
        let result = self.writer.lock().append(op, &self.failpoints);
        match result {
            Ok(_lsn) => {
                self.records_since_checkpoint
                    .fetch_add(1, Ordering::Relaxed);
                if self.failpoints.fire(Failpoint::CrashAfterAppend) {
                    return Err(self.die(Failpoint::CrashAfterAppend));
                }
                Ok(())
            }
            Err(e) => {
                // A failed append may have left partial bytes at the log
                // tail; appending more would bury them mid-log and turn a
                // recoverable torn tail into corruption. Dead it is — with
                // one exception: an oversized record is refused before any
                // byte reaches the log, so the log is intact and the
                // engine keeps serving (only that operation fails).
                if !matches!(e, DurError::RecordTooLarge { .. }) {
                    self.dead.store(true, Ordering::Release);
                }
                Err(e)
            }
        }
    }
}

fn dur_err(e: DurError) -> EngineError {
    EngineError::Durability(e)
}

impl Engine {
    /// Opens (creating if needed) the data directory `dir` and returns a
    /// **durable** engine: the latest valid checkpoint is loaded, the WAL
    /// tail is replayed through the ordinary engine paths, a torn final
    /// record is truncated, and from here on every catalog mutation is
    /// logged before it is installed. Fails with a typed
    /// [`EngineError::Durability`] on mid-log corruption — a durable
    /// engine never serves a half-recovered state.
    ///
    /// Recovery ends with a fresh checkpoint, so the next boot replays
    /// nothing and the recovery epoch is persisted.
    pub fn recover(
        config: EngineConfig,
        dir: impl AsRef<Path>,
    ) -> Result<Arc<Engine>, EngineError> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir).map_err(|e| dur_err(DurError::Io(e)))?;
        let ckpt = checkpoint::load_latest(dir).map_err(dur_err)?;
        let wal_path = dir.join(WAL_FILE);
        let had_wal = wal_path.exists();
        let scan = wal::scan_wal(&wal_path).map_err(dur_err)?;

        let base_lsn = ckpt.as_ref().map(|c| c.last_lsn).unwrap_or(0);
        let had_state = ckpt.is_some() || had_wal;
        let epoch = match &ckpt {
            Some(c) => c.epoch + 1,
            None if had_state => 1,
            None => 0,
        };
        // LSNs start at 1 and never repeat, across checkpoints and
        // recoveries alike.
        let next_lsn = scan
            .records
            .last()
            .map(|r| r.lsn + 1)
            .unwrap_or(1)
            .max(base_lsn + 1);
        let writer = WalWriter::open(&wal_path, scan.valid_len, next_lsn).map_err(dur_err)?;

        let engine = Engine::new(config);
        if let Some(ckpt) = &ckpt {
            restore_checkpoint(&engine, ckpt)?;
        }
        for record in &scan.records {
            if record.lsn <= base_lsn {
                continue; // already reflected in the checkpoint
            }
            replay_record(&engine, &record.op).map_err(|e| {
                dur_err(DurError::Replay {
                    lsn: record.lsn,
                    detail: e.to_string(),
                })
            })?;
        }

        let durable = Arc::new(Durability {
            dir: dir.to_path_buf(),
            failpoints: FailpointRegistry::from_env(),
            writer: Mutex::new(writer),
            checkpoint_serial: Mutex::default(),
            dead: AtomicBool::new(false),
            epoch,
            records_since_checkpoint: AtomicU64::new(0),
        });
        engine
            .durable
            .set(durable)
            .unwrap_or_else(|_| unreachable!("fresh engine cannot be durable yet"));
        engine.checkpoint()?;
        Ok(engine)
    }

    /// The durable state, when this engine was built by
    /// [`Engine::recover`].
    pub fn durability(&self) -> Option<&Arc<Durability>> {
        self.durable.get()
    }

    /// The recovery epoch: 0 for an in-memory engine or a freshly
    /// initialized directory, incremented by every recovery of existing
    /// state. Load counters and the request trace restart from zero each
    /// epoch; consumers use the marker to tell "recovered" from "idle".
    pub fn recovery_epoch(&self) -> u64 {
        self.durable.get().map(|d| d.epoch()).unwrap_or(0)
    }

    /// Captures the whole catalog into a checkpoint file and, when no
    /// append raced the capture, empties the WAL. Returns the LSN the
    /// checkpoint covers, or `Ok(None)` for a non-durable engine.
    ///
    /// The capture takes every entry's write lock (in name order) and
    /// re-lists the catalog after reading the cut LSN, retrying until the
    /// locked set covers every entry — a consistent cut: no logged record
    /// can fall at or below the checkpoint's LSN without its document in
    /// the capture, even when documents are created concurrently. Readers
    /// are never blocked — they evaluate on `Arc` snapshots.
    pub fn checkpoint(&self) -> Result<Option<u64>, EngineError> {
        let Some(durable) = self.durable.get() else {
            return Ok(None);
        };
        if durable.is_dead() {
            return Err(dur_err(DurError::Crashed));
        }
        let _one = durable.checkpoint_serial.lock();
        // The cut is only consistent if every entry that could have logged
        // a record at or below `last_lsn` is locked during the capture. An
        // entry created *after* the listing is not — its loads could
        // append before we read the LSN, giving acknowledged records at or
        // below the cut with the document absent from the capture (and
        // lost when the log truncates). So: list, lock, read the LSN, then
        // re-list. Any append that beat the LSN read came from an entry
        // that was already in the catalog at that point, so a re-listing
        // that shows nothing outside the locked set proves the cut is
        // closed; otherwise release and retry (rare — a document was
        // created mid-capture).
        let (docs, last_lsn) = loop {
            let entries = self.catalog().entries_sorted();
            let guards: Vec<_> = entries.iter().map(|e| e.write_serial.lock()).collect();
            let last_lsn = durable.writer.lock().next_lsn() - 1;
            let covered = self
                .catalog()
                .entries_sorted()
                .iter()
                .all(|seen| entries.iter().any(|locked| Arc::ptr_eq(locked, seen)));
            if !covered {
                drop(guards);
                continue;
            }
            let mut docs = Vec::with_capacity(entries.len());
            for entry in &entries {
                if entry.is_dropped() {
                    continue; // dropped between listing and locking
                }
                let snapshot = entry.source.read().clone();
                let dtd_text = entry.dtd_text.read().clone().map(|t| t.to_string());
                let mut views: Vec<(String, ViewKind, String)> = entry
                    .views
                    .read()
                    .iter()
                    .map(|(group, slot)| {
                        let (kind, text) = match &slot.source {
                            ViewSource::Policy(t) => (ViewKind::Policy, t.to_string()),
                            ViewSource::Spec(t) => (ViewKind::Spec, t.to_string()),
                        };
                        (group.clone(), kind, text)
                    })
                    .collect();
                views.sort_by(|a, b| a.0.cmp(&b.0));
                let (xml, tax) = match &snapshot {
                    None => (None, Vec::new()),
                    Some(source) => {
                        let xml = source
                            .raw
                            .clone()
                            .unwrap_or_else(|| Arc::from(source.doc.to_xml()))
                            .to_string();
                        let mut tax_bytes = Vec::new();
                        if let Some(tax) = &source.tax {
                            tax.save(&mut tax_bytes, self.vocabulary())
                                .map_err(EngineError::Xml)?;
                        }
                        (Some(xml), tax_bytes)
                    }
                };
                docs.push(CheckpointDoc {
                    name: entry.name().to_string(),
                    generation: entry.generation(),
                    counter: entry.counter_value(),
                    dtd: dtd_text,
                    xml,
                    views,
                    tax,
                });
            }
            break (docs, last_lsn); // entry locks release here
        };
        let ckpt = Checkpoint {
            epoch: durable.epoch,
            last_lsn,
            docs,
        };
        // The file write happens outside the entry locks — the captured
        // state is all `Arc` clones and stays exactly the cut's.
        checkpoint::write_checkpoint(&durable.dir, &ckpt, &durable.failpoints).map_err(|e| {
            if matches!(e, DurError::Injected(_)) {
                durable.dead.store(true, Ordering::Release);
            }
            dur_err(e)
        })?;
        durable.records_since_checkpoint.store(0, Ordering::Relaxed);
        let mut writer = durable.writer.lock();
        if writer.next_lsn() == last_lsn + 1 {
            // No append raced the capture: every record is covered by the
            // checkpoint and the log can restart empty.
            writer.truncate_all().map_err(dur_err)?;
        } else {
            // Appends landed since the cut; keep them (replay skips
            // records at or below the checkpoint LSN) and fsync.
            writer.sync().map_err(dur_err)?;
        }
        Ok(Some(last_lsn))
    }

    /// Checkpoint when enough records have accumulated since the last one
    /// (the periodic cadence of the update path). Errors are left for the
    /// next durable operation to surface: the WAL itself is intact, so
    /// skipping a periodic checkpoint never loses data.
    pub(crate) fn maybe_checkpoint(&self) {
        if let Some(durable) = self.durable.get() {
            let every = self.config().checkpoint_every;
            if every > 0
                && !durable.is_dead()
                && durable.records_since_checkpoint.load(Ordering::Relaxed) >= every
            {
                let _ = self.checkpoint();
            }
        }
    }

    /// Appends `op` to the WAL when this engine is durable; a no-op
    /// otherwise. Called *before* the corresponding in-memory install,
    /// under the affected entry's write lock.
    pub(crate) fn durable_log(&self, op: WalOp) -> Result<(), EngineError> {
        match self.durable.get() {
            None => Ok(()),
            Some(durable) => durable.log(op).map_err(dur_err),
        }
    }
}

/// Rebuilds the catalog from a checkpoint. Runs before the durability
/// handle is attached, so nothing here re-logs.
fn restore_checkpoint(engine: &Arc<Engine>, ckpt: &Checkpoint) -> Result<(), EngineError> {
    for doc in &ckpt.docs {
        let entry = engine.catalog().entry_or_create(&doc.name);
        // Document before DTD: the checkpoint is a trusted capture of
        // state the engine already accepted, and the live engine permits
        // registering a DTD the installed document does not match
        // (`load_dtd_on` never revalidates). Restoring DTD-first would
        // re-validate in `load_document_on` and refuse that live-legal
        // state on every boot.
        if let Some(xml) = &doc.xml {
            engine.load_document_on(&entry, xml)?;
        }
        if let Some(dtd) = &doc.dtd {
            engine.load_dtd_on(&entry, dtd)?;
        }
        for (group, kind, text) in &doc.views {
            match kind {
                ViewKind::Policy => engine.register_policy_on(&entry, group, text)?,
                ViewKind::Spec => engine.register_view_spec_on(&entry, group, text)?,
            }
        }
        if !doc.tax.is_empty() {
            let snapshot = entry.snapshot()?;
            let mut tax =
                TaxIndex::load(&mut &doc.tax[..], engine.vocabulary()).map_err(EngineError::Xml)?;
            // The persisted format carries the descendant sets; the
            // positional/value label index rebuilds over the live tree.
            tax.attach_label_index(&snapshot.doc);
            engine.attach_tax_restored(&entry, &snapshot, Arc::new(tax));
        }
        // Restore the generation counters last: the loads above bumped
        // them from zero, the stored values are what sessions saw.
        entry.restore_counters(doc.generation, doc.counter);
    }
    Ok(())
}

/// Applies one WAL record to the recovering engine through the ordinary
/// mutation paths (the durability handle is not attached yet, so nothing
/// re-logs). Group updates re-resolve their targets through the group's
/// security view, exactly as the original write did.
fn replay_record(engine: &Arc<Engine>, op: &WalOp) -> Result<(), EngineError> {
    match op {
        WalOp::OpenDocument { doc } => {
            engine.catalog().entry_or_create(doc);
            Ok(())
        }
        WalOp::LoadDtd { doc, text } => {
            engine.load_dtd_on(&engine.catalog().entry_or_create(doc), text)
        }
        WalOp::LoadDocument { doc, xml } => {
            engine.load_document_on(&engine.catalog().entry_or_create(doc), xml)
        }
        WalOp::RegisterPolicy { doc, group, text } => {
            engine.register_policy_on(&engine.catalog().entry_or_create(doc), group, text)
        }
        WalOp::RegisterViewSpec { doc, group, text } => {
            engine.register_view_spec_on(&engine.catalog().entry_or_create(doc), group, text)
        }
        WalOp::BuildTaxIndex { doc } => engine
            .build_tax_index_on(&engine.catalog().entry_or_create(doc))
            .map(|_| ()),
        WalOp::Update {
            doc,
            group,
            statements,
        } => {
            let entry = engine.catalog().entry(doc)?;
            let user = match group {
                None => User::Admin,
                Some(g) => User::Group(g.clone()),
            };
            let refs: Vec<&str> = statements.iter().map(String::as_str).collect();
            engine.apply_updates_inner(&entry, &user, &refs).map(|_| ())
        }
        WalOp::DropDocument { doc } => {
            engine.drop_document_local(doc);
            Ok(())
        }
    }
}
