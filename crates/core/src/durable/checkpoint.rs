//! Checkpoint files: a full snapshot of the catalog so recovery replays
//! only the WAL tail.
//!
//! One checkpoint is one file, `checkpoint-<lsn>.ckpt`, written to a
//! temporary name and atomically renamed into place, then fsynced (file
//! and directory). Contents, little-endian throughout:
//!
//! ```text
//! magic "SMOQECKP" | version u32 | epoch u64 | last_lsn u64 | doc_count u32
//! per document:
//!   name str | generation u64 | counter u64
//!   dtd?  (u8 flag + str)        — the registered DTD text
//!   xml?  (u8 flag + str)        — the serialized document
//!   view_count u32, each: group str | kind u8 (0 policy, 1 spec) | text str
//!   tax bytes (u32 len, 0 = none) — `tax/persist.rs` format, labels by name
//! crc32 u32 over everything before it
//! ```
//!
//! Loading picks the highest-LSN file that passes the checksum; a corrupt
//! newer file falls back to the previous one (the previous checkpoint is
//! kept until a newer one lands). Temporary files from an interrupted
//! write never match the name pattern and are ignored (and cleaned up).

use super::failpoints::{Failpoint, FailpointRegistry};
use super::wal::{crc32, put_str, put_u32, put_u64, Cursor};
use super::DurError;
use std::io::Write;
use std::path::{Path, PathBuf};

const MAGIC: &[u8; 8] = b"SMOQECKP";
const VERSION: u32 = 1;

/// How a group's view was registered — replayed through the same path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum ViewKind {
    /// `register_policy`: the text is an access-control policy and the
    /// view is re-derived on load.
    Policy,
    /// `register_view_spec`: the text is the view specification itself.
    Spec,
}

/// One catalog entry as captured by a checkpoint.
pub(crate) struct CheckpointDoc {
    pub(crate) name: String,
    pub(crate) generation: u64,
    pub(crate) counter: u64,
    pub(crate) dtd: Option<String>,
    pub(crate) xml: Option<String>,
    /// `(group, kind, registration text)`, sorted by group for
    /// deterministic files.
    pub(crate) views: Vec<(String, ViewKind, String)>,
    /// Serialized TAX index (`tax/persist.rs` format), empty if none was
    /// built.
    pub(crate) tax: Vec<u8>,
}

/// A full catalog snapshot plus the WAL position it covers.
pub(crate) struct Checkpoint {
    /// Recovery epoch: how many times this directory has been recovered.
    pub(crate) epoch: u64,
    /// Every record with an LSN at or below this is reflected in the
    /// snapshot; replay starts after it.
    pub(crate) last_lsn: u64,
    pub(crate) docs: Vec<CheckpointDoc>,
}

/// Refuses a capture the `u32` framing cannot represent: `put_str`'s
/// length cast would silently truncate and the resulting file — checksum
/// intact — would never decode, burning both checkpoint slots over time.
fn check_framing(ckpt: &Checkpoint) -> Result<(), DurError> {
    fn check(doc: &str, what: &str, len: usize) -> Result<(), DurError> {
        if len > u32::MAX as usize {
            return Err(DurError::Checkpoint(format!(
                "document '{doc}': {what} of {len} bytes exceeds the u32 framing limit"
            )));
        }
        Ok(())
    }
    for doc in &ckpt.docs {
        check(&doc.name, "name", doc.name.len())?;
        check(&doc.name, "dtd", doc.dtd.as_ref().map_or(0, String::len))?;
        check(&doc.name, "xml", doc.xml.as_ref().map_or(0, String::len))?;
        check(&doc.name, "tax index", doc.tax.len())?;
        for (group, _, text) in &doc.views {
            check(&doc.name, "view group", group.len())?;
            check(&doc.name, "view text", text.len())?;
        }
    }
    Ok(())
}

fn encode(ckpt: &Checkpoint) -> Vec<u8> {
    let mut out = Vec::with_capacity(4096);
    out.extend_from_slice(MAGIC);
    put_u32(&mut out, VERSION);
    put_u64(&mut out, ckpt.epoch);
    put_u64(&mut out, ckpt.last_lsn);
    put_u32(&mut out, ckpt.docs.len() as u32);
    for doc in &ckpt.docs {
        put_str(&mut out, &doc.name);
        put_u64(&mut out, doc.generation);
        put_u64(&mut out, doc.counter);
        for field in [&doc.dtd, &doc.xml] {
            match field {
                None => out.push(0),
                Some(text) => {
                    out.push(1);
                    put_str(&mut out, text);
                }
            }
        }
        put_u32(&mut out, doc.views.len() as u32);
        for (group, kind, text) in &doc.views {
            put_str(&mut out, group);
            out.push(match kind {
                ViewKind::Policy => 0,
                ViewKind::Spec => 1,
            });
            put_str(&mut out, text);
        }
        put_u32(&mut out, doc.tax.len() as u32);
        out.extend_from_slice(&doc.tax);
    }
    let crc = crc32(&out);
    put_u32(&mut out, crc);
    out
}

fn decode(bytes: &[u8]) -> Option<Checkpoint> {
    if bytes.len() < MAGIC.len() + 4 || &bytes[..MAGIC.len()] != MAGIC {
        return None;
    }
    let (body, trailer) = bytes.split_at(bytes.len() - 4);
    let stored = u32::from_le_bytes(trailer.try_into().unwrap());
    if crc32(body) != stored {
        return None;
    }
    let mut c = Cursor::new(&body[MAGIC.len()..]);
    if c.u32()? != VERSION {
        return None;
    }
    let epoch = c.u64()?;
    let last_lsn = c.u64()?;
    let doc_count = c.u32()? as usize;
    let mut docs = Vec::with_capacity(doc_count.min(body.len() / 8));
    for _ in 0..doc_count {
        let name = c.str()?;
        let generation = c.u64()?;
        let counter = c.u64()?;
        let mut texts = [None, None];
        for slot in &mut texts {
            *slot = match c.u8()? {
                0 => None,
                1 => Some(c.str()?),
                _ => return None,
            };
        }
        let [dtd, xml] = texts;
        let view_count = c.u32()? as usize;
        let mut views = Vec::with_capacity(view_count.min(body.len() / 8));
        for _ in 0..view_count {
            let group = c.str()?;
            let kind = match c.u8()? {
                0 => ViewKind::Policy,
                1 => ViewKind::Spec,
                _ => return None,
            };
            views.push((group, kind, c.str()?));
        }
        let tax = c.bytes()?;
        docs.push(CheckpointDoc {
            name,
            generation,
            counter,
            dtd,
            xml,
            views,
            tax,
        });
    }
    if !c.is_empty() {
        return None;
    }
    Some(Checkpoint {
        epoch,
        last_lsn,
        docs,
    })
}

fn checkpoint_path(dir: &Path, lsn: u64) -> PathBuf {
    dir.join(format!("checkpoint-{lsn:020}.ckpt"))
}

/// LSN encoded in a checkpoint file name, if it is one.
fn parse_name(name: &str) -> Option<u64> {
    name.strip_prefix("checkpoint-")?
        .strip_suffix(".ckpt")?
        .parse()
        .ok()
}

/// Writes `ckpt` durably (tmp file → fsync → atomic rename → dir fsync)
/// and prunes all but the newest two checkpoint files.
pub(crate) fn write_checkpoint(
    dir: &Path,
    ckpt: &Checkpoint,
    failpoints: &FailpointRegistry,
) -> Result<PathBuf, DurError> {
    check_framing(ckpt)?;
    let bytes = encode(ckpt);
    let tmp = dir.join("checkpoint.tmp");
    let mut file = std::fs::File::create(&tmp).map_err(DurError::Io)?;
    if failpoints.fire(Failpoint::CheckpointInterrupted) {
        // Die mid-checkpoint: a partial temp file is left behind, which
        // recovery must ignore (it never matches the name pattern).
        let half = &bytes[..bytes.len() / 2];
        file.write_all(half).map_err(DurError::Io)?;
        let _ = file.sync_all();
        return Err(DurError::Injected(Failpoint::CheckpointInterrupted.name()));
    }
    file.write_all(&bytes).map_err(DurError::Io)?;
    file.sync_all().map_err(DurError::Io)?;
    drop(file);
    let path = checkpoint_path(dir, ckpt.last_lsn);
    std::fs::rename(&tmp, &path).map_err(DurError::Io)?;
    // Persist the rename itself (directory metadata).
    if let Ok(d) = std::fs::File::open(dir) {
        let _ = d.sync_all();
    }
    // Keep the previous checkpoint as a fallback; prune older ones.
    let mut lsns = list_checkpoints(dir)?;
    while lsns.len() > 2 {
        let oldest = lsns.remove(0);
        let _ = std::fs::remove_file(checkpoint_path(dir, oldest));
    }
    Ok(path)
}

fn list_checkpoints(dir: &Path) -> Result<Vec<u64>, DurError> {
    let mut lsns = Vec::new();
    for entry in std::fs::read_dir(dir).map_err(DurError::Io)? {
        let entry = entry.map_err(DurError::Io)?;
        if let Some(lsn) = entry.file_name().to_str().and_then(parse_name) {
            lsns.push(lsn);
        }
    }
    lsns.sort_unstable();
    Ok(lsns)
}

/// Loads the newest checkpoint that passes its checksum, falling back to
/// older ones. `Ok(None)` when the directory has no checkpoint at all;
/// [`DurError::Checkpoint`] when checkpoints exist but none is loadable
/// (recovering from the WAL alone would silently lose the checkpointed
/// state, so this refuses instead).
pub(crate) fn load_latest(dir: &Path) -> Result<Option<Checkpoint>, DurError> {
    // A crash may have left a temp file behind; it holds nothing a valid
    // checkpoint doesn't, so clear it out.
    let _ = std::fs::remove_file(dir.join("checkpoint.tmp"));
    let lsns = list_checkpoints(dir)?;
    if lsns.is_empty() {
        return Ok(None);
    }
    for &lsn in lsns.iter().rev() {
        let bytes = std::fs::read(checkpoint_path(dir, lsn)).map_err(DurError::Io)?;
        if let Some(ckpt) = decode(&bytes) {
            return Ok(Some(ckpt));
        }
    }
    Err(DurError::Checkpoint(format!(
        "{} checkpoint file(s) present but none passes its checksum",
        lsns.len()
    )))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Checkpoint {
        Checkpoint {
            epoch: 3,
            last_lsn: 42,
            docs: vec![CheckpointDoc {
                name: "wards".into(),
                generation: 7,
                counter: 9,
                dtd: Some("<!ELEMENT hospital (patient*)>".into()),
                xml: Some("<hospital/>".into()),
                views: vec![("researchers".into(), ViewKind::Policy, "policy".into())],
                tax: vec![1, 2, 3],
            }],
        }
    }

    #[test]
    fn encode_decode_round_trip() {
        let ckpt = sample();
        let decoded = decode(&encode(&ckpt)).expect("round trip");
        assert_eq!(decoded.epoch, 3);
        assert_eq!(decoded.last_lsn, 42);
        assert_eq!(decoded.docs.len(), 1);
        let d = &decoded.docs[0];
        assert_eq!(d.name, "wards");
        assert_eq!((d.generation, d.counter), (7, 9));
        assert_eq!(d.views[0].1, ViewKind::Policy);
        assert_eq!(d.tax, vec![1, 2, 3]);
    }

    #[test]
    fn corrupt_bytes_do_not_decode() {
        let mut bytes = encode(&sample());
        for i in [0, 9, bytes.len() / 2, bytes.len() - 1] {
            bytes[i] ^= 0x10;
            assert!(decode(&bytes).is_none(), "flip at {i} must fail");
            bytes[i] ^= 0x10;
        }
        assert!(decode(&bytes[..bytes.len() - 3]).is_none());
        assert!(decode(b"short").is_none());
    }
}
