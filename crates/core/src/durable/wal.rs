//! The write-ahead log: length-prefixed, CRC32-checksummed, LSN-sequenced
//! records of every catalog mutation.
//!
//! On-disk framing (all integers little-endian):
//!
//! ```text
//! [payload_len u32][crc32 u32 of payload][payload]
//! payload = [lsn u64][kind u8][kind-specific fields]
//! ```
//!
//! Strings are `u32` length + UTF-8 bytes; lists are a `u32` count
//! followed by the elements. Logging is **logical**: an update record
//! carries the statement text and the acting principal, and replay runs
//! it through the ordinary [`smoqe_update`] apply path, so security
//! checks are re-validated deterministically against the recovered state.
//!
//! The tail-scan distinguishes two failure shapes precisely:
//!
//! * a record whose claimed extent runs past end-of-file is a **torn
//!   tail** (a crash mid-`write`); the scan reports where the valid
//!   prefix ends so recovery can truncate it and continue, and
//! * a *complete* record whose checksum or structure is wrong is
//!   **mid-log corruption**; the scan refuses with a typed error rather
//!   than guess at the data — see
//!   [`DurError::Corrupt`](super::DurError::Corrupt).

use super::failpoints::{Failpoint, FailpointRegistry};
use super::DurError;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::Path;

/// Hard ceiling on one record's payload (a corrupted length field must
/// not drive a multi-gigabyte allocation). Enforced on **both** sides:
/// [`WalWriter::append`] refuses an oversized record before any byte
/// reaches the log — otherwise an accepted write would render every
/// subsequent recovery a [`DurError::Corrupt`].
pub(crate) const MAX_RECORD: u32 = 1 << 30;

// ---------------------------------------------------------------------------
// CRC32 (IEEE 802.3, reflected) — hand-rolled, the workspace is offline.
// ---------------------------------------------------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc32_table();

/// CRC32 checksum of `bytes` (IEEE polynomial, as in zip/zlib/ethernet).
pub(crate) fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

// ---------------------------------------------------------------------------
// Records
// ---------------------------------------------------------------------------

/// One logged catalog mutation (the logical payload of a WAL record).
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) enum WalOp {
    /// `open_document` created a (still empty) catalog entry.
    OpenDocument { doc: String },
    /// A DTD was parsed and installed.
    LoadDtd { doc: String, text: String },
    /// A document was loaded (from text, file or built tree — always
    /// logged as its serialized XML).
    LoadDocument { doc: String, xml: String },
    /// A group was registered by access-control policy.
    RegisterPolicy {
        doc: String,
        group: String,
        text: String,
    },
    /// A group was registered with a hand-authored view spec.
    RegisterViewSpec {
        doc: String,
        group: String,
        text: String,
    },
    /// A TAX index was built (or loaded) over the current document.
    BuildTaxIndex { doc: String },
    /// An accepted update transaction: the statement texts plus the
    /// acting principal (`None` = admin, `Some(g)` = group `g`). Replay
    /// re-resolves targets through the same view the original write used,
    /// so a group update recovers through its security view, not as a
    /// privileged admin write.
    Update {
        doc: String,
        group: Option<String>,
        statements: Vec<String>,
    },
    /// The document was dropped; recovery must not resurrect it.
    DropDocument { doc: String },
}

impl WalOp {
    /// The exact encoded payload size, computed in `u64` *before*
    /// encoding so an input too large for the `u32` framing (or the
    /// [`MAX_RECORD`] ceiling) is refused instead of silently truncated
    /// by `put_str`'s length cast. Must mirror [`encode_record`].
    fn payload_len(&self) -> u64 {
        fn s(text: &str) -> u64 {
            4 + text.len() as u64
        }
        let fields = match self {
            WalOp::OpenDocument { doc }
            | WalOp::BuildTaxIndex { doc }
            | WalOp::DropDocument { doc } => s(doc),
            WalOp::LoadDtd { doc, text } | WalOp::LoadDocument { doc, xml: text } => {
                s(doc) + s(text)
            }
            WalOp::RegisterPolicy { doc, group, text }
            | WalOp::RegisterViewSpec { doc, group, text } => s(doc) + s(group) + s(text),
            WalOp::Update {
                doc,
                group,
                statements,
            } => {
                s(doc)
                    + 1
                    + group.as_deref().map_or(0, s)
                    + 4
                    + statements.iter().map(|st| s(st)).sum::<u64>()
            }
        };
        8 + 1 + fields // lsn + kind
    }

    fn kind(&self) -> u8 {
        match self {
            WalOp::OpenDocument { .. } => 1,
            WalOp::LoadDtd { .. } => 2,
            WalOp::LoadDocument { .. } => 3,
            WalOp::RegisterPolicy { .. } => 4,
            WalOp::RegisterViewSpec { .. } => 5,
            WalOp::BuildTaxIndex { .. } => 6,
            WalOp::Update { .. } => 7,
            WalOp::DropDocument { .. } => 8,
        }
    }
}

/// A decoded record: its log sequence number plus the logical operation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) struct WalRecord {
    pub(crate) lsn: u64,
    pub(crate) op: WalOp,
}

pub(crate) fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

/// A bounds-checked little-endian reader over a byte slice.
pub(crate) struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.pos == self.buf.len()
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        let slice = self.buf.get(self.pos..end)?;
        self.pos = end;
        Some(slice)
    }

    pub(crate) fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|b| b[0])
    }

    pub(crate) fn u32(&mut self) -> Option<u32> {
        self.take(4)
            .map(|b| u32::from_le_bytes(b.try_into().unwrap()))
    }

    pub(crate) fn u64(&mut self) -> Option<u64> {
        self.take(8)
            .map(|b| u64::from_le_bytes(b.try_into().unwrap()))
    }

    pub(crate) fn str(&mut self) -> Option<String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        std::str::from_utf8(bytes).ok().map(str::to_string)
    }

    pub(crate) fn bytes(&mut self) -> Option<Vec<u8>> {
        let len = self.u32()? as usize;
        self.take(len).map(<[u8]>::to_vec)
    }
}

/// Encodes `record` as one framed WAL entry (header + checksum + payload).
fn encode_record(record: &WalRecord) -> Vec<u8> {
    let mut payload = Vec::with_capacity(64);
    put_u64(&mut payload, record.lsn);
    payload.push(record.op.kind());
    match &record.op {
        WalOp::OpenDocument { doc }
        | WalOp::BuildTaxIndex { doc }
        | WalOp::DropDocument { doc } => put_str(&mut payload, doc),
        WalOp::LoadDtd { doc, text } | WalOp::LoadDocument { doc, xml: text } => {
            put_str(&mut payload, doc);
            put_str(&mut payload, text);
        }
        WalOp::RegisterPolicy { doc, group, text }
        | WalOp::RegisterViewSpec { doc, group, text } => {
            put_str(&mut payload, doc);
            put_str(&mut payload, group);
            put_str(&mut payload, text);
        }
        WalOp::Update {
            doc,
            group,
            statements,
        } => {
            put_str(&mut payload, doc);
            match group {
                None => payload.push(0),
                Some(g) => {
                    payload.push(1);
                    put_str(&mut payload, g);
                }
            }
            put_u32(&mut payload, statements.len() as u32);
            for s in statements {
                put_str(&mut payload, s);
            }
        }
    }
    let mut framed = Vec::with_capacity(payload.len() + 8);
    put_u32(&mut framed, payload.len() as u32);
    put_u32(&mut framed, crc32(&payload));
    framed.extend_from_slice(&payload);
    framed
}

/// Decodes one payload (the bytes after the frame header). `None` means
/// the structure is malformed — the caller reports mid-log corruption.
fn decode_payload(payload: &[u8]) -> Option<WalRecord> {
    let mut c = Cursor::new(payload);
    let lsn = c.u64()?;
    let kind = c.u8()?;
    let op = match kind {
        1 => WalOp::OpenDocument { doc: c.str()? },
        2 => WalOp::LoadDtd {
            doc: c.str()?,
            text: c.str()?,
        },
        3 => WalOp::LoadDocument {
            doc: c.str()?,
            xml: c.str()?,
        },
        4 => WalOp::RegisterPolicy {
            doc: c.str()?,
            group: c.str()?,
            text: c.str()?,
        },
        5 => WalOp::RegisterViewSpec {
            doc: c.str()?,
            group: c.str()?,
            text: c.str()?,
        },
        6 => WalOp::BuildTaxIndex { doc: c.str()? },
        7 => {
            let doc = c.str()?;
            let group = match c.u8()? {
                0 => None,
                1 => Some(c.str()?),
                _ => return None,
            };
            let n = c.u32()? as usize;
            // A corrupt count must not drive a huge allocation: every
            // statement needs at least its 4-byte length prefix.
            let mut statements = Vec::with_capacity(n.min(payload.len() / 4));
            for _ in 0..n {
                statements.push(c.str()?);
            }
            WalOp::Update {
                doc,
                group,
                statements,
            }
        }
        8 => WalOp::DropDocument { doc: c.str()? },
        _ => return None,
    };
    if !c.is_empty() {
        return None; // trailing garbage inside a checksummed payload
    }
    Some(WalRecord { lsn, op })
}

// ---------------------------------------------------------------------------
// Scanning
// ---------------------------------------------------------------------------

/// Result of scanning a WAL file.
#[derive(Debug)]
pub(crate) struct WalScan {
    /// The decoded records, in LSN order.
    pub(crate) records: Vec<WalRecord>,
    /// Byte length of the valid prefix — shorter than the file when a
    /// torn tail must be truncated.
    pub(crate) valid_len: u64,
}

/// Scans `bytes` (the full WAL file). A record extending past end-of-file
/// is a torn tail (valid prefix ends before it); a *complete* record with
/// a bad checksum, malformed structure or non-increasing LSN is mid-log
/// corruption and fails with [`DurError::Corrupt`].
pub(crate) fn scan_wal_bytes(bytes: &[u8]) -> Result<WalScan, DurError> {
    let mut records = Vec::new();
    let mut offset = 0usize;
    let mut last_lsn = 0u64;
    while offset < bytes.len() {
        let remaining = bytes.len() - offset;
        if remaining < 8 {
            // A header can only be short at the very end: torn tail.
            return Ok(WalScan {
                records,
                valid_len: offset as u64,
            });
        }
        let len = u32::from_le_bytes(bytes[offset..offset + 4].try_into().unwrap());
        let crc = u32::from_le_bytes(bytes[offset + 4..offset + 8].try_into().unwrap());
        if len > MAX_RECORD {
            return Err(DurError::Corrupt {
                offset: offset as u64,
                detail: format!("record length {len} exceeds the {MAX_RECORD}-byte ceiling"),
            });
        }
        let body_end = offset + 8 + len as usize;
        if body_end > bytes.len() {
            // The record's claimed extent runs past EOF: a crash tore the
            // final write. Everything before this header is intact.
            return Ok(WalScan {
                records,
                valid_len: offset as u64,
            });
        }
        let payload = &bytes[offset + 8..body_end];
        if crc32(payload) != crc {
            return Err(DurError::Corrupt {
                offset: offset as u64,
                detail: "checksum mismatch on a complete record".to_string(),
            });
        }
        let record = decode_payload(payload).ok_or_else(|| DurError::Corrupt {
            offset: offset as u64,
            detail: "malformed record payload (checksum valid)".to_string(),
        })?;
        if record.lsn <= last_lsn && !records.is_empty() {
            return Err(DurError::Corrupt {
                offset: offset as u64,
                detail: format!(
                    "LSN {} does not advance past {} — records reordered or duplicated",
                    record.lsn, last_lsn
                ),
            });
        }
        last_lsn = record.lsn;
        records.push(record);
        offset = body_end;
    }
    Ok(WalScan {
        records,
        valid_len: bytes.len() as u64,
    })
}

/// Reads and scans the WAL at `path`; a missing file is an empty log.
pub(crate) fn scan_wal(path: &Path) -> Result<WalScan, DurError> {
    match std::fs::read(path) {
        Ok(bytes) => scan_wal_bytes(&bytes),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(WalScan {
            records: Vec::new(),
            valid_len: 0,
        }),
        Err(e) => Err(DurError::Io(e)),
    }
}

// ---------------------------------------------------------------------------
// Appending
// ---------------------------------------------------------------------------

/// The append side of the WAL. One per [`Durability`](super::Durability),
/// behind its mutex; LSNs are assigned under that lock, so append order,
/// LSN order and file order all agree.
pub(crate) struct WalWriter {
    file: File,
    next_lsn: u64,
}

impl WalWriter {
    /// Opens (creating if needed) the WAL at `path`, positioned after the
    /// scanned valid prefix, with `next_lsn` as the next sequence number.
    pub(crate) fn open(path: &Path, valid_len: u64, next_lsn: u64) -> Result<Self, DurError> {
        use std::io::Seek;
        let mut file = OpenOptions::new()
            .create(true)
            .truncate(false)
            .read(true)
            .write(true)
            .open(path)
            .map_err(DurError::Io)?;
        // Cut a torn tail (and anything after it) off for good, then
        // position the cursor so appends land right after the last
        // intact record (opening does not imply O_APPEND here).
        file.set_len(valid_len).map_err(DurError::Io)?;
        file.seek(std::io::SeekFrom::Start(valid_len))
            .map_err(DurError::Io)?;
        Ok(WalWriter { file, next_lsn })
    }

    /// The LSN the next append will use.
    pub(crate) fn next_lsn(&self) -> u64 {
        self.next_lsn
    }

    /// Appends `op`, honoring the torn-write and sync-error failpoints,
    /// and returns the record's LSN. The write is flushed to the OS (one
    /// `write(2)` of the whole framed record) but **not** fsynced — see
    /// the module docs of [`super`] for the durability contract.
    pub(crate) fn append(
        &mut self,
        op: WalOp,
        failpoints: &FailpointRegistry,
    ) -> Result<u64, DurError> {
        // Refuse what recovery would reject — before encoding, so no byte
        // of an oversized record ever reaches the log and the operation
        // fails cleanly while the log stays recoverable.
        let size = op.payload_len();
        if size > MAX_RECORD as u64 {
            return Err(DurError::RecordTooLarge {
                size,
                limit: MAX_RECORD as u64,
            });
        }
        let record = WalRecord {
            lsn: self.next_lsn,
            op,
        };
        let bytes = encode_record(&record);
        if failpoints.fire(Failpoint::TornWrite) {
            // Simulate a crash mid-write: half the record reaches the
            // file, the process "dies" before the rest.
            let half = &bytes[..bytes.len() / 2];
            self.file.write_all(half).map_err(DurError::Io)?;
            let _ = self.file.sync_data();
            return Err(DurError::Injected(Failpoint::TornWrite.name()));
        }
        self.file.write_all(&bytes).map_err(DurError::Io)?;
        if failpoints.fire(Failpoint::SyncError) {
            return Err(DurError::Injected(Failpoint::SyncError.name()));
        }
        self.next_lsn += 1;
        Ok(record.lsn)
    }

    /// Fsyncs the log (checkpoint and clean-shutdown path).
    pub(crate) fn sync(&mut self) -> Result<(), DurError> {
        self.file.sync_data().map_err(DurError::Io)
    }

    /// Empties the log after its records were captured by a checkpoint.
    pub(crate) fn truncate_all(&mut self) -> Result<(), DurError> {
        use std::io::Seek;
        self.file.set_len(0).map_err(DurError::Io)?;
        self.file
            .seek(std::io::SeekFrom::Start(0))
            .map_err(DurError::Io)?;
        self.file.sync_data().map_err(DurError::Io)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord {
                lsn: 1,
                op: WalOp::OpenDocument { doc: "d".into() },
            },
            WalRecord {
                lsn: 2,
                op: WalOp::LoadDtd {
                    doc: "d".into(),
                    text: "<!ELEMENT a EMPTY>".into(),
                },
            },
            WalRecord {
                lsn: 3,
                op: WalOp::Update {
                    doc: "d".into(),
                    group: Some("researchers".into()),
                    statements: vec!["insert <x/> into /a".into(), "delete //x".into()],
                },
            },
            WalRecord {
                lsn: 4,
                op: WalOp::DropDocument { doc: "d".into() },
            },
        ]
    }

    fn encode_all(records: &[WalRecord]) -> Vec<u8> {
        let mut bytes = Vec::new();
        for r in records {
            bytes.extend_from_slice(&encode_record(r));
        }
        bytes
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // The classic IEEE CRC32 test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn records_round_trip() {
        let records = sample_records();
        let bytes = encode_all(&records);
        let scan = scan_wal_bytes(&bytes).unwrap();
        assert_eq!(scan.valid_len, bytes.len() as u64);
        assert_eq!(scan.records, records);
    }

    #[test]
    fn torn_tail_is_truncated_not_an_error() {
        let records = sample_records();
        let bytes = encode_all(&records);
        let third_starts: usize = records[..2].iter().map(|r| encode_record(r).len()).sum();
        // Cut anywhere inside the third record: the first two survive.
        for cut in third_starts + 1..bytes.len() - encode_record(&records[3]).len() {
            let scan = scan_wal_bytes(&bytes[..cut]).unwrap();
            assert_eq!(scan.valid_len, third_starts as u64, "cut at {cut}");
            assert_eq!(scan.records.len(), 2);
        }
    }

    #[test]
    fn midlog_corruption_is_a_typed_error() {
        let records = sample_records();
        let mut bytes = encode_all(&records);
        // Flip one payload byte of the *first* record — complete record,
        // bad checksum.
        bytes[10] ^= 0x40;
        match scan_wal_bytes(&bytes) {
            Err(DurError::Corrupt { offset: 0, .. }) => {}
            other => panic!("expected corruption at offset 0, got {other:?}"),
        }
    }

    #[test]
    fn payload_len_mirrors_the_encoder() {
        for (i, r) in sample_records().iter().enumerate() {
            // The frame adds 8 bytes (length + crc) on top of the payload.
            assert_eq!(
                r.op.payload_len(),
                (encode_record(r).len() - 8) as u64,
                "record {i}"
            );
        }
    }

    #[test]
    fn oversized_record_is_refused_before_touching_the_log() {
        let path = std::env::temp_dir().join(format!("smoqe-wal-big-{}.log", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let mut writer = WalWriter::open(&path, 0, 1).unwrap();
        let fps = FailpointRegistry::default();
        let huge = WalOp::LoadDocument {
            doc: "d".into(),
            xml: "x".repeat(MAX_RECORD as usize + 1),
        };
        match writer.append(huge, &fps) {
            Err(DurError::RecordTooLarge { size, limit }) => {
                assert!(size > limit);
                assert_eq!(limit, MAX_RECORD as u64);
            }
            other => panic!("expected RecordTooLarge, got {other:?}"),
        }
        // Nothing reached the log, the LSN did not advance, and the
        // writer keeps working.
        assert_eq!(std::fs::metadata(&path).unwrap().len(), 0);
        assert_eq!(writer.next_lsn(), 1);
        let lsn = writer
            .append(WalOp::OpenDocument { doc: "d".into() }, &fps)
            .unwrap();
        assert_eq!(lsn, 1);
        drop(writer);
        let scan = scan_wal(&path).unwrap();
        assert_eq!(scan.records.len(), 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn insane_length_is_corruption() {
        let mut bytes = Vec::new();
        put_u32(&mut bytes, MAX_RECORD + 1);
        put_u32(&mut bytes, 0);
        bytes.extend_from_slice(&[0; 64]);
        assert!(matches!(
            scan_wal_bytes(&bytes),
            Err(DurError::Corrupt { .. })
        ));
    }
}
