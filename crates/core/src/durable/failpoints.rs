//! Fault injection for the durability write path.
//!
//! A [`FailpointRegistry`] names the crash sites of the WAL/checkpoint
//! code. Arming one makes the *next* passage through that site fail as if
//! the process had died there: the registry's durability layer marks
//! itself dead (every later durable operation reports
//! [`DurError::Crashed`](super::DurError::Crashed)) and the in-memory
//! installation that would have followed never happens — exactly the
//! partial state a real crash leaves on disk, observable without killing
//! the test process. Recovery is then exercised by calling
//! [`Engine::recover`](crate::engine::Engine::recover) on the same
//! directory.
//!
//! The fast path is one relaxed atomic load of an armed-site counter, so
//! an unarmed registry costs nothing measurable on the update path.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// The injectable crash sites, in write-path order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Failpoint {
    /// Die before the WAL record is written: the operation is lost.
    CrashBeforeAppend,
    /// Die after the record is fully written but before the new snapshot
    /// is installed in memory: recovery *includes* the operation even
    /// though the caller saw an error (the classic in-doubt write).
    CrashAfterAppend,
    /// Write only a prefix of the record's bytes, then die — the torn
    /// tail recovery must truncate.
    TornWrite,
    /// The flush of an appended record fails (simulated fsync error).
    SyncError,
    /// Die mid-checkpoint, leaving a partial temporary file behind.
    CheckpointInterrupted,
}

/// Every failpoint, in write-path order — the fault-injection harness
/// iterates this.
pub const ALL_FAILPOINTS: [Failpoint; 5] = [
    Failpoint::CrashBeforeAppend,
    Failpoint::CrashAfterAppend,
    Failpoint::TornWrite,
    Failpoint::SyncError,
    Failpoint::CheckpointInterrupted,
];

impl Failpoint {
    /// The stable name used by `SMOQE_FAILPOINTS` and error messages.
    pub fn name(self) -> &'static str {
        match self {
            Failpoint::CrashBeforeAppend => "crash_before_append",
            Failpoint::CrashAfterAppend => "crash_after_append",
            Failpoint::TornWrite => "torn_write",
            Failpoint::SyncError => "sync_error",
            Failpoint::CheckpointInterrupted => "checkpoint_interrupted",
        }
    }

    /// Parses a [`Failpoint::name`] back.
    pub fn parse(s: &str) -> Option<Failpoint> {
        ALL_FAILPOINTS.into_iter().find(|fp| fp.name() == s.trim())
    }

    fn index(self) -> usize {
        self as usize
    }
}

/// Which failpoints are armed. One per [`Durability`](super::Durability);
/// each armed site fires exactly once (one crash per arming, like one
/// process death).
#[derive(Default)]
pub struct FailpointRegistry {
    armed: [AtomicBool; ALL_FAILPOINTS.len()],
    count: AtomicUsize,
}

impl FailpointRegistry {
    /// Arms `fp`: the next passage through that site crashes.
    pub fn arm(&self, fp: Failpoint) {
        if !self.armed[fp.index()].swap(true, Ordering::AcqRel) {
            self.count.fetch_add(1, Ordering::AcqRel);
        }
    }

    /// Disarms `fp` without firing it.
    pub fn disarm(&self, fp: Failpoint) {
        if self.armed[fp.index()].swap(false, Ordering::AcqRel) {
            self.count.fetch_sub(1, Ordering::AcqRel);
        }
    }

    /// Number of currently armed failpoints.
    pub fn armed_count(&self) -> usize {
        self.count.load(Ordering::Acquire)
    }

    /// One-shot trigger: true exactly once per arming of `fp`.
    pub(crate) fn fire(&self, fp: Failpoint) -> bool {
        // The no-failpoints fast path: a single relaxed load.
        if self.count.load(Ordering::Relaxed) == 0 {
            return false;
        }
        if self.armed[fp.index()].swap(false, Ordering::AcqRel) {
            self.count.fetch_sub(1, Ordering::AcqRel);
            true
        } else {
            false
        }
    }

    /// A registry armed from the `SMOQE_FAILPOINTS` environment variable —
    /// a comma-separated list of [`Failpoint::name`]s. Unknown names are
    /// ignored (the variable is a test/debug knob, not an API).
    pub fn from_env() -> Self {
        let registry = FailpointRegistry::default();
        if let Ok(spec) = std::env::var("SMOQE_FAILPOINTS") {
            for part in spec.split(',') {
                if let Some(fp) = Failpoint::parse(part) {
                    registry.arm(fp);
                }
            }
        }
        registry
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fire_is_one_shot_per_arming() {
        let r = FailpointRegistry::default();
        assert_eq!(r.armed_count(), 0);
        assert!(!r.fire(Failpoint::TornWrite));
        r.arm(Failpoint::TornWrite);
        r.arm(Failpoint::TornWrite); // idempotent
        assert_eq!(r.armed_count(), 1);
        assert!(!r.fire(Failpoint::SyncError));
        assert!(r.fire(Failpoint::TornWrite));
        assert!(!r.fire(Failpoint::TornWrite));
        assert_eq!(r.armed_count(), 0);
    }

    #[test]
    fn names_round_trip() {
        for fp in ALL_FAILPOINTS {
            assert_eq!(Failpoint::parse(fp.name()), Some(fp));
        }
        assert_eq!(Failpoint::parse("nonsense"), None);
    }
}
