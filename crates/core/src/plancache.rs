//! The shared compiled-plan cache.
//!
//! Planning a query — parse, rewrite through the group's security view,
//! compile to an MFA, optimize — is pure: its output depends only on the
//! query text, the view spec (or admin scope), and the optimizer flag.
//! SMOQE's serving scenario (many users of a few groups issuing similar
//! queries) therefore repeats identical planning work constantly. This
//! cache memoizes `Arc<CompiledMfa>` plans engine-wide (the dense-table
//! executable form — compiling the tables once here is what amortizes the
//! ε-closure/subset-construction/required-label analyses across every
//! session, batch lane and thread that runs the plan), keyed by document +
//! view
//! **generation counters** so that replacing a document, its DTD or a view
//! invalidates exactly the affected entries — a stale generation simply
//! never matches again, no lock coordination with the catalog required.
//!
//! At capacity the cache first drops stale entries (whose generation can
//! never be hit again), then evicts **live plans oldest-first** from an
//! insertion-order queue — live plans of unrelated documents are never
//! flushed wholesale. Hit/miss/invalidation/eviction counters are exposed
//! through [`CacheMetrics`] (the plan-level analogue of the evaluator's
//! `EvalStats`).

use crate::engine::User;
use crate::sync::RwLock;
use smoqe_automata::compile::CompiledMfa;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Which principal a plan was compiled for.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub(crate) enum PlanScope {
    /// Compiled directly against the document.
    Admin,
    /// Rewritten through the view `group` was holding at `view_generation`.
    Group { group: String, view_generation: u64 },
}

/// The full identity of a compiled plan.
///
/// `entry_id` is the catalog entry's process-unique identity: generation
/// counters restart at zero for every entry, so a document name that is
/// dropped and re-opened would otherwise reproduce old `(name, generation)`
/// pairs and let a session still bound to the *old* entry repopulate keys
/// the new entry then hits.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub(crate) struct PlanKey {
    pub(crate) document: String,
    pub(crate) entry_id: u64,
    pub(crate) doc_generation: u64,
    pub(crate) scope: PlanScope,
    pub(crate) query: String,
    pub(crate) optimized: bool,
}

impl PlanKey {
    pub(crate) fn scope_of(user: &User, view_generation: u64) -> PlanScope {
        match user {
            User::Admin => PlanScope::Admin,
            User::Group(g) => PlanScope::Group {
                group: g.clone(),
                view_generation,
            },
        }
    }
}

/// Point-in-time counters of the plan cache.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheMetrics {
    /// Lookups answered from the cache (full pipeline skipped).
    pub hits: u64,
    /// Lookups that had to run parse → rewrite → compile → optimize.
    pub misses: u64,
    /// Entries dropped because their document, DTD or view was replaced —
    /// their generation went stale and they could never be hit again.
    pub invalidations: u64,
    /// *Live* entries dropped oldest-first to make room at capacity (they
    /// could still have been hit; capacity pressure, not staleness).
    pub evictions: u64,
    /// Plans currently resident.
    pub entries: usize,
}

impl CacheMetrics {
    /// Fraction of lookups served from cache (0 when none yet).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// The plan map plus the insertion-order queue driving eviction. The two
/// are kept in sync: every key in `plans` appears exactly once in `order`
/// (evictions pop both; invalidations retain both).
#[derive(Default)]
struct CacheInner {
    plans: HashMap<PlanKey, Arc<CompiledMfa>>,
    /// Keys in insertion order, oldest at the front.
    order: VecDeque<PlanKey>,
}

impl CacheInner {
    /// Drops every entry failing `keep`, returning how many were dropped.
    fn retain(&mut self, mut keep: impl FnMut(&PlanKey) -> bool) -> u64 {
        let before = self.plans.len();
        self.plans.retain(|k, _| keep(k));
        let plans = &self.plans;
        self.order.retain(|k| plans.contains_key(k));
        (before - self.plans.len()) as u64
    }
}

/// The engine-wide plan cache. All methods are `&self`; internal locking
/// only guards the map itself, never a compilation.
pub(crate) struct PlanCache {
    inner: RwLock<CacheInner>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    invalidations: AtomicU64,
    evictions: AtomicU64,
}

impl PlanCache {
    /// A cache holding at most `capacity` plans (0 disables caching).
    pub(crate) fn new(capacity: usize) -> Self {
        PlanCache {
            inner: RwLock::new(CacheInner::default()),
            capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Looks up `key`, counting a hit or a miss.
    pub(crate) fn get(&self, key: &PlanKey) -> Option<Arc<CompiledMfa>> {
        if self.capacity == 0 {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        match self.inner.read().plans.get(key) {
            Some(plan) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(plan.clone())
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts a freshly compiled plan. At capacity, entries of this
    /// document whose generation went stale are dropped first (they can
    /// never be hit again — counted as invalidations); if the cache is
    /// still full, **live plans are evicted oldest-first** (counted
    /// separately as evictions) until the new plan fits. Live plans of
    /// unrelated documents are never flushed wholesale.
    pub(crate) fn insert(&self, key: PlanKey, plan: Arc<CompiledMfa>, live_generation: u64) {
        if self.capacity == 0 {
            return;
        }
        let mut inner = self.inner.write();
        if inner.plans.len() >= self.capacity && !inner.plans.contains_key(&key) {
            let stale =
                inner.retain(|k| k.entry_id != key.entry_id || k.doc_generation == live_generation);
            self.invalidations.fetch_add(stale, Ordering::Relaxed);
            while inner.plans.len() >= self.capacity {
                // `order` and `plans` are kept in exact sync (every purge
                // goes through `retain`), so the oldest queued key is
                // always resident; the guard is belt-and-braces against a
                // future desync, not a live code path.
                let Some(oldest) = inner.order.pop_front() else {
                    break;
                };
                let removed = inner.plans.remove(&oldest);
                debug_assert!(removed.is_some(), "eviction queue out of sync");
                if removed.is_some() {
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        if inner.plans.insert(key.clone(), plan).is_none() {
            inner.order.push_back(key);
        }
    }

    /// Drops every plan cached for `document`, counting invalidations.
    /// Generation keys already guarantee stale plans never match; purging
    /// just releases their memory eagerly.
    pub(crate) fn purge_document(&self, document: &str) {
        let dropped = self.inner.write().retain(|k| k.document != document);
        self.invalidations.fetch_add(dropped, Ordering::Relaxed);
    }

    /// Drops every plan cached for `group` on `document`.
    pub(crate) fn purge_view(&self, document: &str, group: &str) {
        let dropped = self.inner.write().retain(|k| {
            k.document != document
                || !matches!(&k.scope, PlanScope::Group { group: g, .. } if g == group)
        });
        self.invalidations.fetch_add(dropped, Ordering::Relaxed);
    }

    /// Current counters.
    pub(crate) fn metrics(&self) -> CacheMetrics {
        CacheMetrics {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: self.inner.read().plans.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smoqe_rxpath::parse_path;
    use smoqe_xml::Vocabulary;

    fn plan_for(query: &str) -> Arc<CompiledMfa> {
        let vocab = Vocabulary::new();
        let path = parse_path(query, &vocab).unwrap();
        Arc::new(CompiledMfa::compile(&smoqe_automata::compile(
            &path, &vocab,
        )))
    }

    fn key(doc: &str, doc_gen: u64, query: &str) -> PlanKey {
        PlanKey {
            document: doc.to_string(),
            entry_id: 0,
            doc_generation: doc_gen,
            scope: PlanScope::Admin,
            query: query.to_string(),
            optimized: true,
        }
    }

    #[test]
    fn hit_and_miss_counting() {
        let cache = PlanCache::new(16);
        let k = key("d", 0, "a/b");
        assert!(cache.get(&k).is_none());
        cache.insert(k.clone(), plan_for("a/b"), 0);
        assert!(cache.get(&k).is_some());
        let m = cache.metrics();
        assert_eq!((m.hits, m.misses, m.entries), (1, 1, 1));
        assert!((m.hit_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn generation_change_is_a_miss() {
        let cache = PlanCache::new(16);
        cache.insert(key("d", 0, "a"), plan_for("a"), 0);
        assert!(cache.get(&key("d", 1, "a")).is_none());
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let cache = PlanCache::new(0);
        let k = key("d", 0, "a");
        cache.insert(k.clone(), plan_for("a"), 0);
        assert!(cache.get(&k).is_none());
        assert_eq!(cache.metrics().entries, 0);
    }

    fn key_on(doc: &str, entry_id: u64, query: &str) -> PlanKey {
        PlanKey {
            entry_id,
            ..key(doc, 0, query)
        }
    }

    #[test]
    fn capacity_flush_prefers_stale_entries() {
        let cache = PlanCache::new(2);
        cache.insert(key("d", 0, "a"), plan_for("a"), 0);
        cache.insert(key("d", 0, "b"), plan_for("b"), 0);
        // Generation moved to 1: the two gen-0 entries are stale and give
        // way without touching live ones.
        cache.insert(key("d", 1, "c"), plan_for("c"), 1);
        let m = cache.metrics();
        assert_eq!(m.entries, 1);
        assert_eq!(m.invalidations, 2);
        assert_eq!(m.evictions, 0, "stale drops are not evictions");
        assert!(cache.get(&key("d", 1, "c")).is_some());
    }

    #[test]
    fn capacity_evicts_oldest_live_plan_first() {
        let cache = PlanCache::new(2);
        cache.insert(key("d", 0, "a"), plan_for("a"), 0);
        cache.insert(key("d", 0, "b"), plan_for("b"), 0);
        // Everything is live: only the oldest entry gives way.
        cache.insert(key("d", 0, "c"), plan_for("c"), 0);
        let m = cache.metrics();
        assert_eq!(m.entries, 2);
        assert_eq!(m.evictions, 1);
        assert_eq!(m.invalidations, 0, "live evictions are not invalidations");
        assert!(cache.get(&key("d", 0, "a")).is_none(), "oldest evicted");
        assert!(cache.get(&key("d", 0, "b")).is_some());
        assert!(cache.get(&key("d", 0, "c")).is_some());
    }

    #[test]
    fn eviction_never_flushes_unrelated_live_plans() {
        // Regression: the old capacity fallback was `plans.clear()`, which
        // flushed live plans of *other* documents and miscounted them as
        // invalidations.
        let cache = PlanCache::new(3);
        cache.insert(key_on("d1", 1, "a"), plan_for("a"), 0);
        cache.insert(key_on("d2", 2, "b"), plan_for("b"), 0);
        cache.insert(key_on("d1", 1, "c"), plan_for("c"), 0);
        cache.insert(key_on("d1", 1, "d"), plan_for("d"), 0);
        let m = cache.metrics();
        assert_eq!(m.entries, 3);
        assert_eq!((m.evictions, m.invalidations), (1, 0));
        assert!(cache.get(&key_on("d1", 1, "a")).is_none(), "oldest evicted");
        assert!(
            cache.get(&key_on("d2", 2, "b")).is_some(),
            "the other document's live plan must survive capacity pressure"
        );
        assert!(cache.get(&key_on("d1", 1, "c")).is_some());
        assert!(cache.get(&key_on("d1", 1, "d")).is_some());
    }

    #[test]
    fn purged_keys_do_not_confuse_the_eviction_queue() {
        let cache = PlanCache::new(2);
        cache.insert(key_on("d1", 1, "a"), plan_for("a"), 0);
        cache.insert(key_on("d2", 2, "b"), plan_for("b"), 0);
        cache.purge_document("d1");
        assert_eq!(cache.metrics().entries, 1);
        // Two more inserts: "b" (now oldest) is evicted, not a ghost of
        // the purged "a".
        cache.insert(key_on("d2", 2, "c"), plan_for("c"), 0);
        cache.insert(key_on("d2", 2, "d"), plan_for("d"), 0);
        let m = cache.metrics();
        assert_eq!(m.entries, 2);
        assert_eq!(m.evictions, 1);
        assert!(cache.get(&key_on("d2", 2, "b")).is_none());
        assert!(cache.get(&key_on("d2", 2, "c")).is_some());
        assert!(cache.get(&key_on("d2", 2, "d")).is_some());
    }

    #[test]
    fn reinserting_a_resident_key_does_not_evict() {
        let cache = PlanCache::new(2);
        cache.insert(key("d", 0, "a"), plan_for("a"), 0);
        cache.insert(key("d", 0, "b"), plan_for("b"), 0);
        // Same key again (e.g. two sessions raced on the same miss): no
        // capacity pressure, nothing evicted.
        cache.insert(key("d", 0, "b"), plan_for("b"), 0);
        let m = cache.metrics();
        assert_eq!(m.entries, 2);
        assert_eq!(m.evictions, 0);
        assert!(cache.get(&key("d", 0, "a")).is_some());
    }

    #[test]
    fn purge_document_and_view_are_scoped() {
        let cache = PlanCache::new(16);
        cache.insert(key("d1", 0, "a"), plan_for("a"), 0);
        cache.insert(key("d2", 0, "a"), plan_for("a"), 0);
        let group_key = PlanKey {
            scope: PlanScope::Group {
                group: "g".into(),
                view_generation: 1,
            },
            ..key("d2", 0, "b")
        };
        cache.insert(group_key.clone(), plan_for("b"), 0);
        cache.purge_view("d2", "g");
        assert!(cache.get(&group_key).is_none());
        assert!(cache.get(&key("d2", 0, "a")).is_some());
        cache.purge_document("d1");
        assert!(cache.get(&key("d1", 0, "a")).is_none());
        assert!(cache.get(&key("d2", 0, "a")).is_some());
        assert_eq!(cache.metrics().invalidations, 2);
    }
}
