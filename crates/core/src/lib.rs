//! # SMOQE — the Secure MOdular Query Engine
//!
//! A from-scratch Rust reproduction of *"SMOQE: A System for Providing
//! Secure Access to XML"* (Fan, Geerts, Jia, Kementsietsidis, VLDB 2006),
//! grown into a multi-tenant serving engine.
//!
//! SMOQE answers **Regular XPath** queries over **virtual XML views** used
//! for access control: each user group gets a view containing exactly what
//! its policy allows; user queries are **rewritten** into automata (MFAs)
//! over the underlying document and evaluated in **one pass** (HyPE),
//! optionally pruned by a type-aware index (TAX) — the view is never
//! materialized.
//!
//! One [`Engine`] serves many *named* documents (the [`catalog`]) and many
//! concurrent users: [`Session`]s are owned, `Send + Sync` handles, and
//! compiled plans are memoized in a shared [plan cache](plancache) keyed by
//! document/view generations.
//!
//! The engine also accepts **secure updates** (`insert`/`delete`/`replace`
//! over Regular XPath targets, [`smoqe_update`]): group sessions may only
//! write what their view lets them read (denials are indistinguishable
//! from non-existent targets), and accepted updates swap in a new snapshot
//! without blocking readers, patching the TAX index incrementally.
//!
//! ```
//! use smoqe::{Engine, User, workloads::hospital};
//!
//! let engine = Engine::with_defaults();
//! let doc = engine.open_document("wards");
//! doc.load_dtd(hospital::DTD).unwrap();
//! doc.load_document(hospital::SAMPLE_DOCUMENT).unwrap();
//! doc.register_policy("researchers", hospital::POLICY).unwrap();
//!
//! let session = doc.session(User::Group("researchers".into()));
//! // Names are hidden by the policy ...
//! assert!(session.query("//pname").unwrap().is_empty());
//! // ... treatments of autism patients are visible.
//! assert!(!session.query("hospital/patient/treatment").unwrap().is_empty());
//! // Repeating a query skips the whole planning pipeline.
//! assert!(session.query("//pname").unwrap().plan_cached);
//! ```
//!
//! The implementation lives in focused crates, re-exported here:
//! [`smoqe_xml`] (documents, DTDs, StAX parsing, generation),
//! [`smoqe_rxpath`] (the query language), [`smoqe_automata`] (MFAs),
//! [`smoqe_view`] (policies, derivation, materialization),
//! [`smoqe_rewrite`] (view rewriting), [`smoqe_hype`] (evaluation),
//! [`smoqe_tax`] (indexing) and [`smoqe_viz`] (the iSMOQE-substitute
//! renderers). See README.md at the repository root for the workspace
//! layout and architecture notes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod catalog;
pub mod config;
pub mod durable;
pub mod engine;
pub mod error;
pub mod plancache;
pub mod tenants;
pub mod workloads;

mod sync;

pub use catalog::{DocHandle, DocumentEntry};
pub use config::{DocumentMode, EngineConfig, EvalMode};
pub use durable::failpoints::{Failpoint, FailpointRegistry, ALL_FAILPOINTS};
pub use durable::{DurError, Durability};
pub use engine::{Answer, BatchAnswer, Engine, Session, UpdateReport, User, DEFAULT_DOCUMENT};
pub use error::EngineError;
pub use plancache::CacheMetrics;
pub use smoqe_hype::{ExecMode, WorkBudget};
pub use tenants::{TenantMetrics, ADMIN_TENANT};

// Re-export the component crates under stable names.
pub use smoqe_automata as automata;
pub use smoqe_hype as hype;
pub use smoqe_rewrite as rewrite;
pub use smoqe_rxpath as rxpath;
pub use smoqe_tax as tax;
pub use smoqe_update as update;
pub use smoqe_view as view;
pub use smoqe_viz as viz;
pub use smoqe_xml as xml;
