//! The multi-tenant document catalog.
//!
//! The paper's Fig. 1 shows SMOQE as a *server*: one engine, many
//! documents, many user groups whose queries are transparently rewritten
//! against their security views. The catalog is the engine-side realization
//! of that picture: it maps document *names* to [`DocumentEntry`] values,
//! each owning its DTD, its raw/stream source, its TAX index and the views
//! registered for its user groups.
//!
//! Every entry carries **generation counters**: the document generation is
//! bumped whenever the DTD or the document itself is replaced, and each
//! registered view carries the generation at which it was (re)registered.
//! The [plan cache](crate::plancache) keys compiled plans by these
//! generations, so replacing a document, its DTD, or a view invalidates
//! exactly the affected plans without any cross-lock coordination.

use crate::engine::{Answer, Engine, Session, UpdateReport, User};
use crate::error::EngineError;
use crate::sync::{Mutex, RwLock};
use smoqe_automata::Mfa;
use smoqe_tax::TaxIndex;
use smoqe_view::ViewSpec;
use smoqe_xml::{Document, Dtd};
use std::collections::HashMap;
use std::path::{Path as FsPath, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// A loaded document with its streamable backing (if any) and the TAX
/// index built over exactly this document. Shared out of the entry as one
/// [`Arc`] snapshot so evaluation never holds entry locks and can never
/// pair a document with an index built over a different one.
pub(crate) struct LoadedSource {
    pub(crate) doc: Arc<Document>,
    /// Raw XML text for streaming mode — the *same* shared buffer the
    /// document's span nodes reference (no second copy of the input).
    pub(crate) raw: Option<Arc<str>>,
    /// File path (kept when loaded from disk) for streaming mode.
    pub(crate) path: Option<PathBuf>,
    /// TAX index over `doc`, if built or loaded.
    pub(crate) tax: Option<Arc<TaxIndex>>,
}

impl LoadedSource {
    /// The same source with `tax` attached.
    pub(crate) fn with_tax(&self, tax: Arc<TaxIndex>) -> Self {
        LoadedSource {
            doc: self.doc.clone(),
            raw: self.raw.clone(),
            path: self.path.clone(),
            tax: Some(tax),
        }
    }
}

/// How a view came to be registered — kept so checkpoints can persist
/// the *registration text* and recovery can re-derive the view through
/// the exact path (policy derivation or spec parsing) that produced it.
#[derive(Clone)]
pub(crate) enum ViewSource {
    /// `register_policy`: the access-control policy text.
    Policy(Arc<str>),
    /// `register_view_spec`: the view specification text.
    Spec(Arc<str>),
}

/// A registered view plus the generation at which it was registered.
pub(crate) struct ViewSlot {
    pub(crate) spec: Arc<ViewSpec>,
    pub(crate) generation: u64,
    /// The registration text (policy or spec) behind `spec`.
    pub(crate) source: ViewSource,
}

/// Source of [`DocumentEntry::id`] values: unique across every entry an
/// engine process ever creates, so a dropped-and-reopened document name
/// can never alias a prior entry's plan-cache keys.
static NEXT_ENTRY_ID: AtomicU64 = AtomicU64::new(0);

/// One named document and everything scoped to it: DTD, source (with its
/// TAX index), per-group views, and the generation counters driving
/// plan-cache invalidation.
pub struct DocumentEntry {
    name: String,
    id: u64,
    pub(crate) dtd: RwLock<Option<Arc<Dtd>>>,
    /// The DTD's source text, kept alongside the parsed form so
    /// checkpoints persist exactly what was registered.
    pub(crate) dtd_text: RwLock<Option<Arc<str>>>,
    pub(crate) source: RwLock<Option<Arc<LoadedSource>>>,
    pub(crate) views: RwLock<HashMap<String, ViewSlot>>,
    /// Bumped on every DTD or document replacement.
    generation: AtomicU64,
    /// Source of view generations (also bumped by document replacement so
    /// view generations are unique per entry lifetime).
    counter: AtomicU64,
    /// Serializes the entry's *writers* (updates, loads, DTD swaps) so a
    /// read-modify-write update can never race another writer. Readers
    /// only ever take `Arc` snapshots and never touch this lock.
    pub(crate) write_serial: Mutex<()>,
    /// Set when the entry is removed from the catalog. Sessions still
    /// bound to it keep working, but their plans no longer enter the
    /// shared plan cache — a dropped document must not keep (or regrow)
    /// cache residency.
    dropped: AtomicBool,
}

impl DocumentEntry {
    pub(crate) fn new(name: &str) -> Self {
        DocumentEntry {
            name: name.to_string(),
            id: NEXT_ENTRY_ID.fetch_add(1, Ordering::Relaxed),
            dtd: RwLock::new(None),
            dtd_text: RwLock::new(None),
            source: RwLock::new(None),
            views: RwLock::new(HashMap::new()),
            generation: AtomicU64::new(0),
            counter: AtomicU64::new(0),
            write_serial: Mutex::default(),
            dropped: AtomicBool::new(false),
        }
    }

    /// The catalog name of this document.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The process-unique identity of this entry (survives nothing — a
    /// re-opened name gets a fresh id).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The current document generation (bumped on DTD/document
    /// replacement).
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    pub(crate) fn bump_generation(&self) {
        let next = self.counter.fetch_add(1, Ordering::AcqRel) + 1;
        self.generation.store(next, Ordering::Release);
    }

    pub(crate) fn next_view_generation(&self) -> u64 {
        self.counter.fetch_add(1, Ordering::AcqRel) + 1
    }

    /// The raw value of the generation-source counter (checkpointing).
    pub(crate) fn counter_value(&self) -> u64 {
        self.counter.load(Ordering::Acquire)
    }

    /// Overwrites both counters with checkpointed values (recovery only:
    /// rebuilding the entry bumped them from zero, but sessions of the
    /// original process saw the stored values).
    pub(crate) fn restore_counters(&self, generation: u64, counter: u64) {
        self.counter
            .store(counter.max(generation), Ordering::Release);
        self.generation.store(generation, Ordering::Release);
    }

    /// The registered view for `group`, with its generation.
    pub(crate) fn view_slot(&self, group: &str) -> Result<(Arc<ViewSpec>, u64), EngineError> {
        self.views
            .read()
            .get(group)
            .map(|slot| (slot.spec.clone(), slot.generation))
            .ok_or_else(|| EngineError::UnknownGroup(group.to_string()))
    }

    /// A snapshot of the loaded source, independent of the entry's locks.
    pub(crate) fn snapshot(&self) -> Result<Arc<LoadedSource>, EngineError> {
        self.source.read().clone().ok_or(EngineError::NoDocument)
    }

    /// Whether the entry has been removed from the catalog.
    pub(crate) fn is_dropped(&self) -> bool {
        self.dropped.load(Ordering::Acquire)
    }

    pub(crate) fn mark_dropped(&self) {
        self.dropped.store(true, Ordering::Release);
    }
}

/// The name → entry map. Engine-internal; reached through
/// [`Engine::open_document`] and the `DocHandle` it returns.
#[derive(Default)]
pub(crate) struct Catalog {
    entries: RwLock<HashMap<String, Arc<DocumentEntry>>>,
}

impl Catalog {
    /// Returns the entry for `name`, creating an empty one if absent.
    pub(crate) fn entry_or_create(&self, name: &str) -> Arc<DocumentEntry> {
        self.entry_or_create_tracked(name).0
    }

    /// Like [`Catalog::entry_or_create`], also reporting whether the
    /// entry was created by this call (the WAL logs creations).
    pub(crate) fn entry_or_create_tracked(&self, name: &str) -> (Arc<DocumentEntry>, bool) {
        if let Some(entry) = self.entries.read().get(name) {
            return (entry.clone(), false);
        }
        let mut entries = self.entries.write();
        let mut created = false;
        let entry = entries
            .entry(name.to_string())
            .or_insert_with(|| {
                created = true;
                Arc::new(DocumentEntry::new(name))
            })
            .clone();
        (entry, created)
    }

    /// The entry for `name`, or `UnknownDocument`.
    pub(crate) fn entry(&self, name: &str) -> Result<Arc<DocumentEntry>, EngineError> {
        self.entries
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| EngineError::UnknownDocument(name.to_string()))
    }

    /// Removes `name`, returning whether it existed. Live sessions bound
    /// to the entry keep their handle; only the catalog forgets it. The
    /// entry is marked dropped so those sessions stop populating the
    /// shared plan cache.
    pub(crate) fn remove(&self, name: &str) -> bool {
        match self.entries.write().remove(name) {
            Some(entry) => {
                entry.mark_dropped();
                true
            }
            None => false,
        }
    }

    /// Every entry, sorted by name (the checkpoint capture order — and
    /// therefore the multi-entry lock acquisition order).
    pub(crate) fn entries_sorted(&self) -> Vec<Arc<DocumentEntry>> {
        let mut entries: Vec<Arc<DocumentEntry>> = self.entries.read().values().cloned().collect();
        entries.sort_by(|a, b| a.name().cmp(b.name()));
        entries
    }

    /// Sorted catalog names.
    pub(crate) fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.entries.read().keys().cloned().collect();
        names.sort();
        names
    }
}

/// An owned, thread-safe handle to one named document of an engine.
///
/// Handles are cheap to clone and `Send + Sync`; they are the write path
/// of the catalog (loading DTDs/documents, building indexes, registering
/// views) and mint [`Session`]s for the read path.
#[derive(Clone)]
pub struct DocHandle {
    pub(crate) engine: Arc<Engine>,
    pub(crate) entry: Arc<DocumentEntry>,
}

impl DocHandle {
    /// The catalog name of this document.
    pub fn name(&self) -> &str {
        self.entry.name()
    }

    /// The engine this handle belongs to.
    pub fn engine(&self) -> &Arc<Engine> {
        &self.engine
    }

    /// The document's current generation (bumped by every successful
    /// mutation; plan-cache keys and recovery both depend on it).
    pub fn generation(&self) -> u64 {
        self.entry.generation()
    }

    /// Parses and installs the document DTD. Invalidates cached plans for
    /// this document.
    pub fn load_dtd(&self, dtd_text: &str) -> Result<(), EngineError> {
        self.engine.load_dtd_on(&self.entry, dtd_text)
    }

    /// The installed DTD, if any.
    pub fn dtd(&self) -> Option<Arc<Dtd>> {
        self.entry.dtd.read().clone()
    }

    /// Loads a document from XML text, validating against the DTD when one
    /// is installed. Invalidates cached plans for this document.
    pub fn load_document(&self, xml: &str) -> Result<(), EngineError> {
        self.engine.load_document_on(&self.entry, xml)
    }

    /// Loads (and validates) a document from a file.
    pub fn load_document_file(&self, path: impl AsRef<FsPath>) -> Result<(), EngineError> {
        self.engine
            .load_document_file_on(&self.entry, path.as_ref())
    }

    /// Installs an already-built document (e.g. from the generator).
    pub fn load_document_tree(&self, doc: Document) -> Result<(), EngineError> {
        self.engine.load_document_tree_on(&self.entry, doc)
    }

    /// The loaded document.
    pub fn document(&self) -> Result<Arc<Document>, EngineError> {
        Ok(self.entry.snapshot()?.doc.clone())
    }

    /// Builds the TAX index over the loaded document.
    pub fn build_tax_index(&self) -> Result<Arc<TaxIndex>, EngineError> {
        self.engine.build_tax_index_on(&self.entry)
    }

    /// The TAX index, if built or loaded.
    pub fn tax_index(&self) -> Option<Arc<TaxIndex>> {
        self.entry
            .source
            .read()
            .as_ref()
            .and_then(|s| s.tax.clone())
    }

    /// Persists the TAX index to disk.
    pub fn save_tax_index(&self, path: impl AsRef<FsPath>) -> Result<(), EngineError> {
        self.engine.save_tax_index_on(&self.entry, path.as_ref())
    }

    /// Loads a TAX index from disk.
    pub fn load_tax_index(&self, path: impl AsRef<FsPath>) -> Result<(), EngineError> {
        self.engine.load_tax_index_on(&self.entry, path.as_ref())
    }

    /// Registers a user group by access-control policy; the view is
    /// derived automatically. Re-registering invalidates the group's
    /// cached plans.
    pub fn register_policy(&self, group: &str, policy_text: &str) -> Result<(), EngineError> {
        self.engine
            .register_policy_on(&self.entry, group, policy_text)
    }

    /// Registers a user group with a hand-authored view specification.
    pub fn register_view_spec(&self, group: &str, spec_text: &str) -> Result<(), EngineError> {
        self.engine
            .register_view_spec_on(&self.entry, group, spec_text)
    }

    /// The view spec registered for `group`.
    pub fn view(&self, group: &str) -> Result<Arc<ViewSpec>, EngineError> {
        Ok(self.entry.view_slot(group)?.0)
    }

    /// Materializes the view of `group` (tests and baselines only).
    pub fn materialize_view(
        &self,
        group: &str,
    ) -> Result<smoqe_view::MaterializedView, EngineError> {
        let spec = self.view(group)?;
        let doc = self.document()?;
        Ok(smoqe_view::materialize(&spec, &doc)?)
    }

    /// Compiles (and caches) the plan `user` would run for `query` on this
    /// document.
    pub fn plan(&self, user: &User, query: &str) -> Result<Arc<Mfa>, EngineError> {
        self.engine.plan_on(&self.entry, user, query)
    }

    /// Answers `query` as `user` without constructing a session.
    pub fn query(&self, user: &User, query: &str) -> Result<Answer, EngineError> {
        self.session(user.clone()).query(query)
    }

    /// Answers a whole batch of queries as `user` in one sequential scan
    /// of this document (see [`Session::query_batch`]).
    pub fn query_batch(
        &self,
        user: &User,
        queries: &[&str],
    ) -> Result<crate::engine::BatchAnswer, EngineError> {
        self.session(user.clone()).query_batch(queries)
    }

    /// Applies one update statement **as an administrator** (no policy
    /// filter): targets are resolved directly against the document. The
    /// TAX index (if built) is incrementally patched, this entry's
    /// generation is bumped, and exactly this document's cached plans are
    /// invalidated. Concurrent readers keep their snapshot.
    pub fn update(&self, update: &str) -> Result<UpdateReport, EngineError> {
        let mut reports = self
            .engine
            .apply_updates_on(&self.entry, &User::Admin, &[update])?;
        Ok(reports.pop().expect("one statement yields one report"))
    }

    /// Applies a sequence of update statements **transactionally**: each
    /// statement's targets are resolved against the document as left by
    /// the previous one, nothing is installed until every statement has
    /// applied and the result validates against the DTD, and any failure
    /// leaves the document (and its index, generation and cached plans)
    /// exactly as before — all-or-nothing.
    pub fn update_batch(&self, updates: &[&str]) -> Result<Vec<UpdateReport>, EngineError> {
        self.engine
            .apply_updates_on(&self.entry, &User::Admin, updates)
    }

    /// Opens an owned session for `user` on this document.
    pub fn session(&self, user: User) -> Session {
        Session::new(self.engine.clone(), self.entry.clone(), user)
    }
}
