//! Standard workloads: the paper's hospital scenario plus a second
//! recursive schema, shared by examples, integration tests and the
//! benchmark harness.
//!
//! The hospital data itself was never published (2006 demo); documents are
//! produced by the seeded generator with realistic value pools — the
//! substitution documented in DESIGN.md §4.

use crate::catalog::DocHandle;
use crate::error::EngineError;
use smoqe_xml::{generate, Document, Dtd, GeneratorConfig, Vocabulary};

/// The hospital scenario of Fig. 3.
pub mod hospital {
    use super::*;

    /// The group name [`install_sample`] registers.
    pub const GROUP: &str = "researchers";

    /// Loads the DTD and the handwritten sample into `doc` and registers
    /// the [`POLICY`] for the [`GROUP`] user group — the one-call setup
    /// for catalog-based tests, examples and benches.
    pub fn install_sample(doc: &DocHandle) -> Result<(), EngineError> {
        doc.load_dtd(DTD)?;
        doc.load_document(SAMPLE_DOCUMENT)?;
        doc.register_policy(GROUP, POLICY)
    }

    /// The document DTD (Fig. 3(a)); also exported as
    /// [`smoqe_xml::HOSPITAL_DTD`].
    pub const DTD: &str = smoqe_xml::HOSPITAL_DTD;

    /// The access-control policy S0 (Fig. 3(b)); also exported as
    /// [`smoqe_view::HOSPITAL_POLICY`].
    pub const POLICY: &str = smoqe_view::HOSPITAL_POLICY;

    /// A small document in the spirit of the running example: three
    /// top-level patients (two with autism medication), one recursive
    /// parent record.
    pub const SAMPLE_DOCUMENT: &str = "<hospital>\
        <patient><pname>Ann</pname>\
          <visit><treatment><medication>autism</medication></treatment><date>2006-01-11</date></visit>\
          <visit><treatment><test>blood</test></treatment><date>2006-02-07</date></visit>\
          <parent><patient><pname>Pat</pname>\
            <visit><treatment><medication>flu</medication></treatment><date>1980-03-02</date></visit>\
          </patient></parent>\
        </patient>\
        <patient><pname>Bob</pname>\
          <visit><treatment><medication>headache</medication></treatment><date>2006-03-14</date></visit>\
        </patient>\
        <patient><pname>Cal</pname>\
          <visit><treatment><medication>autism</medication></treatment><date>2006-04-21</date></visit>\
          <visit><treatment><medication>headache</medication></treatment><date>2006-05-02</date></visit>\
        </patient>\
      </hospital>";

    /// The paper's example query Q0 (§3): patients with a test reachable
    /// through the parent chain *and* a headache medication; select their
    /// names.
    pub const Q0: &str = "hospital/patient[(parent/patient)*/visit/treatment/test and \
                          visit/treatment[medication/text() = 'headache']]/pname";

    /// Benchmark queries over the *document* (admin side), by increasing
    /// sophistication: `(name, query)`.
    pub const DOC_QUERIES: &[(&str, &str)] = &[
        ("chain", "hospital/patient/pname"),
        ("descendant", "//medication"),
        (
            "predicate",
            "hospital/patient[visit/treatment/medication = 'autism']/pname",
        ),
        ("closure", "hospital/patient/(parent/patient)*/pname"),
        ("negation", "//treatment[not(test)]/medication"),
        ("q0", Q0),
    ];

    /// Benchmark queries over the *view* (user side): `(name, query)`.
    pub const VIEW_QUERIES: &[(&str, &str)] = &[
        ("patients", "hospital/patient"),
        ("medications", "hospital/patient/treatment/medication"),
        ("descendant", "//medication"),
        ("closure", "hospital/patient/(parent/patient)*/treatment"),
        (
            "predicate",
            "hospital/patient[treatment/medication = 'autism']",
        ),
        ("negation", "//patient[not(parent)]/treatment/medication"),
    ];

    /// Parses the hospital DTD into `vocab`.
    pub fn dtd(vocab: &Vocabulary) -> Dtd {
        Dtd::parse(DTD, vocab).expect("hospital DTD parses")
    }

    /// A generator configuration with realistic value pools. Roughly
    /// `target_nodes` nodes; deterministic per seed.
    pub fn generator_config(vocab: &Vocabulary, seed: u64, target_nodes: usize) -> GeneratorConfig {
        let mut config = GeneratorConfig {
            star_continue: 0.7,
            max_repeat: 6,
            max_depth: 14,
            ..GeneratorConfig::sized(seed, target_nodes)
        };
        config = config
            .with_text_pool(
                vocab.intern("pname"),
                ["Ann", "Bob", "Cal", "Dan", "Eve", "Fay", "Gus", "Hal"]
                    .map(String::from)
                    .to_vec(),
            )
            .with_text_pool(
                vocab.intern("medication"),
                ["autism", "headache", "flu", "fever", "allergy"]
                    .map(String::from)
                    .to_vec(),
            )
            .with_text_pool(
                vocab.intern("test"),
                ["blood", "x-ray", "mri", "biopsy"]
                    .map(String::from)
                    .to_vec(),
            )
            .with_text_pool(
                vocab.intern("date"),
                ["2006-01-11", "2006-02-07", "2006-03-14", "2006-04-21"]
                    .map(String::from)
                    .to_vec(),
            );
        config
    }

    /// Generates a conforming hospital document of roughly `target_nodes`
    /// nodes.
    pub fn generate_document(vocab: &Vocabulary, seed: u64, target_nodes: usize) -> Document {
        let dtd = dtd(vocab);
        let config = generator_config(vocab, seed, target_nodes);
        generate(&dtd, &config).expect("hospital DTD generates")
    }
}

/// A second recursive workload: a company org chart with nested
/// departments, used to check that nothing is hospital-specific.
pub mod org {
    use super::*;

    /// The group name [`install_sample`] registers.
    pub const GROUP: &str = "staff";

    /// Loads the DTD and the handwritten sample into `doc` and registers
    /// the [`POLICY`] for the [`GROUP`] user group.
    pub fn install_sample(doc: &DocHandle) -> Result<(), EngineError> {
        doc.load_dtd(DTD)?;
        doc.load_document(SAMPLE_DOCUMENT)?;
        doc.register_policy(GROUP, POLICY)
    }

    /// Recursive org-chart DTD (departments nest arbitrarily).
    pub const DTD: &str = r#"
<!ELEMENT company (dept*)>
<!ELEMENT dept (dname, emp*, dept*)>
<!ELEMENT dname (#PCDATA)>
<!ELEMENT emp (ename, salary, review?)>
<!ELEMENT ename (#PCDATA)>
<!ELEMENT salary (#PCDATA)>
<!ELEMENT review (#PCDATA)>
"#;

    /// Policy: salaries are confidential; reviews only when marked
    /// public; names and structure visible.
    pub const POLICY: &str = r#"
ann(emp, salary) = N
ann(emp, review) = [text() = 'public']
"#;

    /// A small handwritten org chart.
    pub const SAMPLE_DOCUMENT: &str = "<company>\
        <dept><dname>rnd</dname>\
          <emp><ename>ada</ename><salary>90</salary><review>public</review></emp>\
          <emp><ename>bert</ename><salary>80</salary><review>private</review></emp>\
          <dept><dname>db</dname>\
            <emp><ename>cleo</ename><salary>95</salary></emp>\
          </dept>\
        </dept>\
        <dept><dname>sales</dname>\
          <emp><ename>dre</ename><salary>70</salary><review>public</review></emp>\
        </dept>\
      </company>";

    /// Benchmark queries over the org view.
    pub const VIEW_QUERIES: &[(&str, &str)] = &[
        ("names", "//ename"),
        ("nested", "company/dept/(dept)*/emp/ename"),
        ("reviewed", "//emp[review]/ename"),
        ("unreviewed", "//emp[not(review)]/ename"),
    ];

    /// Parses the org DTD into `vocab`.
    pub fn dtd(vocab: &Vocabulary) -> Dtd {
        Dtd::parse(DTD, vocab).expect("org DTD parses")
    }

    /// Generator configuration with value pools.
    pub fn generator_config(vocab: &Vocabulary, seed: u64, target_nodes: usize) -> GeneratorConfig {
        GeneratorConfig {
            star_continue: 0.65,
            max_repeat: 5,
            max_depth: 12,
            ..GeneratorConfig::sized(seed, target_nodes)
        }
        .with_text_pool(
            vocab.intern("ename"),
            ["ada", "bert", "cleo", "dre", "eli"]
                .map(String::from)
                .to_vec(),
        )
        .with_text_pool(
            vocab.intern("dname"),
            ["rnd", "db", "sales", "hr"].map(String::from).to_vec(),
        )
        .with_text_pool(
            vocab.intern("salary"),
            ["70", "80", "90", "95"].map(String::from).to_vec(),
        )
        .with_text_pool(
            vocab.intern("review"),
            ["public", "private"].map(String::from).to_vec(),
        )
    }

    /// Generates a conforming org document.
    pub fn generate_document(vocab: &Vocabulary, seed: u64, target_nodes: usize) -> Document {
        let dtd = dtd(vocab);
        let config = generator_config(vocab, seed, target_nodes);
        generate(&dtd, &config).expect("org DTD generates")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smoqe_view::{derive, AccessPolicy};

    #[test]
    fn hospital_sample_is_valid() {
        let vocab = Vocabulary::new();
        let dtd = hospital::dtd(&vocab);
        let doc = Document::parse_str(hospital::SAMPLE_DOCUMENT, &vocab).unwrap();
        dtd.validate(&doc).unwrap();
    }

    #[test]
    fn org_sample_is_valid_and_policy_derives() {
        let vocab = Vocabulary::new();
        let dtd = org::dtd(&vocab);
        let doc = Document::parse_str(org::SAMPLE_DOCUMENT, &vocab).unwrap();
        dtd.validate(&doc).unwrap();
        let policy = AccessPolicy::parse(dtd.clone(), org::POLICY).unwrap();
        let spec = derive(&policy);
        spec.validate(&dtd).unwrap();
        // salary is hidden, review conditionally visible.
        let emp = vocab.lookup("emp").unwrap();
        let salary = vocab.lookup("salary").unwrap();
        let review = vocab.lookup("review").unwrap();
        assert!(spec.sigma(emp, salary).is_none());
        assert!(spec.sigma(emp, review).is_some());
    }

    #[test]
    fn generated_workloads_validate() {
        let vocab = Vocabulary::new();
        let dtd = hospital::dtd(&vocab);
        let doc = hospital::generate_document(&vocab, 3, 3_000);
        dtd.validate(&doc).unwrap();
        assert!(doc.node_count() >= 3_000);

        let vocab2 = Vocabulary::new();
        let dtd2 = org::dtd(&vocab2);
        let doc2 = org::generate_document(&vocab2, 3, 3_000);
        dtd2.validate(&doc2).unwrap();
    }

    #[test]
    fn all_workload_queries_parse() {
        let vocab = Vocabulary::new();
        hospital::dtd(&vocab);
        for (_, q) in hospital::DOC_QUERIES.iter().chain(hospital::VIEW_QUERIES) {
            smoqe_rxpath::parse_path(q, &vocab).unwrap();
        }
        let vocab2 = Vocabulary::new();
        org::dtd(&vocab2);
        for (_, q) in org::VIEW_QUERIES {
            smoqe_rxpath::parse_path(q, &vocab2).unwrap();
        }
    }

    #[test]
    fn q0_has_answers_on_suitable_data() {
        let vocab = Vocabulary::new();
        hospital::dtd(&vocab);
        // Build a document where Q0 matches: patient with ancestor-chain
        // test and own headache medication.
        let doc = Document::parse_str(
            "<hospital><patient><pname>Zoe</pname>\
             <visit><treatment><medication>headache</medication></treatment><date>d</date></visit>\
             <parent><patient><pname>Yan</pname>\
               <visit><treatment><test>blood</test></treatment><date>d</date></visit>\
             </patient></parent>\
             </patient></hospital>",
            &vocab,
        )
        .unwrap();
        let q0 = smoqe_rxpath::parse_path(hospital::Q0, &vocab).unwrap();
        let res = smoqe_rxpath::evaluate(&doc, &q0);
        assert_eq!(res.len(), 1);
        assert_eq!(doc.string_value(res.iter().next().unwrap()), "Zoe");
    }
}
