//! Unified engine error type.

use std::fmt;

/// Any error the engine can surface to a caller.
#[derive(Debug)]
pub enum EngineError {
    /// XML parsing / validation / I/O.
    Xml(smoqe_xml::XmlError),
    /// Regular XPath syntax.
    Query(smoqe_rxpath::ParseError),
    /// Policy parsing or annotation errors.
    Policy(smoqe_view::PolicyError),
    /// View specification errors.
    View(smoqe_view::ViewError),
    /// No document has been loaded yet.
    NoDocument,
    /// No document with this catalog name exists.
    UnknownDocument(String),
    /// The session's user group has no registered view.
    UnknownGroup(String),
    /// Direct document access requested without admin rights.
    AccessDenied,
    /// Streaming evaluation requested but no streamable source exists.
    NoStreamSource,
    /// A batched evaluation mixed sessions of different documents or
    /// engines — one scan can only serve one document.
    BatchMismatch,
    /// An update statement could not be parsed or applied (admin
    /// surface; group sessions see most of these as [`UpdateDenied`]).
    Update(smoqe_update::UpdateError),
    /// The session's security view rejects the update. Deliberately
    /// carries no detail: a write to a hidden node, to a node that does
    /// not exist, or whose result would reveal hidden structure all
    /// produce this exact error, so denials leak nothing.
    UpdateDenied,
    /// The durability layer failed: WAL append, checkpoint, corruption
    /// found during recovery, or an injected crash (fault injection).
    Durability(crate::durable::DurError),
    /// The request's deadline passed before evaluation finished; the scan
    /// was abandoned mid-flight. Like [`EngineError::UpdateDenied`], this
    /// deliberately carries no detail — how far the evaluation got (and
    /// therefore how much hidden structure it touched) must not leak.
    DeadlineExceeded,
    /// The request was cooperatively cancelled (caller disconnected or an
    /// operator killed it); the scan was abandoned mid-flight. Carries no
    /// detail, for the same opacity reason as
    /// [`EngineError::DeadlineExceeded`].
    Cancelled,
}

impl EngineError {
    /// Stable machine-readable code for this error, for wire protocols and
    /// logs: serializers must never string-match `Display` output (which
    /// is free to change) to recover the variant. Codes are part of the
    /// protocol contract and never renumbered — new variants append.
    ///
    /// [`EngineError::UpdateDenied`] deliberately maps hidden,
    /// conditionally-hidden and non-existent targets to **one** code with
    /// no payload, so a serialized denial is byte-identical whatever its
    /// cause.
    pub fn code(&self) -> u16 {
        match self {
            EngineError::Xml(_) => 1,
            EngineError::Query(_) => 2,
            EngineError::Policy(_) => 3,
            EngineError::View(_) => 4,
            EngineError::NoDocument => 5,
            EngineError::UnknownDocument(_) => 6,
            EngineError::UnknownGroup(_) => 7,
            EngineError::AccessDenied => 8,
            EngineError::NoStreamSource => 9,
            EngineError::BatchMismatch => 10,
            EngineError::Update(_) => 11,
            EngineError::UpdateDenied => 12,
            EngineError::Durability(_) => 13,
            EngineError::DeadlineExceeded => 14,
            EngineError::Cancelled => 15,
        }
    }

    /// Short stable identifier paired with [`EngineError::code`] (same
    /// contract: append-only, never renamed).
    pub fn code_name(&self) -> &'static str {
        match self {
            EngineError::Xml(_) => "xml",
            EngineError::Query(_) => "query",
            EngineError::Policy(_) => "policy",
            EngineError::View(_) => "view",
            EngineError::NoDocument => "no_document",
            EngineError::UnknownDocument(_) => "unknown_document",
            EngineError::UnknownGroup(_) => "unknown_group",
            EngineError::AccessDenied => "access_denied",
            EngineError::NoStreamSource => "no_stream_source",
            EngineError::BatchMismatch => "batch_mismatch",
            EngineError::Update(_) => "update",
            EngineError::UpdateDenied => "update_denied",
            EngineError::Durability(_) => "durability",
            EngineError::DeadlineExceeded => "deadline_exceeded",
            EngineError::Cancelled => "cancelled",
        }
    }
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Xml(e) => write!(f, "{e}"),
            EngineError::Query(e) => write!(f, "query error: {e}"),
            EngineError::Policy(e) => write!(f, "{e}"),
            EngineError::View(e) => write!(f, "{e}"),
            EngineError::NoDocument => write!(f, "no document loaded"),
            EngineError::UnknownDocument(d) => {
                write!(f, "no document named '{d}' in the catalog")
            }
            EngineError::UnknownGroup(g) => write!(f, "no view registered for group '{g}'"),
            EngineError::AccessDenied => {
                write!(f, "direct document access requires an admin session")
            }
            EngineError::NoStreamSource => {
                write!(f, "streaming mode requires a file or raw-text source")
            }
            EngineError::BatchMismatch => {
                write!(
                    f,
                    "batched evaluation requires all sessions to target the same document of the same engine"
                )
            }
            EngineError::Update(e) => write!(f, "{e}"),
            EngineError::UpdateDenied => {
                write!(f, "update denied by the session's security policy")
            }
            EngineError::Durability(e) => write!(f, "{e}"),
            EngineError::DeadlineExceeded => {
                write!(f, "request deadline exceeded before evaluation finished")
            }
            EngineError::Cancelled => write!(f, "request cancelled before evaluation finished"),
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Xml(e) => Some(e),
            EngineError::Query(e) => Some(e),
            EngineError::Policy(e) => Some(e),
            EngineError::View(e) => Some(e),
            EngineError::Update(e) => Some(e),
            EngineError::Durability(e) => Some(e),
            _ => None,
        }
    }
}

impl From<smoqe_xml::XmlError> for EngineError {
    fn from(e: smoqe_xml::XmlError) -> Self {
        EngineError::Xml(e)
    }
}
impl From<smoqe_rxpath::ParseError> for EngineError {
    fn from(e: smoqe_rxpath::ParseError) -> Self {
        EngineError::Query(e)
    }
}
impl From<smoqe_view::PolicyError> for EngineError {
    fn from(e: smoqe_view::PolicyError) -> Self {
        EngineError::Policy(e)
    }
}
impl From<smoqe_view::ViewError> for EngineError {
    fn from(e: smoqe_view::ViewError) -> Self {
        EngineError::View(e)
    }
}
impl From<smoqe_update::UpdateError> for EngineError {
    fn from(e: smoqe_update::UpdateError) -> Self {
        EngineError::Update(e)
    }
}
impl From<smoqe_hype::Interrupt> for EngineError {
    fn from(i: smoqe_hype::Interrupt) -> Self {
        match i {
            smoqe_hype::Interrupt::DeadlineExceeded => EngineError::DeadlineExceeded,
            smoqe_hype::Interrupt::Cancelled => EngineError::Cancelled,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(EngineError::NoDocument.to_string().contains("no document"));
        assert!(EngineError::UnknownGroup("x".into())
            .to_string()
            .contains("'x'"));
        assert!(EngineError::UnknownDocument("d".into())
            .to_string()
            .contains("'d'"));
        assert!(EngineError::AccessDenied.to_string().contains("admin"));
        assert!(EngineError::BatchMismatch.to_string().contains("batch"));
        assert!(EngineError::UpdateDenied.to_string().contains("denied"));
        assert!(EngineError::Update(smoqe_update::UpdateError::NoTarget)
            .to_string()
            .contains("no node"));
    }

    #[test]
    fn update_denied_reveals_nothing_about_the_cause() {
        // The whole point of the variant: no payload, one message.
        let a = EngineError::UpdateDenied.to_string();
        let b = EngineError::UpdateDenied.to_string();
        assert_eq!(a, b);
        assert!(!a.contains("hidden") && !a.contains("exist"));
    }

    #[test]
    fn codes_are_distinct_and_stable() {
        let variants = [
            EngineError::NoDocument,
            EngineError::UnknownDocument("d".into()),
            EngineError::UnknownGroup("g".into()),
            EngineError::AccessDenied,
            EngineError::NoStreamSource,
            EngineError::BatchMismatch,
            EngineError::UpdateDenied,
            EngineError::Update(smoqe_update::UpdateError::NoTarget),
        ];
        let mut codes: Vec<u16> = variants.iter().map(EngineError::code).collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), variants.len(), "codes must be distinct");
        // Pinned values: renumbering is a wire-protocol break.
        assert_eq!(EngineError::UpdateDenied.code(), 12);
        assert_eq!(EngineError::UpdateDenied.code_name(), "update_denied");
        assert_eq!(EngineError::AccessDenied.code(), 8);
        let dur = EngineError::Durability(crate::durable::DurError::Crashed);
        assert_eq!(dur.code(), 13);
        assert_eq!(dur.code_name(), "durability");
        assert_eq!(EngineError::DeadlineExceeded.code(), 14);
        assert_eq!(
            EngineError::DeadlineExceeded.code_name(),
            "deadline_exceeded"
        );
        assert_eq!(EngineError::Cancelled.code(), 15);
        assert_eq!(EngineError::Cancelled.code_name(), "cancelled");
    }

    #[test]
    fn interrupt_errors_reveal_nothing_about_progress() {
        // A timed-out or cancelled scan must not say how far it got: one
        // fixed message per variant, no payload.
        let a = EngineError::from(smoqe_hype::Interrupt::DeadlineExceeded).to_string();
        assert_eq!(a, EngineError::DeadlineExceeded.to_string());
        assert!(!a.contains("hidden") && !a.contains("node"));
        let b = EngineError::from(smoqe_hype::Interrupt::Cancelled).to_string();
        assert_eq!(b, EngineError::Cancelled.to_string());
    }
}
