//! Unified engine error type.

use std::fmt;

/// Any error the engine can surface to a caller.
#[derive(Debug)]
pub enum EngineError {
    /// XML parsing / validation / I/O.
    Xml(smoqe_xml::XmlError),
    /// Regular XPath syntax.
    Query(smoqe_rxpath::ParseError),
    /// Policy parsing or annotation errors.
    Policy(smoqe_view::PolicyError),
    /// View specification errors.
    View(smoqe_view::ViewError),
    /// No document has been loaded yet.
    NoDocument,
    /// No document with this catalog name exists.
    UnknownDocument(String),
    /// The session's user group has no registered view.
    UnknownGroup(String),
    /// Direct document access requested without admin rights.
    AccessDenied,
    /// Streaming evaluation requested but no streamable source exists.
    NoStreamSource,
    /// A batched evaluation mixed sessions of different documents or
    /// engines — one scan can only serve one document.
    BatchMismatch,
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Xml(e) => write!(f, "{e}"),
            EngineError::Query(e) => write!(f, "query error: {e}"),
            EngineError::Policy(e) => write!(f, "{e}"),
            EngineError::View(e) => write!(f, "{e}"),
            EngineError::NoDocument => write!(f, "no document loaded"),
            EngineError::UnknownDocument(d) => {
                write!(f, "no document named '{d}' in the catalog")
            }
            EngineError::UnknownGroup(g) => write!(f, "no view registered for group '{g}'"),
            EngineError::AccessDenied => {
                write!(f, "direct document access requires an admin session")
            }
            EngineError::NoStreamSource => {
                write!(f, "streaming mode requires a file or raw-text source")
            }
            EngineError::BatchMismatch => {
                write!(
                    f,
                    "batched evaluation requires all sessions to target the same document of the same engine"
                )
            }
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Xml(e) => Some(e),
            EngineError::Query(e) => Some(e),
            EngineError::Policy(e) => Some(e),
            EngineError::View(e) => Some(e),
            _ => None,
        }
    }
}

impl From<smoqe_xml::XmlError> for EngineError {
    fn from(e: smoqe_xml::XmlError) -> Self {
        EngineError::Xml(e)
    }
}
impl From<smoqe_rxpath::ParseError> for EngineError {
    fn from(e: smoqe_rxpath::ParseError) -> Self {
        EngineError::Query(e)
    }
}
impl From<smoqe_view::PolicyError> for EngineError {
    fn from(e: smoqe_view::PolicyError) -> Self {
        EngineError::Policy(e)
    }
}
impl From<smoqe_view::ViewError> for EngineError {
    fn from(e: smoqe_view::ViewError) -> Self {
        EngineError::View(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(EngineError::NoDocument.to_string().contains("no document"));
        assert!(EngineError::UnknownGroup("x".into())
            .to_string()
            .contains("'x'"));
        assert!(EngineError::UnknownDocument("d".into())
            .to_string()
            .contains("'d'"));
        assert!(EngineError::AccessDenied.to_string().contains("admin"));
        assert!(EngineError::BatchMismatch.to_string().contains("batch"));
    }
}
