//! The TAX (Type-Aware XML) index.
//!
//! Paper §3, "Indexer": *"The novelty of TAX is that it classifies the
//! information of descendants of each node based on their element types.
//! [...] TAX is effective in pruning large document subtrees during the
//! evaluation of XPath queries with or without '//', by keeping track of
//! descendants of certain types that have been and have not been checked
//! at each node."*
//!
//! For every node the index stores the **set of element labels occurring
//! strictly below it**. Real documents have very few distinct such sets
//! (every `pname` leaf shares the empty set, every `visit` shares
//! `{treatment, date, ...}`), so sets are **interned**: the per-node data
//! is one `u32` into a small set table. The evaluator intersects a state's
//! required labels with a subtree's available labels to decide pruning.

use crate::labelindex::LabelIndex;
use crate::valueindex::ValueIndex;
use smoqe_xml::{Document, EditSpan, LabelSet, NodeId, Vocabulary};
use std::collections::HashMap;

/// A type-aware index over one document.
#[derive(Clone, Debug)]
pub struct TaxIndex {
    /// Interned distinct descendant-label sets.
    pub(crate) sets: Vec<LabelSet>,
    /// Per node: index into `sets`.
    pub(crate) node_sets: Vec<u32>,
    /// Number of labels in the vocabulary when the index was built.
    pub(crate) num_labels: u32,
    /// Positional complement (per-label occurrence lists, subtree ends,
    /// levels) built in the same bottom-up pass. `None` only for indexes
    /// loaded from disk before [`TaxIndex::attach_label_index`] runs —
    /// the on-disk format predates it and positions are cheap to rebuild
    /// from the document.
    pub(crate) labels: Option<LabelIndex>,
    /// Text-value posting lists (per-(label, value) occurrence ids),
    /// built and maintained alongside [`TaxIndex::labels`] and absent in
    /// exactly the same loaded-from-disk window.
    pub(crate) values: Option<ValueIndex>,
}

impl TaxIndex {
    /// Builds the index — descendant-label sets plus the positional
    /// [`LabelIndex`] — over `doc`, each in one bottom-up pass.
    pub fn build(doc: &Document) -> TaxIndex {
        let num_labels = doc.vocabulary().len();
        let n = doc.node_count();
        let mut interner: HashMap<LabelSet, u32> = HashMap::new();
        let mut sets: Vec<LabelSet> = Vec::new();
        let empty = {
            let s = LabelSet::with_capacity(num_labels);
            interner.insert(s.clone(), 0);
            sets.push(s);
            0u32
        };
        let mut node_sets = vec![empty; n];
        // NodeIds are document order (pre-order), so descending order
        // visits children before parents.
        for raw in (0..n as u32).rev() {
            let node = NodeId(raw);
            if !doc.is_element(node) {
                continue; // text nodes keep the empty set
            }
            let mut acc = LabelSet::with_capacity(num_labels);
            let mut nonempty = false;
            for c in doc.children(node) {
                if let Some(l) = doc.label(c) {
                    acc.insert(l);
                    acc.union_with(&sets[node_sets[c.index()] as usize]);
                    nonempty = true;
                }
            }
            if !nonempty {
                continue; // leaf: empty set already assigned
            }
            let id = match interner.get(&acc) {
                Some(&id) => id,
                None => {
                    let id = sets.len() as u32;
                    interner.insert(acc.clone(), id);
                    sets.push(acc);
                    id
                }
            };
            node_sets[raw as usize] = id;
        }
        TaxIndex {
            sets,
            node_sets,
            num_labels: num_labels as u32,
            // One implementation of the positional construction (shared
            // with `attach_label_index` and the patched-root fallback);
            // its own descending sweep is cheap next to the set interning
            // above.
            labels: Some(LabelIndex::build(doc)),
            values: Some(ValueIndex::build(doc)),
        }
    }

    /// Incrementally maintains the index across one structural edit: the
    /// index over the **pre-edit** document plus the [`EditSpan`] an edit
    /// of `smoqe_xml::edit` reported yields the index over `new_doc`
    /// without a full rebuild.
    ///
    /// Node ids are pre-order positions, so an edit changes one contiguous
    /// id window: per-node set assignments before the window are reused
    /// verbatim, assignments after it are reused shifted, sets for the
    /// inserted window are computed bottom-up over just that window, and
    /// only the ancestor chain of the splice point is recomputed (those
    /// are the only nodes outside the window whose descendants changed).
    /// Cost is O(window + ancestors' fan-out) set work plus a copy of the
    /// per-node assignment vector and of the interned set table (small by
    /// the index's own compression argument), instead of
    /// [`TaxIndex::build`]'s full bottom-up pass — see the
    /// `update_maintenance` bench for the gap.
    pub fn patched(&self, new_doc: &Document, span: &EditSpan) -> TaxIndex {
        let start = span.start as usize;
        let removed = span.removed as usize;
        let inserted = span.inserted as usize;
        debug_assert_eq!(
            self.node_sets.len() - removed + inserted,
            new_doc.node_count(),
            "edit span does not describe this document pair"
        );
        debug_assert!(self.sets[0].is_empty(), "set 0 is the empty set");

        let mut sets = self.sets.clone();
        let num_labels = (self.num_labels as usize).max(new_doc.vocabulary().len());

        let mut node_sets = Vec::with_capacity(new_doc.node_count());
        node_sets.extend_from_slice(&self.node_sets[..start]);
        // Placeholder (empty set) for the inserted window; text nodes and
        // leaf elements keep it, matching `build`.
        node_sets.resize(start + inserted, 0);
        node_sets.extend_from_slice(&self.node_sets[start + removed..]);

        // Dedup recomputed sets by linear scan: the set table is small by
        // design, and only window + ancestor nodes are recomputed, so a
        // scan beats re-hashing the whole table up front.
        let mut assign = |node_sets: &mut Vec<u32>, node: NodeId| {
            let mut acc = LabelSet::with_capacity(num_labels);
            let mut nonempty = false;
            for c in new_doc.children(node) {
                if let Some(l) = new_doc.label(c) {
                    acc.insert(l);
                    acc.union_with(&sets[node_sets[c.index()] as usize]);
                    nonempty = true;
                }
            }
            node_sets[node.index()] = if !nonempty {
                0
            } else {
                match sets.iter().position(|s| *s == acc) {
                    Some(id) => id as u32,
                    None => {
                        sets.push(acc);
                        (sets.len() - 1) as u32
                    }
                }
            };
        };

        // The inserted window is one whole subtree: descending id order
        // visits children before parents, and every child of a window
        // node lies inside the window.
        for raw in (start..start + inserted).rev() {
            let node = NodeId(raw as u32);
            if new_doc.is_element(node) {
                assign(&mut node_sets, node);
            }
        }
        // Ancestors of the splice point (nearest first, so each uses the
        // already-corrected sets of its children).
        let mut ancestor = span.parent;
        while let Some(a) = ancestor {
            assign(&mut node_sets, a);
            ancestor = new_doc.parent(a);
        }

        TaxIndex {
            sets,
            node_sets,
            num_labels: num_labels as u32,
            // The positional indexes ride along (each with its own
            // full-rebuild fallback for root-touching spans).
            labels: self.labels.as_ref().map(|li| li.patched(new_doc, span)),
            values: self.values.as_ref().map(|vi| vi.patched(new_doc, span)),
        }
    }

    /// The positional label index built alongside the descendant sets, if
    /// present (always for built/patched indexes; absent after
    /// [`TaxIndex::load`](crate::TaxIndex) until
    /// [`TaxIndex::attach_label_index`] reattaches it).
    #[inline]
    pub fn label_index(&self) -> Option<&LabelIndex> {
        self.labels.as_ref()
    }

    /// The text-value posting index built alongside the label index, under
    /// the same presence rules.
    #[inline]
    pub fn value_index(&self) -> Option<&ValueIndex> {
        self.values.as_ref()
    }

    /// (Re)builds the positional label index and the value posting index
    /// from `doc` — used after loading a persisted index, whose on-disk
    /// format carries only the descendant sets. No-op when the node
    /// counts disagree (the index does not describe `doc`).
    pub fn attach_label_index(&mut self, doc: &Document) {
        if doc.node_count() == self.node_count() {
            self.labels = Some(LabelIndex::build(doc));
            self.values = Some(ValueIndex::build(doc));
        }
    }

    /// The labels of elements occurring strictly below `node`.
    #[inline]
    pub fn descendant_labels(&self, node: NodeId) -> &LabelSet {
        &self.sets[self.node_sets[node.index()] as usize]
    }

    /// Whether some element labelled `label` occurs strictly below `node`.
    pub fn has_descendant(&self, node: NodeId, label: smoqe_xml::Label) -> bool {
        self.descendant_labels(node).contains(label)
    }

    /// Number of nodes covered.
    pub fn node_count(&self) -> usize {
        self.node_sets.len()
    }

    /// Number of distinct descendant-type sets (the compression the index
    /// relies on; reported by experiment E5).
    pub fn distinct_sets(&self) -> usize {
        self.sets.len()
    }

    /// Approximate in-memory footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        let set_bytes: usize = self.sets.iter().map(|s| s.words().len() * 8).sum();
        set_bytes + self.node_sets.len() * 4
    }

    /// Number of labels the index was built against (consistency check for
    /// persistence).
    pub fn num_labels(&self) -> u32 {
        self.num_labels
    }

    /// Human-readable summary (used by the iSMOQE-substitute renderers).
    pub fn summary(&self, vocab: &Vocabulary) -> String {
        let mut out = format!(
            "TAX index: {} nodes, {} distinct type sets, ~{} bytes\n",
            self.node_count(),
            self.distinct_sets(),
            self.memory_bytes()
        );
        if let Some(li) = &self.labels {
            out.push_str(&format!(
                "label index: {} labels, ~{} bytes (occurrence lists + subtree ends + levels)\n",
                li.lists.len(),
                li.memory_bytes()
            ));
        }
        if let Some(vi) = &self.values {
            out.push_str(&format!(
                "value index: {} (label, value) posting lists, {} postings, ~{} bytes\n",
                vi.distinct_postings(),
                vi.total_occurrences(),
                vi.memory_bytes()
            ));
            for (label, distinct, occurrences) in vi.label_stats() {
                let li_total = self
                    .labels
                    .as_ref()
                    .map(|li| li.occurrences(smoqe_xml::Label(label)).len())
                    .unwrap_or(0);
                out.push_str(&format!(
                    "  {}: {} occurrences, {} distinct values over {} posted\n",
                    vocab.name(smoqe_xml::Label(label)),
                    li_total,
                    distinct,
                    occurrences
                ));
            }
        }
        for (i, s) in self.sets.iter().enumerate() {
            let names: Vec<String> = s.iter().map(|l| vocab.name(l).to_string()).collect();
            let count = self.node_sets.iter().filter(|&&x| x == i as u32).count();
            out.push_str(&format!(
                "  set {i} ({count} nodes): {{{}}}\n",
                names.join(", ")
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(xml: &str) -> (Vocabulary, Document) {
        let vocab = Vocabulary::new();
        let d = Document::parse_str(xml, &vocab).unwrap();
        (vocab, d)
    }

    #[test]
    fn leaf_sets_are_empty() {
        let (_, d) = doc("<a><b/><c>t</c></a>");
        let tax = TaxIndex::build(&d);
        for n in d.all_nodes() {
            if d.is_element(n) && d.child_elements(n).count() == 0 {
                assert!(tax.descendant_labels(n).is_empty());
            }
        }
    }

    #[test]
    fn root_set_covers_everything() {
        let (vocab, d) = doc("<a><b><c/></b><d/></a>");
        let tax = TaxIndex::build(&d);
        let root_set = tax.descendant_labels(d.root());
        for name in ["b", "c", "d"] {
            assert!(root_set.contains(vocab.lookup(name).unwrap()), "{name}");
        }
        assert!(!root_set.contains(vocab.lookup("a").unwrap()));
    }

    #[test]
    fn recursive_labels_included() {
        let (vocab, d) = doc("<a><b><a><c/></a></b></a>");
        let tax = TaxIndex::build(&d);
        // 'a' occurs below the root 'a'.
        assert!(tax.has_descendant(d.root(), vocab.lookup("a").unwrap()));
        assert!(tax.has_descendant(d.root(), vocab.lookup("c").unwrap()));
    }

    #[test]
    fn interning_collapses_identical_sets() {
        // Many identical leaf structures share one set.
        let xml = format!("<r>{}</r>", "<x><y/></x>".repeat(50));
        let (_, d) = doc(&xml);
        let tax = TaxIndex::build(&d);
        assert!(tax.distinct_sets() <= 4, "got {}", tax.distinct_sets());
        assert_eq!(tax.node_count(), d.node_count());
    }

    #[test]
    fn matches_brute_force() {
        let (vocab, d) = doc("<a><b><c><d/></c></b><b><e>t</e></b><c/></a>");
        let tax = TaxIndex::build(&d);
        for n in d.all_nodes() {
            let brute: LabelSet = d.descendants(n).filter_map(|x| d.label(x)).collect();
            assert_eq!(
                tax.descendant_labels(n).iter().collect::<Vec<_>>(),
                brute.iter().collect::<Vec<_>>(),
                "node {n:?}"
            );
        }
        let _ = vocab;
    }

    /// Asserts that `patched` assigns every node the same descendant-label
    /// set a from-scratch rebuild would.
    fn assert_patch_matches_rebuild(
        tax: &TaxIndex,
        new_doc: &Document,
        span: &smoqe_xml::EditSpan,
    ) {
        let patched = tax.patched(new_doc, span);
        let rebuilt = TaxIndex::build(new_doc);
        assert_eq!(patched.node_count(), rebuilt.node_count());
        for n in new_doc.all_nodes() {
            assert_eq!(
                patched.descendant_labels(n).iter().collect::<Vec<_>>(),
                rebuilt.descendant_labels(n).iter().collect::<Vec<_>>(),
                "node {n:?} diverged from rebuild"
            );
        }
    }

    #[test]
    fn patched_matches_rebuild_after_delete() {
        let (vocab, d) = doc("<a><b><c/><c/></b><d>x</d><b><e/></b></a>");
        let tax = TaxIndex::build(&d);
        let b = vocab.lookup("b").unwrap();
        for target in d.nodes_labeled(b).collect::<Vec<_>>() {
            let (nd, span) = smoqe_xml::delete_subtree(&d, target).unwrap();
            assert_patch_matches_rebuild(&tax, &nd, &span);
        }
    }

    #[test]
    fn patched_matches_rebuild_after_insert_and_replace() {
        let (vocab, d) = doc("<a><b><c/></b><d/></a>");
        let tax = TaxIndex::build(&d);
        let frag = Document::parse_str("<e><f/>t</e>", &vocab).unwrap();
        let b = d.nodes_labeled(vocab.lookup("b").unwrap()).next().unwrap();
        for place in [
            smoqe_xml::SplicePlace::Into,
            smoqe_xml::SplicePlace::Before,
            smoqe_xml::SplicePlace::After,
        ] {
            let (nd, span) = smoqe_xml::insert_fragment(&d, b, place, &frag).unwrap();
            assert_patch_matches_rebuild(&tax, &nd, &span);
        }
        let (nd, span) = smoqe_xml::replace_subtree(&d, b, &frag).unwrap();
        assert_patch_matches_rebuild(&tax, &nd, &span);
    }

    #[test]
    fn patched_handles_new_vocabulary_labels_and_root_replacement() {
        let (vocab, d) = doc("<a><b/></a>");
        let tax = TaxIndex::build(&d);
        // `zz` was not in the vocabulary when the index was built.
        let frag = Document::parse_str("<a><zz><b/></zz></a>", &vocab).unwrap();
        let (nd, span) = smoqe_xml::replace_subtree(&d, d.root(), &frag).unwrap();
        assert_patch_matches_rebuild(&tax, &nd, &span);
        let patched = tax.patched(&nd, &span);
        assert!(patched.has_descendant(nd.root(), vocab.lookup("zz").unwrap()));
        assert!(patched.num_labels() >= tax.num_labels());
    }

    #[test]
    fn patched_handles_text_merge_spans() {
        let (vocab, d) = doc("<a>x<b><c/></b>y<d/></a>");
        let tax = TaxIndex::build(&d);
        let b = d.nodes_labeled(vocab.lookup("b").unwrap()).next().unwrap();
        let (nd, span) = smoqe_xml::delete_subtree(&d, b).unwrap();
        assert_eq!(span.removed, 3, "subtree plus the merged text node");
        assert_patch_matches_rebuild(&tax, &nd, &span);
    }

    #[test]
    fn patched_chains_across_successive_edits() {
        let (vocab, d) = doc("<a><b><c/></b><b/><d/></a>");
        let mut tax = TaxIndex::build(&d);
        let frag = Document::parse_str("<e/>", &vocab).unwrap();
        let b_label = vocab.lookup("b").unwrap();
        let mut cur = d;
        for _ in 0..2 {
            let target = cur.nodes_labeled(b_label).last().unwrap();
            let (nd, span) = smoqe_xml::replace_subtree(&cur, target, &frag).unwrap();
            tax = tax.patched(&nd, &span);
            let rebuilt = TaxIndex::build(&nd);
            for n in nd.all_nodes() {
                assert_eq!(
                    tax.descendant_labels(n).iter().collect::<Vec<_>>(),
                    rebuilt.descendant_labels(n).iter().collect::<Vec<_>>()
                );
            }
            cur = nd;
        }
    }

    #[test]
    fn summary_mentions_counts() {
        let (vocab, d) = doc("<a><b/></a>");
        let tax = TaxIndex::build(&d);
        let s = tax.summary(&vocab);
        assert!(s.contains("distinct type sets"));
        assert!(s.contains("b"));
    }
}
