//! The TAX (Type-Aware XML) index.
//!
//! Paper §3, "Indexer": *"The novelty of TAX is that it classifies the
//! information of descendants of each node based on their element types.
//! [...] TAX is effective in pruning large document subtrees during the
//! evaluation of XPath queries with or without '//', by keeping track of
//! descendants of certain types that have been and have not been checked
//! at each node."*
//!
//! For every node the index stores the **set of element labels occurring
//! strictly below it**. Real documents have very few distinct such sets
//! (every `pname` leaf shares the empty set, every `visit` shares
//! `{treatment, date, ...}`), so sets are **interned**: the per-node data
//! is one `u32` into a small set table. The evaluator intersects a state's
//! required labels with a subtree's available labels to decide pruning.

use smoqe_xml::{Document, LabelSet, NodeId, Vocabulary};
use std::collections::HashMap;

/// A type-aware index over one document.
#[derive(Clone, Debug)]
pub struct TaxIndex {
    /// Interned distinct descendant-label sets.
    pub(crate) sets: Vec<LabelSet>,
    /// Per node: index into `sets`.
    pub(crate) node_sets: Vec<u32>,
    /// Number of labels in the vocabulary when the index was built.
    pub(crate) num_labels: u32,
}

impl TaxIndex {
    /// Builds the index in one bottom-up pass over `doc`.
    pub fn build(doc: &Document) -> TaxIndex {
        let num_labels = doc.vocabulary().len();
        let n = doc.node_count();
        let mut interner: HashMap<LabelSet, u32> = HashMap::new();
        let mut sets: Vec<LabelSet> = Vec::new();
        let empty = {
            let s = LabelSet::with_capacity(num_labels);
            interner.insert(s.clone(), 0);
            sets.push(s);
            0u32
        };
        let mut node_sets = vec![empty; n];
        // NodeIds are document order (pre-order), so descending order
        // visits children before parents.
        for raw in (0..n as u32).rev() {
            let node = NodeId(raw);
            if !doc.is_element(node) {
                continue; // text nodes keep the empty set
            }
            let mut acc = LabelSet::with_capacity(num_labels);
            let mut nonempty = false;
            for c in doc.children(node) {
                if let Some(l) = doc.label(c) {
                    acc.insert(l);
                    acc.union_with(&sets[node_sets[c.index()] as usize]);
                    nonempty = true;
                }
            }
            if !nonempty {
                continue; // leaf: empty set already assigned
            }
            let id = match interner.get(&acc) {
                Some(&id) => id,
                None => {
                    let id = sets.len() as u32;
                    interner.insert(acc.clone(), id);
                    sets.push(acc);
                    id
                }
            };
            node_sets[raw as usize] = id;
        }
        TaxIndex {
            sets,
            node_sets,
            num_labels: num_labels as u32,
        }
    }

    /// The labels of elements occurring strictly below `node`.
    #[inline]
    pub fn descendant_labels(&self, node: NodeId) -> &LabelSet {
        &self.sets[self.node_sets[node.index()] as usize]
    }

    /// Whether some element labelled `label` occurs strictly below `node`.
    pub fn has_descendant(&self, node: NodeId, label: smoqe_xml::Label) -> bool {
        self.descendant_labels(node).contains(label)
    }

    /// Number of nodes covered.
    pub fn node_count(&self) -> usize {
        self.node_sets.len()
    }

    /// Number of distinct descendant-type sets (the compression the index
    /// relies on; reported by experiment E5).
    pub fn distinct_sets(&self) -> usize {
        self.sets.len()
    }

    /// Approximate in-memory footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        let set_bytes: usize = self.sets.iter().map(|s| s.words().len() * 8).sum();
        set_bytes + self.node_sets.len() * 4
    }

    /// Number of labels the index was built against (consistency check for
    /// persistence).
    pub fn num_labels(&self) -> u32 {
        self.num_labels
    }

    /// Human-readable summary (used by the iSMOQE-substitute renderers).
    pub fn summary(&self, vocab: &Vocabulary) -> String {
        let mut out = format!(
            "TAX index: {} nodes, {} distinct type sets, ~{} bytes\n",
            self.node_count(),
            self.distinct_sets(),
            self.memory_bytes()
        );
        for (i, s) in self.sets.iter().enumerate() {
            let names: Vec<String> = s.iter().map(|l| vocab.name(l).to_string()).collect();
            let count = self.node_sets.iter().filter(|&&x| x == i as u32).count();
            out.push_str(&format!(
                "  set {i} ({count} nodes): {{{}}}\n",
                names.join(", ")
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(xml: &str) -> (Vocabulary, Document) {
        let vocab = Vocabulary::new();
        let d = Document::parse_str(xml, &vocab).unwrap();
        (vocab, d)
    }

    #[test]
    fn leaf_sets_are_empty() {
        let (_, d) = doc("<a><b/><c>t</c></a>");
        let tax = TaxIndex::build(&d);
        for n in d.all_nodes() {
            if d.is_element(n) && d.child_elements(n).count() == 0 {
                assert!(tax.descendant_labels(n).is_empty());
            }
        }
    }

    #[test]
    fn root_set_covers_everything() {
        let (vocab, d) = doc("<a><b><c/></b><d/></a>");
        let tax = TaxIndex::build(&d);
        let root_set = tax.descendant_labels(d.root());
        for name in ["b", "c", "d"] {
            assert!(root_set.contains(vocab.lookup(name).unwrap()), "{name}");
        }
        assert!(!root_set.contains(vocab.lookup("a").unwrap()));
    }

    #[test]
    fn recursive_labels_included() {
        let (vocab, d) = doc("<a><b><a><c/></a></b></a>");
        let tax = TaxIndex::build(&d);
        // 'a' occurs below the root 'a'.
        assert!(tax.has_descendant(d.root(), vocab.lookup("a").unwrap()));
        assert!(tax.has_descendant(d.root(), vocab.lookup("c").unwrap()));
    }

    #[test]
    fn interning_collapses_identical_sets() {
        // Many identical leaf structures share one set.
        let xml = format!("<r>{}</r>", "<x><y/></x>".repeat(50));
        let (_, d) = doc(&xml);
        let tax = TaxIndex::build(&d);
        assert!(tax.distinct_sets() <= 4, "got {}", tax.distinct_sets());
        assert_eq!(tax.node_count(), d.node_count());
    }

    #[test]
    fn matches_brute_force() {
        let (vocab, d) = doc("<a><b><c><d/></c></b><b><e>t</e></b><c/></a>");
        let tax = TaxIndex::build(&d);
        for n in d.all_nodes() {
            let brute: LabelSet = d.descendants(n).filter_map(|x| d.label(x)).collect();
            assert_eq!(
                tax.descendant_labels(n).iter().collect::<Vec<_>>(),
                brute.iter().collect::<Vec<_>>(),
                "node {n:?}"
            );
        }
        let _ = vocab;
    }

    #[test]
    fn summary_mentions_counts() {
        let (vocab, d) = doc("<a><b/></a>");
        let tax = TaxIndex::build(&d);
        let s = tax.summary(&vocab);
        assert!(s.contains("distinct type sets"));
        assert!(s.contains("b"));
    }
}
