//! The text-value posting index: per-(label, text-value) occurrence lists.
//!
//! The [`crate::LabelIndex`] lets the jump driver hop between elements of
//! one label; a `text() = 'v'` leaf predicate still forces it to visit
//! every such element just to compare strings. The [`ValueIndex`] stores,
//! for every `(label, direct-text-value)` pair, the sorted pre-order ids
//! of the elements carrying that label **and** that text — so "the next
//! `medication` whose text is `autism`" is one binary search, and a
//! predicated trigger list shrinks from all label occurrences to the
//! matching ones.
//!
//! Values are stored **hashed, not verbatim** (the PR 2 two-pass idiom:
//! length-strengthened rolling hash as a filter, with the evaluator's
//! exact string comparison as the authoritative check). A hash collision
//! therefore merges two values' posting lists — queries see a *superset*
//! of the true matches, never a subset, which is exactly the contract the
//! jump driver needs: candidate enumeration may overapproximate, the
//! per-candidate guard verification filters. Elements with empty direct
//! text are not posted at all; callers must not narrow on the empty
//! string.
//!
//! Built in the same descending pass as [`crate::LabelIndex`], maintained
//! incrementally through [`ValueIndex::patched`] (same contiguous-window
//! splice, plus a re-key of the splice parent — the only node outside the
//! window whose direct text could change), and reattached after
//! persistence like the label index.

use smoqe_xml::{Document, EditSpan, Label, NodeId};
use std::collections::HashMap;

/// Hash base shared with the evaluator's two-pass text filter.
const B: u64 = 1_000_003;

/// Sentinel key for nodes that post nothing: text nodes, and elements
/// with empty direct text.
const UNPOSTED: u64 = u64::MAX;

/// Length-strengthened rolling hash of a text value, folded away from the
/// [`UNPOSTED`] sentinel so every real value owns a valid key. Collisions
/// merge posting lists (superset answers) — tolerated by design, the
/// evaluator's exact comparison is authoritative.
fn text_key(s: &str) -> u64 {
    let mut h: u64 = s.len() as u64;
    for b in s.bytes() {
        h = h.wrapping_mul(B).wrapping_add(b as u64 + 1);
    }
    if h == UNPOSTED {
        UNPOSTED - 1
    } else {
        h
    }
}

/// The posting key of `node` in `doc`: [`UNPOSTED`] for text nodes and
/// text-less elements, the value hash otherwise.
fn key_of(doc: &Document, node: NodeId) -> u64 {
    if !doc.is_element(node) {
        return UNPOSTED;
    }
    let text = doc.direct_text_cow(node);
    if text.is_empty() {
        UNPOSTED
    } else {
        text_key(&text)
    }
}

/// Text-value posting index over one document.
#[derive(Clone, Debug, Default)]
pub struct ValueIndex {
    /// `(label id, value key) -> sorted pre-order ids` of elements with
    /// that label whose direct text hashes to that key. Lists are never
    /// empty.
    lists: HashMap<(u32, u64), Vec<u32>>,
    /// Per node: its posting key ([`UNPOSTED`] when the node posts
    /// nothing). Lets [`ValueIndex::patched`] re-key the splice parent
    /// without the pre-edit document.
    node_key: Vec<u64>,
}

impl ValueIndex {
    /// Builds the index over `doc` in one descending pass (children before
    /// parents, mirroring [`crate::LabelIndex::build`]).
    pub fn build(doc: &Document) -> ValueIndex {
        let n = doc.node_count();
        let mut lists: HashMap<(u32, u64), Vec<u32>> = HashMap::new();
        let mut node_key = vec![UNPOSTED; n];
        for raw in (0..n as u32).rev() {
            let node = NodeId(raw);
            let key = key_of(doc, node);
            node_key[raw as usize] = key;
            if key == UNPOSTED {
                continue;
            }
            let label = doc.label(node).expect("posted nodes are elements");
            lists.entry((label.0, key)).or_default().push(raw);
        }
        for list in lists.values_mut() {
            list.reverse(); // descending pass pushed ids in reverse
        }
        ValueIndex { lists, node_key }
    }

    /// Incrementally maintains the index across one structural edit (same
    /// contract as [`crate::LabelIndex::patched`]): splice the contiguous
    /// id window out of every posting list, collect the window's fresh
    /// postings, shift the tails — and re-key the splice **parent**, the
    /// only node outside the window whose direct text can change (its set
    /// of text children is the only one the splice touches). Root
    /// replacement rewrites every id, so it falls back to a rebuild.
    pub fn patched(&self, new_doc: &Document, span: &EditSpan) -> ValueIndex {
        let Some(parent) = span.parent else {
            return ValueIndex::build(new_doc);
        };
        let start = span.start as usize;
        let removed = span.removed as usize;
        let inserted = span.inserted as usize;
        let new_n = new_doc.node_count();
        debug_assert_eq!(
            self.node_key.len() - removed + inserted,
            new_n,
            "edit span does not describe this document pair"
        );
        let delta = inserted as i64 - removed as i64;
        let shift = |v: u32| (v as i64 + delta) as u32;

        // Per key: keep the pre-window prefix now, remember where the tail
        // begins, append shifted tails after the window postings land so
        // each list stays sorted by construction (prefix < window < tail).
        let mut lists: HashMap<(u32, u64), Vec<u32>> =
            HashMap::with_capacity(self.lists.len() + inserted);
        let mut tails: Vec<((u32, u64), usize)> = Vec::with_capacity(self.lists.len());
        for (&k, old_list) in &self.lists {
            let keep = old_list.partition_point(|&x| (x as usize) < start);
            let tail = old_list.partition_point(|&x| (x as usize) < start + removed);
            if keep > 0 {
                lists.insert(k, old_list[..keep].to_vec());
            }
            if tail < old_list.len() {
                tails.push((k, tail));
            }
        }

        // -- node keys ---------------------------------------------------
        let mut node_key = Vec::with_capacity(new_n);
        node_key.extend_from_slice(&self.node_key[..start]);
        node_key.resize(start + inserted, UNPOSTED);
        node_key.extend_from_slice(&self.node_key[start + removed..]);

        // -- splice-parent re-key ----------------------------------------
        // `parent` precedes the window (span contract), so its id is valid
        // in both documents and its old postings sit in some kept prefix.
        // Under the current element-only edit ops its concatenated direct
        // text is actually invariant (a boundary text merge preserves the
        // concatenation), but re-keying one node is cheap and keeps this
        // code correct on its own terms.
        let old_key = self.node_key[parent.index()];
        let new_key = key_of(new_doc, parent);
        if old_key != new_key {
            node_key[parent.index()] = new_key;
            let label = new_doc.label(parent).expect("splice parent is an element");
            if old_key != UNPOSTED {
                if let Some(list) = lists.get_mut(&(label.0, old_key)) {
                    if let Ok(pos) = list.binary_search(&parent.0) {
                        list.remove(pos);
                        if list.is_empty() {
                            lists.remove(&(label.0, old_key));
                        }
                    }
                }
            }
            if new_key != UNPOSTED {
                let list = lists.entry((label.0, new_key)).or_default();
                let pos = list.partition_point(|&x| x < parent.0);
                list.insert(pos, parent.0);
            }
        }

        // -- window postings ---------------------------------------------
        for (raw, slot) in node_key.iter_mut().enumerate().skip(start).take(inserted) {
            let node = NodeId(raw as u32);
            let key = key_of(new_doc, node);
            *slot = key;
            if key == UNPOSTED {
                continue;
            }
            let label = new_doc.label(node).expect("posted nodes are elements");
            lists.entry((label.0, key)).or_default().push(raw as u32);
        }

        // -- shifted tails -----------------------------------------------
        for (k, tail) in tails {
            let old_list = &self.lists[&k];
            lists
                .entry(k)
                .or_default()
                .extend(old_list[tail..].iter().map(|&x| shift(x)));
        }

        ValueIndex { lists, node_key }
    }

    /// Sorted pre-order ids of elements labelled `label` whose direct text
    /// equals `text` — plus any hash-colliding values (callers verify).
    /// Empty for the empty string: text-less elements post nothing.
    #[inline]
    pub fn occurrences(&self, label: Label, text: &str) -> &[u32] {
        if text.is_empty() {
            return &[];
        }
        self.lists
            .get(&(label.0, text_key(text)))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Number of nodes covered.
    pub fn node_count(&self) -> usize {
        self.node_key.len()
    }

    /// Number of distinct `(label, value)` posting lists.
    pub fn distinct_postings(&self) -> usize {
        self.lists.len()
    }

    /// Total posted occurrences across all lists.
    pub fn total_occurrences(&self) -> usize {
        self.lists.values().map(Vec::len).sum()
    }

    /// Per-label posting statistics, sorted by label id: `(label id,
    /// distinct values, posted occurrences)`. Labels with no postings are
    /// omitted.
    pub fn label_stats(&self) -> Vec<(u32, usize, usize)> {
        let mut per_label: HashMap<u32, (usize, usize)> = HashMap::new();
        for (&(label, _), list) in &self.lists {
            let e = per_label.entry(label).or_insert((0, 0));
            e.0 += 1;
            e.1 += list.len();
        }
        let mut out: Vec<(u32, usize, usize)> =
            per_label.into_iter().map(|(l, (d, o))| (l, d, o)).collect();
        out.sort_unstable();
        out
    }

    /// Approximate in-memory footprint in bytes: posting ids, per-list
    /// key/header overhead, and the per-node key array.
    pub fn memory_bytes(&self) -> usize {
        let list_bytes: usize = self
            .lists
            .values()
            .map(|l| l.len() * 4 + std::mem::size_of::<((u32, u64), Vec<u32>)>())
            .sum();
        list_bytes + self.node_key.len() * 8
    }
}

/// Intersects two sorted ascending id lists by galloping: each probe
/// doubles its stride through the longer list, so the cost is
/// `O(|small| · log |big|)` — the regime posting-list ∩ occurrence-list
/// intersections live in (a selective value list against a big label
/// list).
pub fn gallop_intersect(a: &[u32], b: &[u32]) -> Vec<u32> {
    let (small, big) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    let mut out = Vec::with_capacity(small.len());
    let mut lo = 0usize;
    for &x in small {
        // Gallop to the first big index with big[i] >= x.
        let mut step = 1usize;
        let mut hi = lo;
        while hi < big.len() && big[hi] < x {
            lo = hi + 1;
            hi = lo + step;
            step <<= 1;
        }
        let hi = hi.min(big.len());
        lo += big[lo..hi].partition_point(|&y| y < x);
        if lo < big.len() && big[lo] == x {
            out.push(x);
            lo += 1;
        }
        if lo >= big.len() {
            break;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use smoqe_xml::Vocabulary;

    fn doc(xml: &str) -> (Vocabulary, Document) {
        let vocab = Vocabulary::new();
        let d = Document::parse_str(xml, &vocab).unwrap();
        (vocab, d)
    }

    /// Brute-force check: every element's (label, direct-text) posting is
    /// present, nothing else is, and every list is sorted.
    fn assert_matches_document(idx: &ValueIndex, d: &Document) {
        assert_eq!(idx.node_count(), d.node_count());
        let mut want: HashMap<(u32, u64), Vec<u32>> = HashMap::new();
        for n in d.all_nodes() {
            let key = key_of(d, n);
            assert_eq!(idx.node_key[n.index()], key, "node key of {n:?}");
            if key != UNPOSTED {
                let label = d.label(n).unwrap();
                want.entry((label.0, key)).or_default().push(n.0);
            }
        }
        assert_eq!(idx.lists.len(), want.len(), "posting list count");
        for (k, list) in &want {
            assert_eq!(idx.lists.get(k), Some(list), "postings of {k:?}");
        }
        for n in d.all_nodes() {
            if !d.is_element(n) {
                continue;
            }
            let text = d.direct_text(n);
            if text.is_empty() {
                continue;
            }
            let label = d.label(n).unwrap();
            assert!(
                idx.occurrences(label, &text).contains(&n.0),
                "occurrences({label:?}, {text:?}) misses {n:?}"
            );
        }
    }

    #[test]
    fn build_posts_labeled_values() {
        let (vocab, d) = doc("<a><b>x</b><b>y</b><c>x</c><b>x</b><d/>t</a>");
        let idx = ValueIndex::build(&d);
        assert_matches_document(&idx, &d);
        let b = vocab.lookup("b").unwrap();
        let c = vocab.lookup("c").unwrap();
        assert_eq!(idx.occurrences(b, "x").len(), 2);
        assert_eq!(idx.occurrences(b, "y").len(), 1);
        assert_eq!(idx.occurrences(c, "x").len(), 1);
        assert_eq!(idx.occurrences(b, "z"), &[] as &[u32]);
        assert_eq!(idx.occurrences(b, ""), &[] as &[u32]);
    }

    #[test]
    fn split_direct_text_posts_the_concatenation() {
        // Direct text around a child element concatenates — the same
        // shape the evaluator's authoritative comparison uses.
        let (vocab, d) = doc("<a><b>x<c/>y</b></a>");
        let idx = ValueIndex::build(&d);
        let b = vocab.lookup("b").unwrap();
        assert_eq!(idx.occurrences(b, "xy").len(), 1);
        assert_eq!(idx.occurrences(b, "x"), &[] as &[u32]);
    }

    #[test]
    fn patched_matches_rebuild_for_every_target_and_op() {
        let (vocab, d) = doc("<a><b>x</b><b><c>y</c>z</b><d>x</d><b><e/>w</b></a>");
        let idx = ValueIndex::build(&d);
        let frag = Document::parse_str("<f><g>x</g>t</f>", &vocab).unwrap();
        for target in d.all_nodes().filter(|&n| d.is_element(n)) {
            if target != d.root() {
                let (nd, span) = smoqe_xml::delete_subtree(&d, target).unwrap();
                assert_matches_document(&idx.patched(&nd, &span), &nd);
                for place in [
                    smoqe_xml::SplicePlace::Into,
                    smoqe_xml::SplicePlace::Before,
                    smoqe_xml::SplicePlace::After,
                ] {
                    let (nd, span) = smoqe_xml::insert_fragment(&d, target, place, &frag).unwrap();
                    assert_matches_document(&idx.patched(&nd, &span), &nd);
                }
            }
            let (nd, span) = smoqe_xml::replace_subtree(&d, target, &frag).unwrap();
            assert_matches_document(&idx.patched(&nd, &span), &nd);
        }
    }

    #[test]
    fn patched_root_replacement_falls_back_to_rebuild() {
        let (vocab, d) = doc("<a><b>x</b></a>");
        let idx = ValueIndex::build(&d);
        let frag = Document::parse_str("<a><zz>x</zz></a>", &vocab).unwrap();
        let (nd, span) = smoqe_xml::replace_subtree(&d, d.root(), &frag).unwrap();
        assert!(span.parent.is_none(), "root replacement has no parent");
        assert_matches_document(&idx.patched(&nd, &span), &nd);
    }

    #[test]
    fn patched_handles_text_merge_spans() {
        // The PR 2 split-text drift case, now for value postings: deleting
        // `b` merges the surrounding texts into one node. The parent's
        // concatenated value is preserved but every positional invariant
        // shifts, and the swallowed text node sits inside the window.
        let (vocab, d) = doc("<a>x<b><c/></b>y<d/></a>");
        let idx = ValueIndex::build(&d);
        let a = vocab.lookup("a").unwrap();
        assert_eq!(idx.occurrences(a, "xy").len(), 1, "pre-edit concat");
        let b = d.nodes_labeled(vocab.lookup("b").unwrap()).next().unwrap();
        let (nd, span) = smoqe_xml::delete_subtree(&d, b).unwrap();
        assert_eq!(span.removed, 3, "subtree plus the merged text node");
        let patched = idx.patched(&nd, &span);
        assert_matches_document(&patched, &nd);
        assert_eq!(patched.occurrences(a, "xy").len(), 1, "post-edit concat");
    }

    #[test]
    fn patched_handles_text_only_replace() {
        // A replace that changes a node's text without changing structure:
        // the window covers the element and its text child, and the lists
        // must move the posting from the old value to the new one.
        let (vocab, d) = doc("<r><p>Ann</p><p>Bob</p></r>");
        let idx = ValueIndex::build(&d);
        let p = vocab.lookup("p").unwrap();
        let target = d.nodes_labeled(p).next().unwrap();
        let frag = Document::parse_str("<p>Amy</p>", &vocab).unwrap();
        let (nd, span) = smoqe_xml::replace_subtree(&d, target, &frag).unwrap();
        assert_eq!(span.removed, span.inserted, "structure preserved");
        let patched = idx.patched(&nd, &span);
        assert_matches_document(&patched, &nd);
        assert_eq!(patched.occurrences(p, "Ann"), &[] as &[u32]);
        assert_eq!(patched.occurrences(p, "Amy").len(), 1);
        assert_eq!(patched.occurrences(p, "Bob").len(), 1);
    }

    #[test]
    fn patched_chains_across_successive_edits() {
        let (vocab, d) = doc("<a><b>x</b><b>y</b><d>x</d></a>");
        let mut idx = ValueIndex::build(&d);
        let frag = Document::parse_str("<e>q</e>", &vocab).unwrap();
        let b_label = vocab.lookup("b").unwrap();
        let mut cur = d;
        for _ in 0..2 {
            let target = cur.nodes_labeled(b_label).last().unwrap();
            let (nd, span) = smoqe_xml::replace_subtree(&cur, target, &frag).unwrap();
            idx = idx.patched(&nd, &span);
            assert_matches_document(&idx, &nd);
            cur = nd;
        }
    }

    #[test]
    fn stats_and_memory_are_reported() {
        let (vocab, d) = doc("<a><b>x</b><b>x</b><b>y</b><c>x</c></a>");
        let idx = ValueIndex::build(&d);
        // b has 2 distinct values over 3 occurrences, c has 1 over 1.
        let stats = idx.label_stats();
        let b = vocab.lookup("b").unwrap().0;
        let c = vocab.lookup("c").unwrap().0;
        assert!(stats.contains(&(b, 2, 3)));
        assert!(stats.contains(&(c, 1, 1)));
        assert_eq!(idx.distinct_postings(), 3);
        assert_eq!(idx.total_occurrences(), 4);
        assert!(idx.memory_bytes() >= 4 * 4 + idx.node_count() * 8);
    }

    #[test]
    fn gallop_intersect_matches_linear_merge() {
        let cases: &[(&[u32], &[u32])] = &[
            (&[], &[1, 2, 3]),
            (&[2], &[1, 2, 3]),
            (&[0, 4, 9], &[1, 2, 3]),
            (&[1, 3, 5, 7, 9], &[2, 3, 4, 7, 10, 11]),
            (&[5], &[0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12]),
        ];
        for (a, b) in cases {
            let want: Vec<u32> = a.iter().filter(|x| b.contains(x)).copied().collect();
            assert_eq!(gallop_intersect(a, b), want, "a={a:?} b={b:?}");
            assert_eq!(gallop_intersect(b, a), want, "swapped a={a:?} b={b:?}");
        }
    }
}
