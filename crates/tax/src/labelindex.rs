//! The positional label index: the data jump-scan evaluation runs on.
//!
//! [`crate::TaxIndex`] answers *"which labels occur below this node?"* —
//! enough to prune a subtree the traversal is already standing on, but the
//! traversal still has to walk to it. The [`LabelIndex`] adds the
//! positional complement so an evaluator can *jump*:
//!
//! * **per-label occurrence lists** — for every label, the sorted pre-order
//!   ids of the elements carrying it. "The next `test` element at or after
//!   position p" is one binary search;
//! * **`subtree_end`** — for every node, one past the last pre-order id of
//!   its subtree. Node ids are document order, so `[n, subtree_end(n))` *is*
//!   the subtree, and "skip this entire subtree" is a cursor assignment;
//! * **`level`** — every node's depth, so drivers can reconstruct ancestor
//!   relationships without touching the tree.
//!
//! Built in the same bottom-up pass as the TAX descendant-label sets (see
//! [`crate::TaxIndex::build`]) and maintained through
//! [`LabelIndex::patched`] across structural edits. An edit that replaces
//! the document root invalidates every positional invariant at once, so
//! that case falls back to a full rebuild instead of splicing.

use smoqe_xml::{Document, EditSpan, Label, NodeId};

/// Positional index over one document: per-label sorted pre-order id
/// lists plus per-node `subtree_end` / `level` arrays.
#[derive(Clone, Debug)]
pub struct LabelIndex {
    /// `label id -> sorted pre-order ids of elements with that label`.
    pub(crate) lists: Vec<Vec<u32>>,
    /// Per node: one past the last pre-order id of the node's subtree.
    pub(crate) subtree_end: Vec<u32>,
    /// Per node: depth (root = 0).
    pub(crate) level: Vec<u32>,
}

impl LabelIndex {
    /// Builds the index over `doc` (one bottom-up pass for the occurrence
    /// lists and subtree ends, one forward pass for the levels).
    pub fn build(doc: &Document) -> LabelIndex {
        let n = doc.node_count();
        let mut lists = vec![Vec::new(); doc.vocabulary().len()];
        let mut subtree_end = vec![0u32; n];
        // Children have larger ids than their parent, so a descending pass
        // sees every child's end before the parent needs it.
        for raw in (0..n as u32).rev() {
            let node = NodeId(raw);
            let mut end = raw + 1;
            for c in doc.children(node) {
                end = end.max(subtree_end[c.index()]);
            }
            subtree_end[raw as usize] = end;
            if let Some(l) = doc.label(node) {
                lists[l.index()].push(raw);
            }
        }
        for list in &mut lists {
            list.reverse(); // descending pass pushed ids in reverse
        }
        LabelIndex {
            lists,
            subtree_end,
            level: levels_of(doc),
        }
    }

    /// Incrementally maintains the index across one structural edit (same
    /// contract as [`crate::TaxIndex::patched`]): splice the id window,
    /// shift everything after it, recompute subtree ends only for the
    /// window and the splice point's ancestor chain.
    ///
    /// An edit whose span touches the **root** (`span.parent == None`,
    /// i.e. the root itself was replaced) rewrites the whole id space and
    /// every positional invariant with it, so it falls back to a full
    /// [`LabelIndex::build`] instead of splicing.
    pub fn patched(&self, new_doc: &Document, span: &EditSpan) -> LabelIndex {
        let Some(parent) = span.parent else {
            return LabelIndex::build(new_doc);
        };
        let start = span.start as usize;
        let removed = span.removed as usize;
        let inserted = span.inserted as usize;
        let new_n = new_doc.node_count();
        debug_assert_eq!(
            self.subtree_end.len() - removed + inserted,
            new_n,
            "edit span does not describe this document pair"
        );
        let delta = inserted as i64 - removed as i64;
        let shift = |v: u32| (v as i64 + delta) as u32;

        // -- subtree ends ------------------------------------------------
        // Pre-window nodes whose subtree reaches past the splice point are
        // exactly the splice ancestors (pre-order ranges nest); shifting
        // them here is provisional, the ancestor walk below recomputes
        // them exactly (which also covers the `end == start` append-into
        // case, where the parent's subtree grows without having contained
        // the window).
        let mut subtree_end = Vec::with_capacity(new_n);
        subtree_end.extend(self.subtree_end[..start].iter().map(|&e| {
            if e as usize > start {
                shift(e)
            } else {
                e
            }
        }));
        subtree_end.resize(start + inserted, 0);
        subtree_end.extend(
            self.subtree_end[start + removed..]
                .iter()
                .map(|&e| shift(e)),
        );
        // The inserted window is one whole subtree: descending order sees
        // children (all inside the window) before parents.
        for raw in (start..start + inserted).rev() {
            let node = NodeId(raw as u32);
            let mut end = raw as u32 + 1;
            for c in new_doc.children(node) {
                end = end.max(subtree_end[c.index()]);
            }
            subtree_end[raw] = end;
        }
        // Ancestors of the splice point, nearest first.
        let mut ancestor = Some(parent);
        while let Some(a) = ancestor {
            let mut end = a.0 + 1;
            for c in new_doc.children(a) {
                end = end.max(subtree_end[c.index()]);
            }
            subtree_end[a.index()] = end;
            ancestor = new_doc.parent(a);
        }

        // -- levels ------------------------------------------------------
        // Depths outside the window are untouched by a splice; window
        // nodes hang off already-correct parents (inside the window or the
        // splice parent).
        let mut level = Vec::with_capacity(new_n);
        level.extend_from_slice(&self.level[..start]);
        level.resize(start + inserted, 0);
        level.extend_from_slice(&self.level[start + removed..]);
        for raw in start..start + inserted {
            let p = new_doc
                .parent(NodeId(raw as u32))
                .expect("window nodes hang below the splice parent");
            level[raw] = level[p.index()] + 1;
        }

        // -- occurrence lists --------------------------------------------
        // Per label: ids before the window survive verbatim, window ids
        // are collected fresh, tail ids shift — and the three segments
        // concatenate in sorted order by construction.
        let num_labels = new_doc.vocabulary().len().max(self.lists.len());
        let mut lists: Vec<Vec<u32>> = Vec::with_capacity(num_labels);
        let mut tails: Vec<usize> = Vec::with_capacity(num_labels);
        for old in 0..num_labels {
            let old_list: &[u32] = self.lists.get(old).map(Vec::as_slice).unwrap_or(&[]);
            let keep = old_list.partition_point(|&x| (x as usize) < start);
            let tail = old_list.partition_point(|&x| (x as usize) < start + removed);
            let mut v = Vec::with_capacity(keep + (old_list.len() - tail));
            v.extend_from_slice(&old_list[..keep]);
            lists.push(v);
            tails.push(tail);
        }
        for raw in start..start + inserted {
            if let Some(l) = new_doc.label(NodeId(raw as u32)) {
                lists[l.index()].push(raw as u32);
            }
        }
        for (old, tail) in tails.into_iter().enumerate() {
            let old_list: &[u32] = self.lists.get(old).map(Vec::as_slice).unwrap_or(&[]);
            lists[old].extend(old_list[tail..].iter().map(|&x| shift(x)));
        }

        LabelIndex {
            lists,
            subtree_end,
            level,
        }
    }

    /// Sorted pre-order ids of the elements labelled `label` (empty for
    /// labels interned after the index was built).
    #[inline]
    pub fn occurrences(&self, label: Label) -> &[u32] {
        self.lists
            .get(label.index())
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// One past the last pre-order id of `node`'s subtree:
    /// `[node, subtree_end(node))` is the subtree.
    #[inline]
    pub fn subtree_end(&self, node: NodeId) -> u32 {
        self.subtree_end[node.index()]
    }

    /// Depth of `node` (root = 0).
    #[inline]
    pub fn level(&self, node: NodeId) -> u32 {
        self.level[node.index()]
    }

    /// Number of nodes covered.
    pub fn node_count(&self) -> usize {
        self.subtree_end.len()
    }

    /// Approximate in-memory footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        let list_bytes: usize = self.lists.iter().map(|l| l.len() * 4).sum();
        list_bytes + self.subtree_end.len() * 4 + self.level.len() * 4
    }
}

/// Per-node depths, one forward pass (parents precede children in id
/// order).
fn levels_of(doc: &Document) -> Vec<u32> {
    let n = doc.node_count();
    let mut level = vec![0u32; n];
    for raw in 0..n as u32 {
        if let Some(p) = doc.parent(NodeId(raw)) {
            level[raw as usize] = level[p.index()] + 1;
        }
    }
    level
}

#[cfg(test)]
mod tests {
    use super::*;
    use smoqe_xml::Vocabulary;

    fn doc(xml: &str) -> (Vocabulary, Document) {
        let vocab = Vocabulary::new();
        let d = Document::parse_str(xml, &vocab).unwrap();
        (vocab, d)
    }

    fn assert_matches_document(idx: &LabelIndex, d: &Document) {
        assert_eq!(idx.node_count(), d.node_count());
        for n in d.all_nodes() {
            assert_eq!(
                idx.subtree_end(n) as usize,
                n.index() + d.subtree_size(n),
                "subtree_end of {n:?}"
            );
            assert_eq!(idx.level(n) as usize, d.depth(n), "level of {n:?}");
        }
        for (li, list) in idx.lists.iter().enumerate() {
            let label = smoqe_xml::Label(li as u32);
            let want: Vec<u32> = d.nodes_labeled(label).map(|n| n.0).collect();
            assert_eq!(list, &want, "occurrence list of label {li}");
            assert!(list.windows(2).all(|w| w[0] < w[1]), "list {li} sorted");
        }
    }

    #[test]
    fn build_matches_document_structure() {
        let (_, d) = doc("<a><b><c/><c/></b>x<d><b>t</b></d></a>");
        assert_matches_document(&LabelIndex::build(&d), &d);
    }

    #[test]
    fn patched_matches_rebuild_for_every_target_and_op() {
        let (vocab, d) = doc("<a><b><c/><c/></b><d>x</d><b><e/></b></a>");
        let idx = LabelIndex::build(&d);
        let frag = Document::parse_str("<f><g/>t</f>", &vocab).unwrap();
        for target in d.all_nodes().filter(|&n| d.is_element(n)) {
            if target != d.root() {
                let (nd, span) = smoqe_xml::delete_subtree(&d, target).unwrap();
                assert_matches_document(&idx.patched(&nd, &span), &nd);
                for place in [
                    smoqe_xml::SplicePlace::Into,
                    smoqe_xml::SplicePlace::Before,
                    smoqe_xml::SplicePlace::After,
                ] {
                    let (nd, span) = smoqe_xml::insert_fragment(&d, target, place, &frag).unwrap();
                    assert_matches_document(&idx.patched(&nd, &span), &nd);
                }
            }
            let (nd, span) = smoqe_xml::replace_subtree(&d, target, &frag).unwrap();
            assert_matches_document(&idx.patched(&nd, &span), &nd);
        }
    }

    #[test]
    fn patched_root_replacement_falls_back_to_rebuild() {
        let (vocab, d) = doc("<a><b/></a>");
        let idx = LabelIndex::build(&d);
        let frag = Document::parse_str("<a><zz><b/></zz></a>", &vocab).unwrap();
        let (nd, span) = smoqe_xml::replace_subtree(&d, d.root(), &frag).unwrap();
        assert!(span.parent.is_none(), "root replacement has no parent");
        assert_matches_document(&idx.patched(&nd, &span), &nd);
    }

    #[test]
    fn patched_handles_append_into_last_child() {
        // The `end == start` case: appending into a node whose subtree
        // previously ended exactly at the splice point — the parent chain
        // must still grow.
        let (vocab, d) = doc("<a><b><c/></b></a>");
        let idx = LabelIndex::build(&d);
        let frag = Document::parse_str("<e/>", &vocab).unwrap();
        let c = d.nodes_labeled(vocab.lookup("c").unwrap()).next().unwrap();
        let (nd, span) =
            smoqe_xml::insert_fragment(&d, c, smoqe_xml::SplicePlace::Into, &frag).unwrap();
        assert_matches_document(&idx.patched(&nd, &span), &nd);
    }

    #[test]
    fn patched_handles_text_merge_spans() {
        let (vocab, d) = doc("<a>x<b><c/></b>y<d/></a>");
        let idx = LabelIndex::build(&d);
        let b = d.nodes_labeled(vocab.lookup("b").unwrap()).next().unwrap();
        let (nd, span) = smoqe_xml::delete_subtree(&d, b).unwrap();
        assert_eq!(span.removed, 3, "subtree plus the merged text node");
        assert_matches_document(&idx.patched(&nd, &span), &nd);
    }

    #[test]
    fn memory_bytes_counts_lists_and_arrays() {
        let (_, d) = doc("<a><b/><b/></a>");
        let idx = LabelIndex::build(&d);
        // 3 occurrences * 4 + 3 ends * 4 + 3 levels * 4.
        assert_eq!(idx.memory_bytes(), 3 * 4 + 3 * 4 + 3 * 4);
    }
}
