//! TAX persistence: compressed on-disk format.
//!
//! Paper §3: *"The SMOQE indexer constructs the TAX index, compresses it
//! before it is stored in disk, and uploads it from disk when needed."*
//!
//! Format (little-endian, versioned):
//!
//! ```text
//! magic "SMOQETAX" | version u32 | label count | label names (len + utf8)
//! | set count | per set: label count + varint label ids
//! | run count | per run: varint length + varint set id       (RLE)
//! ```
//!
//! Two compression layers: sets store their member label ids as varints
//! (instead of raw bitmaps), and the node→set mapping is run-length
//! encoded — sibling leaves share sets, so runs are long. Labels are
//! stored *by name* and remapped on load, so an index saved under one
//! vocabulary loads correctly into any vocabulary containing the same
//! names.

use crate::index::TaxIndex;
use smoqe_xml::{Label, LabelSet, Vocabulary, XmlError};
use std::io::{Read, Write};
use std::path::Path;

const MAGIC: &[u8; 8] = b"SMOQETAX";
const VERSION: u32 = 1;

fn write_u32<W: Write>(w: &mut W, v: u32) -> std::io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn read_u32<R: Read>(r: &mut R) -> std::io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn write_varint<W: Write>(w: &mut W, mut v: u64) -> std::io::Result<()> {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            return w.write_all(&[byte]);
        }
        w.write_all(&[byte | 0x80])?;
    }
}

fn read_varint<R: Read>(r: &mut R) -> std::io::Result<u64> {
    let mut out = 0u64;
    let mut shift = 0;
    loop {
        let mut b = [0u8; 1];
        r.read_exact(&mut b)?;
        out |= ((b[0] & 0x7f) as u64) << shift;
        if b[0] & 0x80 == 0 {
            return Ok(out);
        }
        shift += 7;
        if shift > 63 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "varint too long",
            ));
        }
    }
}

impl TaxIndex {
    /// Serializes the index (compressed) to `writer`.
    pub fn save<W: Write>(&self, writer: &mut W, vocab: &Vocabulary) -> Result<(), XmlError> {
        writer.write_all(MAGIC)?;
        write_u32(writer, VERSION)?;
        // Label names in id order for remapping on load.
        write_u32(writer, self.num_labels)?;
        let names = vocab.snapshot();
        for i in 0..self.num_labels as usize {
            let name = names.get(i).map(|n| n.as_bytes()).unwrap_or(b"");
            write_varint(writer, name.len() as u64)?;
            writer.write_all(name)?;
        }
        // Set table.
        write_u32(writer, self.sets.len() as u32)?;
        for s in &self.sets {
            write_varint(writer, s.len() as u64)?;
            for l in s.iter() {
                write_varint(writer, l.0 as u64)?;
            }
        }
        // RLE node -> set id.
        let mut runs: Vec<(u64, u32)> = Vec::new();
        for &id in &self.node_sets {
            match runs.last_mut() {
                Some((len, last)) if *last == id => *len += 1,
                _ => runs.push((1, id)),
            }
        }
        write_u32(writer, runs.len() as u32)?;
        for (len, id) in runs {
            write_varint(writer, len)?;
            write_varint(writer, id as u64)?;
        }
        writer.flush()?;
        Ok(())
    }

    /// Loads an index from `reader`, remapping labels into `vocab`.
    pub fn load<R: Read>(reader: &mut R, vocab: &Vocabulary) -> Result<TaxIndex, XmlError> {
        let mut magic = [0u8; 8];
        reader.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(XmlError::Invalid("not a TAX index file".to_string()));
        }
        let version = read_u32(reader)?;
        if version != VERSION {
            return Err(XmlError::Invalid(format!(
                "unsupported TAX version {version}"
            )));
        }
        let label_count = read_u32(reader)? as usize;
        let mut remap: Vec<Label> = Vec::with_capacity(label_count);
        for _ in 0..label_count {
            let len = read_varint(reader)? as usize;
            if len > 1 << 20 {
                return Err(XmlError::Invalid("label name too long".to_string()));
            }
            let mut buf = vec![0u8; len];
            reader.read_exact(&mut buf)?;
            let name = String::from_utf8(buf)
                .map_err(|_| XmlError::Invalid("label name not UTF-8".to_string()))?;
            remap.push(vocab.intern(&name));
        }
        let set_count = read_u32(reader)? as usize;
        let mut sets = Vec::with_capacity(set_count);
        for _ in 0..set_count {
            let n = read_varint(reader)? as usize;
            let mut s = LabelSet::with_capacity(vocab.len());
            for _ in 0..n {
                let old = read_varint(reader)? as usize;
                let new = remap
                    .get(old)
                    .copied()
                    .ok_or_else(|| XmlError::Invalid("set references unknown label".to_string()))?;
                s.insert(new);
            }
            sets.push(s);
        }
        let run_count = read_u32(reader)? as usize;
        let mut node_sets = Vec::new();
        for _ in 0..run_count {
            let len = read_varint(reader)?;
            let id = read_varint(reader)? as u32;
            if id as usize >= sets.len() {
                return Err(XmlError::Invalid("run references unknown set".to_string()));
            }
            for _ in 0..len {
                node_sets.push(id);
            }
        }
        Ok(TaxIndex {
            sets,
            node_sets,
            num_labels: vocab.len() as u32,
            // The on-disk format carries only the descendant sets; callers
            // with the document at hand reattach the positional and value
            // indexes via `attach_label_index` (they are cheaper to
            // rebuild than to store).
            labels: None,
            values: None,
        })
    }

    /// Saves to a file path.
    pub fn save_to_file(&self, path: impl AsRef<Path>, vocab: &Vocabulary) -> Result<(), XmlError> {
        let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
        self.save(&mut f, vocab)
    }

    /// Loads from a file path.
    pub fn load_from_file(
        path: impl AsRef<Path>,
        vocab: &Vocabulary,
    ) -> Result<TaxIndex, XmlError> {
        let mut f = std::io::BufReader::new(std::fs::File::open(path)?);
        TaxIndex::load(&mut f, vocab)
    }

    /// Serialized size in bytes (for the compression experiment).
    pub fn serialized_size(&self, vocab: &Vocabulary) -> usize {
        let mut buf = Vec::new();
        self.save(&mut buf, vocab).expect("writing to Vec");
        buf.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smoqe_xml::Document;

    fn sample() -> (Vocabulary, Document, TaxIndex) {
        let vocab = Vocabulary::new();
        let doc = Document::parse_str(
            &format!("<r>{}</r>", "<x><y>t</y></x><z/>".repeat(20)),
            &vocab,
        )
        .unwrap();
        let tax = TaxIndex::build(&doc);
        (vocab, doc, tax)
    }

    #[test]
    fn round_trip_identity() {
        let (vocab, doc, tax) = sample();
        let mut buf = Vec::new();
        tax.save(&mut buf, &vocab).unwrap();
        let loaded = TaxIndex::load(&mut &buf[..], &vocab).unwrap();
        for n in doc.all_nodes() {
            assert_eq!(
                tax.descendant_labels(n).iter().collect::<Vec<_>>(),
                loaded.descendant_labels(n).iter().collect::<Vec<_>>()
            );
        }
        assert_eq!(tax.distinct_sets(), loaded.distinct_sets());
    }

    #[test]
    fn load_remaps_labels_into_fresh_vocabulary() {
        let (vocab, doc, tax) = sample();
        let mut buf = Vec::new();
        tax.save(&mut buf, &vocab).unwrap();
        // A vocabulary with different label numbering.
        let vocab2 = Vocabulary::new();
        vocab2.intern("unrelated");
        vocab2.intern("y");
        let loaded = TaxIndex::load(&mut &buf[..], &vocab2).unwrap();
        let y2 = vocab2.lookup("y").unwrap();
        // Root has y descendants under the new numbering too.
        let root = doc.root();
        assert!(loaded.descendant_labels(root).contains(y2));
    }

    #[test]
    fn rle_compresses_repetitive_documents() {
        let (vocab, _, tax) = sample();
        let size = tax.serialized_size(&vocab);
        // 121 nodes; raw set ids alone would be 484 bytes.
        assert!(size < 300, "serialized {size} bytes");
    }

    #[test]
    fn corrupt_magic_rejected() {
        let vocab = Vocabulary::new();
        let mut data = b"NOTATAX!".to_vec();
        data.extend([0; 16]);
        assert!(TaxIndex::load(&mut &data[..], &vocab).is_err());
    }

    #[test]
    fn truncated_file_rejected() {
        let (vocab, _, tax) = sample();
        let mut buf = Vec::new();
        tax.save(&mut buf, &vocab).unwrap();
        buf.truncate(buf.len() / 2);
        assert!(TaxIndex::load(&mut &buf[..], &vocab).is_err());
    }

    #[test]
    fn file_round_trip() {
        let (vocab, _, tax) = sample();
        let dir = std::env::temp_dir().join("smoqe-tax-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.tax");
        tax.save_to_file(&path, &vocab).unwrap();
        let loaded = TaxIndex::load_from_file(&path, &vocab).unwrap();
        assert_eq!(loaded.node_count(), tax.node_count());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn varint_round_trip() {
        for v in [0u64, 1, 127, 128, 300, 1 << 20, u32::MAX as u64] {
            let mut buf = Vec::new();
            write_varint(&mut buf, v).unwrap();
            assert_eq!(read_varint(&mut &buf[..]).unwrap(), v);
        }
    }
}
