//! # smoqe-tax — the Type-Aware XML index
//!
//! TAX (paper §3, "Indexer") records, for every node of a document, the
//! set of element types occurring in its subtree. During HyPE evaluation
//! the engine intersects a run's *required* labels with a subtree's
//! *available* labels and skips subtrees that cannot contribute — "pruning
//! large document subtrees during the evaluation of XPath queries with or
//! without '//'".
//!
//! * [`TaxIndex::build`] — one bottom-up pass, with descendant-type sets
//!   interned (documents have few distinct sets);
//! * [`LabelIndex`] — the positional complement built in the same pass:
//!   per-label sorted pre-order id lists plus per-node subtree ends and
//!   levels, which jump-scan evaluation (`smoqe_hype::jump`) binary-
//!   searches to visit only candidate subtrees;
//! * [`ValueIndex`] — per-(label, text-value) posting lists (hashed
//!   values with evaluator-side verification), which turn `text() = 'v'`
//!   leaf predicates into posting-list lookups instead of full walks;
//! * [`TaxIndex::save`] / [`TaxIndex::load`] — compressed, versioned
//!   on-disk format (varint sets + run-length-encoded node table), with
//!   label names stored symbolically so indexes survive vocabulary
//!   renumbering.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod index;
pub mod labelindex;
pub mod persist;
pub mod valueindex;

pub use index::TaxIndex;
pub use labelindex::LabelIndex;
pub use valueindex::{gallop_intersect, ValueIndex};
