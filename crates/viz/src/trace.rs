//! Trace collection: recording what the evaluator did.
//!
//! iSMOQE "marks nodes in an XML document with different colors,
//! indicating whether or not a node is visited during the query
//! evaluation, whether or not it is put in the auxiliary structure Cans,
//! and which optimization techniques contribute to its pruning" (§3). The
//! [`TraceCollector`] hooks into the evaluator via
//! [`EvalObserver`] and records exactly those facts; the renderers in
//! [`crate::ascii`] and [`crate::dot`] turn them into pictures.

use smoqe_hype::{EvalObserver, PruneReason};
use smoqe_xml::Label;
use std::collections::HashMap;

/// The fate of a node during evaluation (the "color" of iSMOQE).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NodeFate {
    /// Never reached (parent pruned or traversal ended first).
    Untouched,
    /// Entered by the traversal.
    Visited,
    /// Parked in Cans, later rejected.
    CandidateRejected,
    /// Parked in Cans, later kept.
    CandidateKept,
    /// Answer proven immediately at discovery.
    ImmediateAnswer,
    /// Subtree skipped because all runs died.
    PrunedDead,
    /// Subtree skipped thanks to the TAX index.
    PrunedTax,
}

/// One recorded event, in order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// Node entered at the given depth.
    Enter {
        /// Node id.
        node: u32,
        /// Element label.
        label: Label,
        /// Depth in the tree.
        depth: usize,
    },
    /// Node left.
    Leave {
        /// Node id.
        node: u32,
    },
    /// A subtree was skipped.
    Pruned {
        /// Root of the skipped subtree.
        node: u32,
        /// Why it was skipped.
        reason: PruneReason,
    },
    /// A candidate was discovered.
    Candidate {
        /// The candidate node.
        node: u32,
        /// Whether it was provable immediately.
        immediate: bool,
    },
    /// A predicate instance was spawned at a node.
    InstanceSpawned {
        /// Instance id.
        inst: usize,
        /// Node it is pinned to.
        node: u32,
    },
    /// A predicate instance resolved.
    InstanceResolved {
        /// Instance id.
        inst: usize,
        /// Its truth value.
        value: bool,
    },
    /// The final Cans pass decided a candidate.
    CandidateResolved {
        /// The candidate node.
        node: u32,
        /// Whether it is in the answer.
        kept: bool,
    },
}

/// Collects evaluation events and per-node fates.
#[derive(Default, Debug)]
pub struct TraceCollector {
    /// All events in occurrence order.
    pub events: Vec<TraceEvent>,
    fates: HashMap<u32, NodeFate>,
}

impl TraceCollector {
    /// An empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// The fate of a node after evaluation.
    pub fn fate(&self, node: u32) -> NodeFate {
        self.fates
            .get(&node)
            .copied()
            .unwrap_or(NodeFate::Untouched)
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

impl EvalObserver for TraceCollector {
    fn enter_node(&mut self, node: u32, label: Label, depth: usize) {
        self.events.push(TraceEvent::Enter { node, label, depth });
        self.fates.entry(node).or_insert(NodeFate::Visited);
    }

    fn leave_node(&mut self, node: u32) {
        self.events.push(TraceEvent::Leave { node });
    }

    fn subtree_pruned(&mut self, parent: u32, _label: Label, reason: PruneReason) {
        self.events.push(TraceEvent::Pruned {
            node: parent,
            reason,
        });
        self.fates.insert(
            parent,
            match reason {
                PruneReason::DeadRuns => NodeFate::PrunedDead,
                PruneReason::TaxIndex => NodeFate::PrunedTax,
            },
        );
    }

    fn candidate(&mut self, node: u32, immediate: bool) {
        self.events.push(TraceEvent::Candidate { node, immediate });
        if immediate {
            self.fates.insert(node, NodeFate::ImmediateAnswer);
        }
    }

    fn instance_spawned(&mut self, inst: usize, node: u32) {
        self.events.push(TraceEvent::InstanceSpawned { inst, node });
    }

    fn instance_resolved(&mut self, inst: usize, value: bool) {
        self.events
            .push(TraceEvent::InstanceResolved { inst, value });
    }

    fn candidate_resolved(&mut self, node: u32, kept: bool) {
        self.events
            .push(TraceEvent::CandidateResolved { node, kept });
        self.fates.insert(
            node,
            if kept {
                NodeFate::CandidateKept
            } else {
                NodeFate::CandidateRejected
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smoqe_automata::compile;
    use smoqe_hype::dom::{evaluate_mfa_with, DomOptions};
    use smoqe_rxpath::parse_path;
    use smoqe_xml::{Document, Vocabulary};

    #[test]
    fn collects_fates_for_q_with_predicate() {
        let vocab = Vocabulary::new();
        let doc = Document::parse_str("<a><b><x/><w/></b><b><x/></b></a>", &vocab).unwrap();
        let path = parse_path("a/b[w]/x", &vocab).unwrap();
        let mfa = compile(&path, &vocab);
        let mut trace = TraceCollector::new();
        let (answers, _) = evaluate_mfa_with(&doc, &mfa, &DomOptions::default(), &mut trace);
        assert_eq!(answers.len(), 1);
        // First x (node 2) kept, second x (node 5) rejected.
        assert_eq!(trace.fate(2), NodeFate::CandidateKept);
        assert_eq!(trace.fate(5), NodeFate::CandidateRejected);
        assert_eq!(trace.fate(0), NodeFate::Visited);
        assert!(!trace.is_empty());
    }

    #[test]
    fn records_pruned_subtrees() {
        let vocab = Vocabulary::new();
        let doc = Document::parse_str("<a><z><b/></z><b/></a>", &vocab).unwrap();
        let path = parse_path("a/b", &vocab).unwrap();
        let mfa = compile(&path, &vocab);
        let mut trace = TraceCollector::new();
        evaluate_mfa_with(&doc, &mfa, &DomOptions::default(), &mut trace);
        // The z subtree was skipped (dead runs).
        assert_eq!(trace.fate(1), NodeFate::PrunedDead);
        assert_eq!(trace.fate(2), NodeFate::Untouched);
    }
}
