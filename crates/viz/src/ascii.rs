//! Text renderers: MFAs, annotated document trees, evaluation traces.
//!
//! These are the terminal-friendly stand-ins for the iSMOQE windows
//! (DESIGN.md §4): Fig. 4's automaton view becomes [`mfa_listing`],
//! Fig. 5's evaluation view becomes [`annotated_tree`] over a
//! [`TraceCollector`](crate::trace::TraceCollector), and Fig. 6's index
//! view is [`smoqe_tax::TaxIndex::summary`].

use crate::trace::{NodeFate, TraceCollector};
use smoqe_automata::{LabelTest, Mfa, Nfa, NfaId, Pred};
use smoqe_xml::{Document, NodeId, Vocabulary};
use std::fmt::Write as _;

/// Renders an MFA as a readable listing: every NFA with its states,
/// transitions and guards, then the predicate table.
pub fn mfa_listing(mfa: &Mfa) -> String {
    let vocab = mfa.vocabulary();
    let mut out = String::new();
    let _ = writeln!(out, "MFA: {}", mfa.stats());
    for (id, nfa) in mfa.nfas() {
        let role = if id == mfa.top() {
            "selection path"
        } else {
            "predicate path"
        };
        let _ = writeln!(
            out,
            "N{} ({role}): start s{}, accept s{}",
            id.0,
            nfa.start().0,
            nfa.accept().0
        );
        for s in nfa.states() {
            for t in nfa.transitions(s) {
                let test = match t.test {
                    LabelTest::Label(l) => vocab.name(l).to_string(),
                    LabelTest::Wildcard => "*".to_string(),
                };
                let _ = writeln!(out, "  s{} --{}--> s{}", s.0, test, t.target.0);
            }
            for e in nfa.eps_edges(s) {
                match e.guard {
                    None => {
                        let _ = writeln!(out, "  s{} ==eps==> s{}", s.0, e.target.0);
                    }
                    Some(g) => {
                        let _ = writeln!(out, "  s{} ==[P{}]==> s{}", s.0, g.0, e.target.0);
                    }
                }
            }
        }
    }
    if mfa.pred_count() > 0 {
        let _ = writeln!(out, "predicates:");
        for (id, p) in mfa.preds() {
            let desc = match p {
                Pred::True => "true".to_string(),
                Pred::TextEq(c) => format!("text() = '{c}'"),
                Pred::HasPath(n) => format!("has-path N{}", n.0),
                Pred::Not(q) => format!("not P{}", q.0),
                Pred::And(qs) => format!(
                    "and({})",
                    qs.iter()
                        .map(|q| format!("P{}", q.0))
                        .collect::<Vec<_>>()
                        .join(", ")
                ),
                Pred::Or(qs) => format!(
                    "or({})",
                    qs.iter()
                        .map(|q| format!("P{}", q.0))
                        .collect::<Vec<_>>()
                        .join(", ")
                ),
            };
            let _ = writeln!(out, "  P{}: {desc}", id.0);
        }
    }
    out
}

fn fate_marker(fate: NodeFate) -> &'static str {
    match fate {
        NodeFate::Untouched => "  ",
        NodeFate::Visited => "v ",
        NodeFate::CandidateRejected => "c-",
        NodeFate::CandidateKept => "A*",
        NodeFate::ImmediateAnswer => "A!",
        NodeFate::PrunedDead => "x-",
        NodeFate::PrunedTax => "xT",
    }
}

/// Renders the document tree with per-node evaluation markers
/// (the Fig. 5 "colors"):
///
/// * `A!` immediate answer, `A*` answer via Cans, `c-` candidate rejected,
/// * `v` visited, `x-` pruned (dead runs), `xT` pruned (TAX), blank =
///   never reached.
pub fn annotated_tree(doc: &Document, trace: &TraceCollector) -> String {
    let vocab = doc.vocabulary();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "legend: A! answer  A* answer(Cans)  c- rejected  v visited  x- dead  xT TAX-pruned"
    );
    render_node(doc, doc.root(), vocab, trace, 0, &mut out);
    out
}

fn render_node(
    doc: &Document,
    node: NodeId,
    vocab: &Vocabulary,
    trace: &TraceCollector,
    depth: usize,
    out: &mut String,
) {
    let marker = fate_marker(trace.fate(node.0));
    let indent = "  ".repeat(depth);
    match doc.label(node) {
        Some(l) => {
            let _ = writeln!(out, "{marker} {indent}<{}> (n{})", vocab.name(l), node.0);
            for c in doc.children(node) {
                render_node(doc, c, vocab, trace, depth + 1, out);
            }
        }
        None => {
            let text = doc.text(node).unwrap_or_default();
            let short: String = text.chars().take(24).collect();
            let _ = writeln!(out, "{marker} {indent}\"{short}\"");
        }
    }
}

/// A step-by-step textual log of the evaluation (the "window into the
/// blackbox of query processing").
pub fn trace_log(trace: &TraceCollector, vocab: &Vocabulary) -> String {
    use crate::trace::TraceEvent::*;
    let mut out = String::new();
    for e in &trace.events {
        let line = match e {
            Enter { node, label, depth } => format!(
                "{}enter <{}> (n{node})",
                "  ".repeat(*depth),
                vocab.name(*label)
            ),
            Leave { node } => format!("leave n{node}"),
            Pruned { node, reason } => format!("prune subtree at n{node} ({reason:?})"),
            Candidate { node, immediate } => {
                if *immediate {
                    format!("answer n{node} (immediate)")
                } else {
                    format!("candidate n{node} -> Cans")
                }
            }
            InstanceSpawned { inst, node } => format!("spawn predicate instance #{inst} @ n{node}"),
            InstanceResolved { inst, value } => format!("instance #{inst} = {value}"),
            CandidateResolved { node, kept } => {
                format!("Cans: n{node} {}", if *kept { "kept" } else { "dropped" })
            }
        };
        let _ = writeln!(out, "{line}");
    }
    out
}

/// Short textual description of one NFA (used in experiment output).
pub fn nfa_summary(mfa: &Mfa, id: NfaId) -> String {
    let nfa: &Nfa = mfa.nfa(id);
    format!(
        "N{}: {} states, {} transitions, {} eps",
        id.0,
        nfa.state_count(),
        nfa.transition_count(),
        nfa.eps_count()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use smoqe_automata::compile;
    use smoqe_hype::dom::{evaluate_mfa_with, DomOptions};
    use smoqe_rxpath::parse_path;
    use smoqe_xml::Vocabulary;

    fn trace_for(xml: &str, q: &str) -> (Document, TraceCollector, Vocabulary) {
        let vocab = Vocabulary::new();
        let doc = Document::parse_str(xml, &vocab).unwrap();
        let path = parse_path(q, &vocab).unwrap();
        let mfa = compile(&path, &vocab);
        let mut trace = TraceCollector::new();
        evaluate_mfa_with(&doc, &mfa, &DomOptions::default(), &mut trace);
        (doc, trace, vocab)
    }

    #[test]
    fn listing_shows_structure() {
        let vocab = Vocabulary::new();
        let path = parse_path("a/b[c = 'v']", &vocab).unwrap();
        let mfa = compile(&path, &vocab);
        let listing = mfa_listing(&mfa);
        assert!(listing.contains("selection path"));
        assert!(listing.contains("predicate path"));
        assert!(listing.contains("--a-->"));
        assert!(listing.contains("text() = 'v'"));
        assert!(listing.contains("has-path"));
    }

    #[test]
    fn annotated_tree_marks_answers_and_pruning() {
        let (doc, trace, _) = trace_for("<a><z><b/></z><b>t</b></a>", "a/b");
        let tree = annotated_tree(&doc, &trace);
        assert!(tree.contains("A! "), "missing answer marker:\n{tree}");
        assert!(tree.contains("x- "), "missing prune marker:\n{tree}");
        assert!(tree.contains("<a>"));
        assert!(tree.contains("\"t\""));
    }

    #[test]
    fn trace_log_is_chronological() {
        let (_, trace, vocab) = trace_for("<a><b><w/></b></a>", "a/b[w]");
        let log = trace_log(&trace, &vocab);
        let enter_pos = log.find("enter <a>").unwrap();
        let cand_pos = log.find("candidate").unwrap();
        let kept_pos = log.find("kept").unwrap();
        assert!(enter_pos < cand_pos && cand_pos < kept_pos, "{log}");
    }
}
