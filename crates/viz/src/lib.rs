//! # smoqe-viz — visualization (the iSMOQE substitute)
//!
//! The original demo shipped a Java GUI (iSMOQE) that visualized queries,
//! automata, indexes and the internals of query evaluation (paper §2–§3,
//! Figs. 2, 4(b), 5, 6). Per the reproduction plan (DESIGN.md §4) this
//! crate renders the same artifacts as text and Graphviz DOT:
//!
//! * [`trace::TraceCollector`] — an [`EvalObserver`](smoqe_hype::EvalObserver)
//!   recording visits, candidates, prunings and predicate instances;
//! * [`ascii`] — MFA listings, annotated trees ("node colors"),
//!   chronological trace logs;
//! * [`dot`] — DOT digraphs of MFAs (NFA clusters + dashed AFA links,
//!   Fig. 4(a)) and of documents colored by evaluation fate (Fig. 5).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ascii;
pub mod dot;
pub mod trace;

pub use ascii::{annotated_tree, mfa_listing, trace_log};
pub use dot::{document_to_dot, mfa_to_dot};
pub use trace::{NodeFate, TraceCollector, TraceEvent};
