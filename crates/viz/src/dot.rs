//! Graphviz DOT output: MFAs and annotated documents.
//!
//! iSMOQE renders automata and trees graphically (Figs. 4–6); the DOT
//! emitters here produce the same pictures for `dot -Tsvg`. Each NFA of an
//! MFA becomes a cluster; guarded ε-edges are dashed and labelled with
//! their predicate; `HasPath` predicates point (dotted) at the cluster of
//! their path automaton — the NFA-annotated-with-AFA picture of Fig. 4(a).

use crate::trace::{NodeFate, TraceCollector};
use smoqe_automata::{LabelTest, Mfa, Pred};
use smoqe_xml::Document;
use std::fmt::Write as _;

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Renders an MFA as a DOT digraph.
pub fn mfa_to_dot(mfa: &Mfa) -> String {
    let vocab = mfa.vocabulary();
    let mut out = String::new();
    let _ = writeln!(out, "digraph mfa {{");
    let _ = writeln!(out, "  rankdir=LR; compound=true;");
    for (id, nfa) in mfa.nfas() {
        let _ = writeln!(out, "  subgraph cluster_n{} {{", id.0);
        let title = if id == mfa.top() {
            format!("N{} (selection)", id.0)
        } else {
            format!("N{}", id.0)
        };
        let _ = writeln!(out, "    label=\"{title}\";");
        for s in nfa.states() {
            let shape = if nfa.is_accept(s) {
                "doublecircle"
            } else {
                "circle"
            };
            let style = if s == nfa.start() { ", style=bold" } else { "" };
            let _ = writeln!(
                out,
                "    n{}_s{} [label=\"{}\", shape={shape}{style}];",
                id.0, s.0, s.0
            );
        }
        for s in nfa.states() {
            for t in nfa.transitions(s) {
                let lbl = match t.test {
                    LabelTest::Label(l) => vocab.name(l).to_string(),
                    LabelTest::Wildcard => "*".to_string(),
                };
                let _ = writeln!(
                    out,
                    "    n{}_s{} -> n{}_s{} [label=\"{}\"];",
                    id.0,
                    s.0,
                    id.0,
                    t.target.0,
                    escape(&lbl)
                );
            }
            for e in nfa.eps_edges(s) {
                match e.guard {
                    None => {
                        let _ = writeln!(
                            out,
                            "    n{}_s{} -> n{}_s{} [label=\"eps\", style=dashed];",
                            id.0, s.0, id.0, e.target.0
                        );
                    }
                    Some(g) => {
                        let _ = writeln!(
                            out,
                            "    n{}_s{} -> n{}_s{} [label=\"P{}\", style=dashed, color=blue];",
                            id.0, s.0, id.0, e.target.0, g.0
                        );
                    }
                }
            }
        }
        let _ = writeln!(out, "  }}");
    }
    // Predicate nodes + dotted links to their automata (the AFA
    // annotation arrows of Fig. 4(a)).
    for (id, p) in mfa.preds() {
        let label = match p {
            Pred::True => "true".to_string(),
            Pred::TextEq(c) => format!("text()='{}'", escape(c)),
            Pred::HasPath(_) => "has-path".to_string(),
            Pred::Not(q) => format!("not P{}", q.0),
            Pred::And(qs) => format!(
                "and({})",
                qs.iter()
                    .map(|q| format!("P{}", q.0))
                    .collect::<Vec<_>>()
                    .join(",")
            ),
            Pred::Or(qs) => format!(
                "or({})",
                qs.iter()
                    .map(|q| format!("P{}", q.0))
                    .collect::<Vec<_>>()
                    .join(",")
            ),
        };
        let _ = writeln!(
            out,
            "  p{} [label=\"P{}: {label}\", shape=box];",
            id.0, id.0
        );
        if let Pred::HasPath(n) = p {
            let target = mfa.nfa(*n).start();
            let _ = writeln!(
                out,
                "  p{} -> n{}_s{} [style=dotted, lhead=cluster_n{}];",
                id.0, n.0, target.0, n.0
            );
        }
    }
    let _ = writeln!(out, "}}");
    out
}

fn fate_color(fate: NodeFate) -> &'static str {
    match fate {
        NodeFate::Untouched => "gray90",
        NodeFate::Visited => "white",
        NodeFate::CandidateRejected => "lightyellow",
        NodeFate::CandidateKept | NodeFate::ImmediateAnswer => "palegreen",
        NodeFate::PrunedDead => "lightpink",
        NodeFate::PrunedTax => "lightskyblue",
    }
}

/// Renders a document tree as DOT, coloring nodes by their evaluation
/// fate (pass `None` for a plain tree).
pub fn document_to_dot(doc: &Document, trace: Option<&TraceCollector>) -> String {
    let vocab = doc.vocabulary();
    let mut out = String::new();
    let _ = writeln!(out, "digraph doc {{");
    let _ = writeln!(out, "  node [style=filled];");
    for n in doc.all_nodes() {
        let label = match doc.label(n) {
            Some(l) => vocab.name(l).to_string(),
            None => {
                let t: String = doc.text(n).unwrap_or_default().chars().take(12).collect();
                format!("\"{t}\"")
            }
        };
        let color = trace.map(|t| fate_color(t.fate(n.0))).unwrap_or("white");
        let _ = writeln!(
            out,
            "  n{} [label=\"{}\", fillcolor={color}];",
            n.0,
            escape(&label)
        );
        if let Some(p) = doc.parent(n) {
            let _ = writeln!(out, "  n{} -> n{};", p.0, n.0);
        }
    }
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use smoqe_automata::compile;
    use smoqe_hype::dom::{evaluate_mfa_with, DomOptions};
    use smoqe_rxpath::parse_path;
    use smoqe_xml::Vocabulary;

    #[test]
    fn mfa_dot_is_wellformed_ish() {
        let vocab = Vocabulary::new();
        let path = parse_path("a/b[c = 'v' and not(d)]", &vocab).unwrap();
        let mfa = compile(&path, &vocab);
        let dot = mfa_to_dot(&mfa);
        assert!(dot.starts_with("digraph mfa {"));
        assert!(dot.trim_end().ends_with('}'));
        assert!(dot.contains("cluster_n0"));
        assert!(dot.contains("doublecircle"));
        assert!(dot.contains("has-path"));
        assert_eq!(dot.matches("subgraph").count(), mfa.nfa_count());
    }

    #[test]
    fn document_dot_colors_by_fate() {
        let vocab = Vocabulary::new();
        let doc = Document::parse_str("<a><z><b/></z><b/></a>", &vocab).unwrap();
        let path = parse_path("a/b", &vocab).unwrap();
        let mfa = compile(&path, &vocab);
        let mut trace = crate::trace::TraceCollector::new();
        evaluate_mfa_with(&doc, &mfa, &DomOptions::default(), &mut trace);
        let dot = document_to_dot(&doc, Some(&trace));
        assert!(dot.contains("palegreen")); // answer
        assert!(dot.contains("lightpink")); // pruned z
        assert!(dot.contains("n0 -> n1"));
    }

    #[test]
    fn plain_document_dot() {
        let vocab = Vocabulary::new();
        let doc = Document::parse_str("<a>t</a>", &vocab).unwrap();
        let dot = document_to_dot(&doc, None);
        assert!(dot.contains("fillcolor=white"));
        assert!(dot.contains("\\\"t\\\""));
    }
}
