//! The central correctness statement of the paper (§1):
//! **Q′(T) = Q(V(T))** — rewriting a query over a virtual view and
//! evaluating it on the source gives exactly the answer the query would
//! have on the materialized view, for any document T.
//!
//! Exercised here over both workloads, multiple generated documents and a
//! spectrum of queries, through the public engine API and through the
//! crate-level APIs.

use smoqe::workloads::{hospital, org};
use smoqe_hype::evaluate_mfa;
use smoqe_rewrite::{rewrite, rewrite_direct};
use smoqe_rxpath::{evaluate as naive, parse_path};
use smoqe_view::{derive, materialize, AccessPolicy, ViewSpec};
use smoqe_xml::{Document, Dtd, Vocabulary};

fn hospital_setup() -> (Vocabulary, Dtd, ViewSpec) {
    let vocab = Vocabulary::new();
    let dtd = hospital::dtd(&vocab);
    let policy = AccessPolicy::parse(dtd.clone(), hospital::POLICY).unwrap();
    (vocab, dtd, derive(&policy))
}

fn assert_equivalence(vocab: &Vocabulary, spec: &ViewSpec, doc: &Document, query: &str) {
    let q = parse_path(query, vocab).unwrap();
    let mfa = rewrite(&q, spec);
    let (rewritten, _) = evaluate_mfa(doc, &mfa);
    let view = materialize(spec, doc).unwrap();
    let expected = view.origins_of(naive(&view.doc, &q).iter());
    assert_eq!(
        rewritten.as_slice(),
        expected.as_slice(),
        "Q'(T) != Q(V(T)) for `{query}`"
    );
}

#[test]
fn hospital_equivalence_on_generated_documents() {
    let (vocab, dtd, spec) = hospital_setup();
    for seed in [1u64, 7, 42] {
        let doc = hospital::generate_document(&vocab, seed, 2_000);
        dtd.validate(&doc).unwrap();
        for (_, q) in hospital::VIEW_QUERIES {
            assert_equivalence(&vocab, &spec, &doc, q);
        }
        // Queries over hidden names must be empty AND equivalent.
        for q in ["//pname", "//visit", "//date", "//test"] {
            assert_equivalence(&vocab, &spec, &doc, q);
        }
    }
}

#[test]
fn org_equivalence_on_generated_documents() {
    let vocab = Vocabulary::new();
    let dtd = org::dtd(&vocab);
    let policy = AccessPolicy::parse(dtd.clone(), org::POLICY).unwrap();
    let spec = derive(&policy);
    for seed in [3u64, 9] {
        let doc = org::generate_document(&vocab, seed, 2_000);
        for (_, q) in org::VIEW_QUERIES {
            assert_equivalence(&vocab, &spec, &doc, q);
        }
        for q in ["//salary", "//review", "company/dept/emp/*"] {
            assert_equivalence(&vocab, &spec, &doc, q);
        }
    }
}

#[test]
fn equivalence_holds_for_closure_heavy_queries() {
    let (vocab, _, spec) = hospital_setup();
    let doc = hospital::generate_document(&vocab, 13, 3_000);
    for q in [
        "hospital/(patient)*",
        "hospital/patient/(parent/patient)*",
        "hospital/patient/(parent/patient)*/treatment/medication",
        "(hospital | hospital/patient | hospital/patient/parent)*",
        "hospital/patient/(parent/patient)*[treatment]/(parent/patient)*",
        "//patient[not(parent) and treatment]",
    ] {
        assert_equivalence(&vocab, &spec, &doc, q);
    }
}

#[test]
fn direct_syntactic_rewriting_is_also_equivalent() {
    let (vocab, _, spec) = hospital_setup();
    let doc = hospital::generate_document(&vocab, 4, 800);
    for q in [
        "hospital/patient/treatment",
        "//medication",
        "hospital/patient[treatment/medication = 'autism']",
    ] {
        let path = parse_path(q, &vocab).unwrap();
        let view = materialize(&spec, &doc).unwrap();
        let expected = view.origins_of(naive(&view.doc, &path).iter());
        let direct = rewrite_direct(&path, &spec).expect("nonempty");
        let got = naive(&doc, &direct);
        assert_eq!(
            got.as_slice(),
            expected.as_slice(),
            "direct rewrite differs for `{q}`"
        );
    }
}

#[test]
fn identity_view_is_transparent() {
    let vocab = Vocabulary::new();
    let dtd = hospital::dtd(&vocab);
    let spec = ViewSpec::identity(&dtd);
    let doc = hospital::generate_document(&vocab, 21, 1_500);
    for (_, q) in hospital::DOC_QUERIES {
        let path = parse_path(q, &vocab).unwrap();
        let mfa = rewrite(&path, &spec);
        let (got, _) = evaluate_mfa(&doc, &mfa);
        assert_eq!(got, naive(&doc, &path), "identity view changed `{q}`");
    }
}

#[test]
fn engine_level_equivalence() {
    use smoqe::{Engine, User};
    let engine = Engine::with_defaults();
    engine.load_dtd(hospital::DTD).unwrap();
    engine.load_document(hospital::SAMPLE_DOCUMENT).unwrap();
    engine.register_policy("g", hospital::POLICY).unwrap();
    let session = engine.session(User::Group("g".into()));
    let view = engine.materialize_view("g").unwrap();
    let vocab = engine.vocabulary();
    for (_, q) in hospital::VIEW_QUERIES {
        let answer = session.query(q).unwrap();
        let path = parse_path(q, vocab).unwrap();
        let expected = view.origins_of(naive(&view.doc, &path).iter());
        assert_eq!(
            answer.nodes.as_slice(),
            expected.as_slice(),
            "engine differs on `{q}`"
        );
    }
}
