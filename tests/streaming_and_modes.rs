//! Engine-mode integration: file-backed streaming, DOM/stream agreement
//! at scale, the hand-authored view-spec mode, and configuration toggles.

use smoqe::workloads::{hospital, org};
use smoqe::{DocumentMode, Engine, EngineConfig, User};
use smoqe_xml::{generate_to_writer, Vocabulary};

fn temp_dir() -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("smoqe-int-stream");
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn file_backed_streaming_matches_dom() {
    // Generate a mid-size document straight to disk.
    let vocab = Vocabulary::new();
    let dtd = hospital::dtd(&vocab);
    let config = hospital::generator_config(&vocab, 99, 20_000);
    let path = temp_dir().join("stream-20k.xml");
    {
        let f = std::fs::File::create(&path).unwrap();
        generate_to_writer(&dtd, &config, std::io::BufWriter::new(f)).unwrap();
    }

    let dom = Engine::new(EngineConfig::default());
    dom.load_dtd(hospital::DTD).unwrap();
    dom.load_document_file(&path).unwrap();
    dom.register_policy("g", hospital::POLICY).unwrap();

    let stream = Engine::new(EngineConfig::streaming());
    stream.load_dtd(hospital::DTD).unwrap();
    stream.load_document_file(&path).unwrap();
    stream.register_policy("g", hospital::POLICY).unwrap();

    for user in [User::Admin, User::Group("g".into())] {
        let qs: &[&str] = match user {
            User::Admin => &["//medication", "hospital/patient/pname", hospital::Q0],
            User::Group(_) => &["//medication", "hospital/patient/treatment"],
        };
        for q in qs {
            let a = dom.session(user.clone()).query(q).unwrap();
            let b = stream.session(user.clone()).query(q).unwrap();
            assert_eq!(a.nodes, b.nodes, "mode mismatch for {q} as {user:?}");
        }
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn streaming_engine_from_string_source() {
    let e = Engine::new(EngineConfig::streaming());
    e.load_dtd(org::DTD).unwrap();
    e.load_document(org::SAMPLE_DOCUMENT).unwrap();
    e.register_policy("staff", org::POLICY).unwrap();
    let s = e.session(User::Group("staff".into()));
    let reviews = s.query("//review").unwrap();
    // Only public reviews are visible (2 of 3 in the sample).
    assert_eq!(reviews.len(), 2);
    for xml in reviews.xml.unwrap() {
        assert!(xml.contains("public"));
        assert!(!xml.contains("private"));
    }
}

#[test]
fn split_character_data_agrees_between_stream_and_dom() {
    // Character data split across entity references and CDATA boundaries
    // arrives as multiple parser Text events; the DOM builder merges the
    // run into ONE text node. The stream machine must coalesce the same
    // way — both for `text()='c'` predicates and for the document-order
    // node ids of everything that follows.
    let doc = "<lib>\
        <book><title>a&amp;b</title><year>2006</year></book>\
        <book><title>a<![CDATA[&]]>b</title><year>2007</year></book>\
        <book><title><![CDATA[one]]><![CDATA[two]]></title><year>2008</year></book>\
        <book><title>onetwo</title><year>2009</year></book>\
      </lib>";
    let dom = Engine::new(EngineConfig::default());
    dom.load_document(doc).unwrap();
    let stream = Engine::new(EngineConfig::streaming());
    stream.load_document(doc).unwrap();
    for q in [
        "lib/book[title = 'a&b']/year",    // entity- and CDATA-split text
        "lib/book[title = 'onetwo']/year", // adjacent CDATA sections
        "//year",                          // ids after split-text runs
        "lib/book[not(title = 'a&b')]/year",
    ] {
        let a = dom.session(User::Admin).query(q).unwrap();
        let b = stream.session(User::Admin).query(q).unwrap();
        assert_eq!(a.nodes, b.nodes, "mode mismatch for `{q}`");
        assert!(!a.is_empty(), "query `{q}` should match something");
    }
    // The split runs really do compare as one value.
    let amp = dom
        .session(User::Admin)
        .query("lib/book[title = 'a&b']")
        .unwrap();
    assert_eq!(amp.len(), 2, "both split spellings of a&b must match");
    let cat = stream
        .session(User::Admin)
        .query("lib/book[title = 'onetwo']")
        .unwrap();
    assert_eq!(cat.len(), 2, "CDATA-split and plain 'onetwo' must match");
}

#[test]
fn hand_authored_spec_and_derived_policy_can_coexist() {
    let e = Engine::with_defaults();
    e.load_dtd(hospital::DTD).unwrap();
    e.load_document(hospital::SAMPLE_DOCUMENT).unwrap();
    e.register_policy("derived", hospital::POLICY).unwrap();
    e.register_view_spec(
        "flat",
        "<!ELEMENT hospital (pname*)>\n<!ELEMENT pname (#PCDATA)>\n\
         sigma(hospital, pname) = patient/pname\n",
    )
    .unwrap();
    // The two groups see different shapes of the same data.
    let derived = e.session(User::Group("derived".into()));
    let flat = e.session(User::Group("flat".into()));
    assert!(derived.query("//pname").unwrap().is_empty());
    assert_eq!(flat.query("hospital/pname").unwrap().len(), 3); // top-level names
                                                                // The flat view exposes names that the derived view hides - distinct
                                                                // policies genuinely isolate groups.
    let xmls = flat.query_xml("hospital/pname").unwrap();
    assert!(xmls.iter().any(|x| x.contains("Ann")));
}

#[test]
fn config_toggles_do_not_change_answers() {
    let configs = [
        EngineConfig::default(),
        EngineConfig::plain(),
        EngineConfig {
            mode: DocumentMode::Dom,
            use_tax: true,
            optimize_mfa: false,
            ..EngineConfig::default()
        },
        EngineConfig::streaming(),
    ];
    let mut reference: Option<Vec<Vec<u32>>> = None;
    for config in configs {
        let e = Engine::new(config);
        e.load_dtd(hospital::DTD).unwrap();
        e.load_document(hospital::SAMPLE_DOCUMENT).unwrap();
        e.register_policy("g", hospital::POLICY).unwrap();
        if config.use_tax && config.mode == DocumentMode::Dom {
            e.build_tax_index().unwrap();
        }
        let s = e.session(User::Group("g".into()));
        let results: Vec<Vec<u32>> = hospital::VIEW_QUERIES
            .iter()
            .map(|(_, q)| s.query(q).unwrap().nodes.iter().map(|n| n.0).collect())
            .collect();
        match &reference {
            None => reference = Some(results),
            Some(r) => assert_eq!(&results, r, "config {config:?} changed answers"),
        }
    }
}

#[test]
fn dtd_validation_rejects_bad_documents_through_engine() {
    let e = Engine::with_defaults();
    e.load_dtd(hospital::DTD).unwrap();
    // Wrong child order: visit before pname.
    let err = e
        .load_document(
            "<hospital><patient><visit><treatment><test>t</test></treatment><date>d</date></visit>\
             <pname>A</pname></patient></hospital>",
        )
        .unwrap_err();
    assert!(err.to_string().contains("content model"), "{err}");
    // Without a DTD, the same document is accepted.
    let e2 = Engine::new(EngineConfig::default());
    e2.load_document("<anything><goes/></anything>").unwrap();
}

#[test]
fn large_generated_document_through_engine_with_all_features() {
    let e = Engine::with_defaults();
    e.load_dtd(hospital::DTD).unwrap();
    let doc = hospital::generate_document(e.vocabulary(), 5, 30_000);
    e.load_document_tree(doc).unwrap();
    e.build_tax_index().unwrap();
    e.register_policy("g", hospital::POLICY).unwrap();
    let s = e.session(User::Group("g".into()));
    let a = s
        .query("hospital/patient/(parent/patient)*/treatment/medication")
        .unwrap();
    // TAX + optimizer on; sanity cross-check against the plain config.
    let plain = Engine::new(EngineConfig::plain());
    plain.load_dtd(hospital::DTD).unwrap();
    let doc2 = hospital::generate_document(plain.vocabulary(), 5, 30_000);
    plain.load_document_tree(doc2).unwrap();
    plain.register_policy("g", hospital::POLICY).unwrap();
    let b = plain
        .session(User::Group("g".into()))
        .query("hospital/patient/(parent/patient)*/treatment/medication")
        .unwrap();
    assert_eq!(a.nodes, b.nodes);
    assert!(!a.is_empty());
}
