//! Integration-level checks of the paper's Fig. 3 artifacts and of index
//! persistence through the engine API.

use smoqe::workloads::hospital;
use smoqe::{Engine, User};
use smoqe_view::{derive, AccessPolicy};
use smoqe_xml::{Dtd, Vocabulary};

/// Fig. 3(c): the derived view specification, σ for σ, as printed in the
/// paper.
#[test]
fn fig3_view_specification_matches_paper() {
    let vocab = Vocabulary::new();
    let dtd = Dtd::parse(hospital::DTD, &vocab).unwrap();
    let policy = AccessPolicy::parse(dtd.clone(), hospital::POLICY).unwrap();
    let spec = derive(&policy);
    let rendered = spec.to_spec_string();
    for expected in [
        "sigma(hospital, patient) = patient[visit/treatment/medication = 'autism']",
        "sigma(patient, treatment) = visit/treatment[medication]",
        "sigma(patient, parent) = parent",
        "sigma(parent, patient) = patient",
        "sigma(treatment, medication) = medication",
    ] {
        assert!(
            rendered.contains(expected),
            "missing `{expected}` in:\n{rendered}"
        );
    }
    // Fig. 3(d): view DTD productions (canonical label order; see
    // DESIGN.md §2.3 for the documented `medication?` deviation).
    for expected in [
        "production: hospital -> patient*",
        "production: patient -> (parent*, treatment*)",
        "production: parent -> patient",
        "production: treatment -> medication?",
    ] {
        assert!(
            rendered.contains(expected),
            "missing `{expected}` in:\n{rendered}"
        );
    }
    assert!(spec.view_dtd().is_recursive());
}

/// The policy and spec pretty-printers emit re-parseable artifacts
/// (round-trip through text).
#[test]
fn fig3_artifacts_round_trip_through_text() {
    let vocab = Vocabulary::new();
    let dtd = Dtd::parse(hospital::DTD, &vocab).unwrap();
    let policy = AccessPolicy::parse(dtd.clone(), hospital::POLICY).unwrap();
    let spec = derive(&policy);
    // spec -> text -> spec.
    let text = spec.to_spec_string();
    let sigma_and_dtd: String = text
        .lines()
        .map(|l| {
            let t = l.trim();
            if let Some(rest) = t.strip_prefix("production: ") {
                let (name, model) = rest.split_once(" -> ").unwrap();
                // Parenthesize bare particles; grouped/EMPTY models are
                // already valid DTD syntax.
                if model.starts_with('(') || model == "EMPTY" || model == "ANY" {
                    format!("<!ELEMENT {name} {model}>\n")
                } else {
                    format!("<!ELEMENT {name} ({model})>\n")
                }
            } else {
                format!("{t}\n")
            }
        })
        .collect();
    let reparsed = smoqe_view::ViewSpec::parse(&sigma_and_dtd, &vocab).unwrap();
    reparsed.validate(&dtd).unwrap();
    for ((a, b), p) in spec.sigmas() {
        let q = reparsed.sigma(*a, *b).expect("sigma survives round-trip");
        assert_eq!(p.display(&vocab).to_string(), q.display(&vocab).to_string());
    }
}

#[test]
fn tax_index_survives_engine_restart() {
    let dir = std::env::temp_dir().join("smoqe-int-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("restart.tax");

    // First engine: build + save.
    {
        let e = Engine::with_defaults();
        e.load_dtd(hospital::DTD).unwrap();
        e.load_document(hospital::SAMPLE_DOCUMENT).unwrap();
        e.build_tax_index().unwrap();
        e.save_tax_index(&path).unwrap();
    }
    // Second engine with a *fresh vocabulary*: load + use.
    {
        let e = Engine::with_defaults();
        e.load_dtd(hospital::DTD).unwrap();
        e.load_document(hospital::SAMPLE_DOCUMENT).unwrap();
        e.load_tax_index(&path).unwrap();
        let admin = e.session(User::Admin);
        // Answers with the restored index match a fresh evaluation.
        let with_index = admin.query("//parent/patient/pname").unwrap();
        let plain = Engine::with_defaults();
        plain.load_dtd(hospital::DTD).unwrap();
        plain.load_document(hospital::SAMPLE_DOCUMENT).unwrap();
        let expected = plain
            .session(User::Admin)
            .query("//parent/patient/pname")
            .unwrap();
        assert_eq!(with_index.nodes, expected.nodes);
        assert!(with_index.stats.subtrees_pruned_tax > 0 || !with_index.is_empty());
    }
    std::fs::remove_file(&path).ok();
}

/// The engine end-to-end on Q0 (the paper's demo query) for an admin.
#[test]
fn q0_through_the_engine() {
    let e = Engine::with_defaults();
    e.load_dtd(hospital::DTD).unwrap();
    // Build a document where Q0 has a non-trivial answer.
    e.load_document(
        "<hospital><patient><pname>Zoe</pname>\
         <visit><treatment><medication>headache</medication></treatment><date>d</date></visit>\
         <parent><patient><pname>Yan</pname>\
           <visit><treatment><test>blood</test></treatment><date>d</date></visit>\
         </patient></parent>\
         </patient>\
         <patient><pname>Moe</pname>\
         <visit><treatment><medication>flu</medication></treatment><date>d</date></visit>\
         </patient></hospital>",
    )
    .unwrap();
    let admin = e.session(User::Admin);
    let ans = admin.query(hospital::Q0).unwrap();
    let doc = e.document().unwrap();
    let names: Vec<String> = ans.nodes.iter().map(|&n| doc.string_value(n)).collect();
    assert_eq!(names, vec!["Zoe"]);
}
