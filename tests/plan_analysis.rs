//! Regression: per-plan analyses (ε-closures, subset DFAs, required
//! labels) are computed **once per cached plan**, never per machine or per
//! batch lane. Before the compilation layer, `Machine::new` recomputed
//! `required_labels` and the closures for every machine — so a batch of N
//! identical queries paid the analysis N times.
//!
//! This file holds exactly one test on purpose: it reads the process-wide
//! `analysis_runs` counter, and unrelated tests compiling plans in
//! parallel threads would make deltas meaningless.

use smoqe::workloads::hospital;
use smoqe::{Engine, User};
use smoqe_automata::compile::analysis_runs;

#[test]
fn batch_compiles_each_distinct_plan_exactly_once() {
    let engine = Engine::with_defaults();
    engine.load_dtd(smoqe_xml::HOSPITAL_DTD).unwrap();
    engine.load_document(hospital::SAMPLE_DOCUMENT).unwrap();
    engine
        .register_policy("researchers", smoqe_view::HOSPITAL_POLICY)
        .unwrap();
    let session = engine.session(User::Group("researchers".into()));

    // 10 requests, 2 distinct plans.
    let queries: Vec<&str> = std::iter::repeat_n("//medication", 8)
        .chain(std::iter::repeat_n("hospital/patient/treatment", 2))
        .collect();

    let analyses_before = analysis_runs();
    let metrics_before = engine.cache_metrics();
    let batch = session.query_batch(&queries).unwrap();
    assert_eq!(batch.answers.len(), queries.len());

    // Exactly one compilation (ε-closure + required-label analysis + table
    // build) per distinct (scope, query) pair — every other lane of the
    // batch shares the cached Arc<CompiledMfa>.
    assert_eq!(
        analysis_runs() - analyses_before,
        2,
        "analyses must be shared through the compiled plan"
    );
    let metrics = engine.cache_metrics();
    assert_eq!(metrics.misses - metrics_before.misses, 2);
    assert_eq!(metrics.hits - metrics_before.hits, queries.len() as u64 - 2);

    // Re-running the whole batch performs zero additional analyses.
    let analyses_mid = analysis_runs();
    session.query_batch(&queries).unwrap();
    assert_eq!(
        analysis_runs(),
        analyses_mid,
        "fully cached batch recompiles"
    );
}
