//! Cross-crate edge-case coverage of the substrate: parser/serializer
//! round-trips on adversarial inputs, deep documents, unicode text,
//! vocabulary sharing, and generator/DTD interplay on unusual schemas.

use smoqe_rxpath::{evaluate, parse_path};
use smoqe_xml::stax::{PullParser, XmlEvent};
use smoqe_xml::{generate, Document, Dtd, GeneratorConfig, TreeBuilder, Vocabulary};

#[test]
fn deep_documents_do_not_overflow_any_engine() {
    // 5,000 levels of nesting: every evaluator must use iterative
    // traversal (explicit stacks), not recursion.
    let vocab = Vocabulary::new();
    let mut b = TreeBuilder::new(vocab.clone());
    let a = vocab.intern("a");
    let depth = 5_000;
    for _ in 0..depth {
        b.start_element(a);
    }
    b.text("bottom");
    for _ in 0..depth {
        b.end_element();
    }
    let doc = b.finish().unwrap();
    assert_eq!(doc.max_depth(), depth); // a-chain + text at the last level

    let q = parse_path("(a)*[not(a)]", &vocab).unwrap();
    let deepest = evaluate(&doc, &q);
    assert_eq!(deepest.len(), 1);

    let mfa = smoqe_automata::compile(&q, &vocab);
    let (hype, stats) = smoqe_hype::evaluate_mfa(&doc, &mfa);
    assert_eq!(hype, deepest);
    assert_eq!(stats.max_depth, depth);

    // Streaming over the serialized form.
    let xml = doc.to_xml();
    let out = smoqe_hype::evaluate_stream_str(&xml, &mfa, &vocab, Default::default()).unwrap();
    assert_eq!(out.answers.len(), 1);
}

#[test]
fn unicode_text_survives_parse_serialize_query() {
    let vocab = Vocabulary::new();
    let xml = "<a><b>caf\u{e9} \u{1F600} \u{4e2d}\u{6587}</b><b>plain</b></a>";
    let doc = Document::parse_str(xml, &vocab).unwrap();
    assert_eq!(doc.to_xml(), xml);
    let q = parse_path(
        "a/b[text() = 'caf\u{e9} \u{1F600} \u{4e2d}\u{6587}']",
        &vocab,
    )
    .unwrap();
    assert_eq!(evaluate(&doc, &q).len(), 1);
    // And through the streaming evaluator (byte-capped accumulation must
    // respect char boundaries).
    let mfa = smoqe_automata::compile(&q, &vocab);
    let out = smoqe_hype::evaluate_stream_str(xml, &mfa, &vocab, Default::default()).unwrap();
    assert_eq!(out.answers.len(), 1);
}

#[test]
fn entities_round_trip_through_every_layer() {
    let vocab = Vocabulary::new();
    let xml = r#"<m><v k="a&amp;b">1 &lt; 2 &amp; 3 &gt; 2</v></m>"#;
    let doc = Document::parse_str(xml, &vocab).unwrap();
    let v = doc.first_child(doc.root()).unwrap();
    assert_eq!(doc.direct_text(v), "1 < 2 & 3 > 2");
    assert_eq!(doc.attribute(v, "k"), Some("a&b"));
    assert_eq!(
        doc.to_xml(),
        r#"<m><v k="a&amp;b">1 &lt; 2 &amp; 3 &gt; 2</v></m>"#
    );
}

#[test]
fn pull_parser_reports_positions_and_depth() {
    let mut p = PullParser::from_str("<a>\n<b>x</b>\n</a>");
    assert!(matches!(
        p.next_event().unwrap(),
        XmlEvent::StartElement { .. }
    ));
    assert_eq!(p.depth(), 1);
    assert!(matches!(
        p.next_event().unwrap(),
        XmlEvent::StartElement { .. }
    ));
    assert_eq!(p.depth(), 2);
    assert!(p.byte_offset() > 0);
}

#[test]
fn shared_vocabulary_keeps_queries_portable_across_documents() {
    let vocab = Vocabulary::new();
    let d1 = Document::parse_str("<a><b>1</b></a>", &vocab).unwrap();
    let d2 = Document::parse_str("<a><b>2</b><b>3</b></a>", &vocab).unwrap();
    let q = parse_path("a/b", &vocab).unwrap();
    assert_eq!(evaluate(&d1, &q).len(), 1);
    assert_eq!(evaluate(&d2, &q).len(), 2);
}

#[test]
fn generator_handles_unusual_content_models() {
    let vocab = Vocabulary::new();
    let dtd = Dtd::parse(
        "<!ELEMENT r ((a | b)+, c?, (d, e)*)>\
         <!ELEMENT a EMPTY><!ELEMENT b (#PCDATA)><!ELEMENT c (r?)>\
         <!ELEMENT d (#PCDATA)><!ELEMENT e EMPTY>",
        &vocab,
    )
    .unwrap();
    for seed in 0..10 {
        let doc = generate(
            &dtd,
            &GeneratorConfig {
                seed,
                ..Default::default()
            },
        )
        .unwrap();
        dtd.validate(&doc)
            .unwrap_or_else(|err| panic!("seed {seed}: {err}"));
    }
}

#[test]
fn mixed_content_queries() {
    let vocab = Vocabulary::new();
    let dtd = Dtd::parse(
        "<!ELEMENT doc (#PCDATA | em | strong)*><!ELEMENT em (#PCDATA)><!ELEMENT strong (#PCDATA)>",
        &vocab,
    )
    .unwrap();
    let doc = Document::parse_str(
        "<doc>plain <em>emphasis</em> more <strong>bold</strong> tail</doc>",
        &vocab,
    )
    .unwrap();
    dtd.validate(&doc).unwrap();
    let q = parse_path("doc/(em | strong)", &vocab).unwrap();
    assert_eq!(evaluate(&doc, &q).len(), 2);
    // Direct text of <doc> is the concatenation of its own text nodes.
    let q2 = parse_path("doc[text() = 'plain  more  tail']", &vocab).unwrap();
    assert_eq!(evaluate(&doc, &q2).len(), 1);
}

#[test]
fn answers_and_ids_are_stable_between_dom_parse_and_stream_numbering() {
    // The stream evaluator numbers nodes exactly like the DOM builder:
    // parse -> ids and stream -> ids must coincide for mixed text/element
    // content and self-closing tags.
    let vocab = Vocabulary::new();
    let xml = "<a>t1<b/>t2<c><d>x</d></c>t3</a>";
    let doc = Document::parse_str(xml, &vocab).unwrap();
    let q = parse_path("//d", &vocab).unwrap();
    let mfa = smoqe_automata::compile(&q, &vocab);
    let (dom, _) = smoqe_hype::evaluate_mfa(&doc, &mfa);
    let stream = smoqe_hype::evaluate_stream_str(xml, &mfa, &vocab, Default::default()).unwrap();
    assert_eq!(stream.answers, dom.iter().map(|n| n.0).collect::<Vec<_>>());
    // The id really points at <d> in the DOM.
    let d = smoqe_xml::NodeId(stream.answers[0]);
    assert_eq!(&*vocab.name(doc.label(d).unwrap()), "d");
}

#[test]
fn empty_documents_and_empty_answers() {
    let vocab = Vocabulary::new();
    let doc = Document::parse_str("<lonely/>", &vocab).unwrap();
    assert_eq!(doc.node_count(), 1);
    for q in ["lonely", "other", "lonely/child", "//x", "(lonely)*"] {
        let path = parse_path(q, &vocab).unwrap();
        let naive = evaluate(&doc, &path);
        let mfa = smoqe_automata::compile(&path, &vocab);
        let (hype, _) = smoqe_hype::evaluate_mfa(&doc, &mfa);
        assert_eq!(hype, naive, "query {q}");
    }
}
