//! Batched evaluation: one document scan must serve a whole query batch
//! with answers identical to per-query evaluation.
//!
//! * 32 random Regular XPath queries over a generated hospital document:
//!   DOM, serial stream and batched stream all agree, and the batch
//!   reports exactly one document's worth of parser events;
//! * the engine-level batch API (`Session::query_batch`) agrees with
//!   serial `Session::query` in both DOM and stream configurations;
//! * serialized batch answers match serial ones (stream mode).

use rand::SeedableRng;
use smoqe::workloads::hospital;
use smoqe::{DocumentMode, Engine, EngineConfig, User};
use smoqe_automata::{compile, Mfa};
use smoqe_hype::batch::evaluate_batch_stream_str;
use smoqe_hype::dom::evaluate_mfa;
use smoqe_hype::stream::{evaluate_stream_str, StreamOptions};
use smoqe_rxpath::random::{random_path, QueryGenConfig};
use smoqe_xml::stax::{PullParser, XmlEvent};
use smoqe_xml::Vocabulary;

/// Counts the pull-parser events of `xml` — the cost of ONE scan.
fn one_scan_events(xml: &str) -> usize {
    let mut parser = PullParser::from_str(xml);
    let mut events = 0;
    loop {
        events += 1;
        if parser.next_event().unwrap() == XmlEvent::EndDocument {
            return events;
        }
    }
}

#[test]
fn thirty_two_random_queries_agree_across_all_modes_in_one_scan() {
    let vocab = Vocabulary::new();
    hospital::dtd(&vocab);
    let doc = hospital::generate_document(&vocab, 7, 800);
    let xml = doc.to_xml();

    let labels = vec![
        vocab.lookup("hospital").unwrap(),
        vocab.lookup("patient").unwrap(),
        vocab.lookup("pname").unwrap(),
        vocab.lookup("visit").unwrap(),
        vocab.lookup("treatment").unwrap(),
        vocab.lookup("medication").unwrap(),
        vocab.lookup("parent").unwrap(),
        vocab.lookup("test").unwrap(),
    ];
    let values = vec!["autism".into(), "headache".into(), "Ann".into()];
    let mut cfg = QueryGenConfig::new(labels, values);
    cfg.max_depth = 4;

    let mut rng = rand::rngs::StdRng::seed_from_u64(20_060_912);
    let paths: Vec<_> = (0..32).map(|_| random_path(&mut rng, &cfg)).collect();
    let mfas: Vec<Mfa> = paths.iter().map(|p| compile(p, &vocab)).collect();
    let plans: Vec<&Mfa> = mfas.iter().collect();

    let batch = evaluate_batch_stream_str(&xml, &plans, &vocab, StreamOptions::default()).unwrap();
    assert_eq!(batch.outcomes.len(), 32);

    // One scan for the whole batch: exactly one document's event count.
    assert_eq!(
        batch.events,
        one_scan_events(&xml),
        "a batch of 32 queries must cost a single document scan"
    );

    for (i, path) in paths.iter().enumerate() {
        let q = path.display(&vocab).to_string();
        // DOM reference.
        let (dom, _) = evaluate_mfa(&doc, &mfas[i]);
        let dom_ids: Vec<u32> = dom.iter().map(|n| n.0).collect();
        // Serial stream: its own full scan.
        let serial = evaluate_stream_str(&xml, &mfas[i], &vocab, StreamOptions::default()).unwrap();
        assert_eq!(serial.answers, dom_ids, "serial stream vs DOM on `{q}`");
        assert_eq!(serial.events, batch.events, "serial scan length `{q}`");
        // Batched: same answers without a scan of its own.
        assert_eq!(
            batch.outcomes[i].answers, dom_ids,
            "batched stream vs DOM on `{q}`"
        );
    }
}

#[test]
fn engine_batch_answers_and_xml_match_serial_sessions() {
    for config in [EngineConfig::default(), EngineConfig::streaming()] {
        let engine = Engine::new(config);
        let doc = engine.open_document("hospital");
        hospital::install_sample(&doc).unwrap();
        for user in [User::Admin, User::Group(hospital::GROUP.into())] {
            let session = doc.session(user.clone());
            let queries: Vec<&str> = match user {
                User::Admin => hospital::DOC_QUERIES.iter().map(|(_, q)| *q).collect(),
                User::Group(_) => hospital::VIEW_QUERIES.iter().map(|(_, q)| *q).collect(),
            };
            let batch = session.query_batch(&queries).unwrap();
            for (q, batched) in queries.iter().zip(&batch.answers) {
                let serial = session.query(q).unwrap();
                assert_eq!(
                    batched.nodes, serial.nodes,
                    "batched `{q}` as {user:?} in {:?} mode",
                    config.mode
                );
                // Batches always stream, so xml is always present; in
                // stream mode it must match the serial rendering exactly
                // (view users get the access-controlled rendering).
                assert!(batched.xml.is_some(), "batch xml for `{q}` as {user:?}");
                if config.mode == DocumentMode::Stream {
                    assert_eq!(batched.xml, serial.xml, "xml for `{q}` as {user:?}");
                }
            }
            // The whole batch cost one scan.
            let single = session.query_batch(&queries[..1]).unwrap();
            assert_eq!(batch.events, single.events);
            // An empty batch (e.g. a batch file of only comments) must
            // not scan at all.
            let empty = session.query_batch(&[]).unwrap();
            assert!(empty.answers.is_empty());
            assert_eq!(empty.events, 0);
        }
    }
}

#[test]
fn batch_plans_come_from_the_shared_cache() {
    let engine = Engine::with_defaults();
    let doc = engine.open_document("h");
    hospital::install_sample(&doc).unwrap();
    let session = doc.session(User::Group(hospital::GROUP.into()));
    let queries: Vec<&str> = hospital::VIEW_QUERIES.iter().map(|(_, q)| *q).collect();
    let first = session.query_batch(&queries).unwrap();
    assert!(first.answers.iter().all(|a| !a.plan_cached));
    let second = session.query_batch(&queries).unwrap();
    assert!(
        second.answers.iter().all(|a| a.plan_cached),
        "the second batch must reuse every cached plan"
    );
    // A duplicate inside ONE batch hits the plan just cached by its twin.
    let dup = doc
        .query_batch(&User::Admin, &["//medication", "//medication"])
        .unwrap();
    assert!(!dup.answers[0].plan_cached);
    assert!(dup.answers[1].plan_cached);
    assert_eq!(dup.answers[0].nodes, dup.answers[1].nodes);
}
