//! The secure update subsystem end to end: the update language, policy
//! enforcement through security views, incremental TAX maintenance, and
//! cache/generation hygiene.
//!
//! The property tests are the heart of the file:
//! * for random documents and random structural edits, the incrementally
//!   patched TAX index assigns every node the same descendant-type set as
//!   a from-scratch `TaxIndex::build` rebuild — and answers the same
//!   queries under TAX-pruned evaluation;
//! * random *accepted* engine updates leave the engine indistinguishable
//!   from a fresh engine that loaded the updated serialization and
//!   rebuilt everything.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use smoqe::workloads::hospital;
use smoqe::{Engine, EngineError, User};
use smoqe_rxpath::evaluate;
use smoqe_tax::TaxIndex;
use smoqe_update::parse_update;
use smoqe_xml::{delete_subtree, insert_fragment, replace_subtree, SplicePlace};
use smoqe_xml::{Document, NodeId, Vocabulary};

/// A random structural edit of `doc`: returns the new document and the
/// span, or `None` when the drawn edit is structurally impossible (e.g.
/// deleting the root).
fn random_edit(
    rng: &mut StdRng,
    vocab: &Vocabulary,
    doc: &Document,
) -> Option<(Document, smoqe_xml::EditSpan)> {
    let elements: Vec<NodeId> = doc.all_nodes().filter(|&n| doc.is_element(n)).collect();
    let target = elements[rng.random_range(0..elements.len())];
    let fragment_xml = match rng.random_range(0..3) {
        0 => "<visit><treatment><medication>autism</medication></treatment><date>d</date></visit>",
        1 => {
            "<patient><pname>Rnd</pname><visit><treatment><test>mri</test></treatment>\
              <date>d</date></visit></patient>"
        }
        _ => "<treatment><medication>flu</medication></treatment>",
    };
    let fragment = Document::parse_str(fragment_xml, vocab).unwrap();
    match rng.random_range(0..5) {
        0 => delete_subtree(doc, target).ok(),
        1 => replace_subtree(doc, target, &fragment).ok(),
        2 => insert_fragment(doc, target, SplicePlace::Into, &fragment).ok(),
        3 => insert_fragment(doc, target, SplicePlace::Before, &fragment).ok(),
        _ => insert_fragment(doc, target, SplicePlace::After, &fragment).ok(),
    }
}

/// Asserts that the TAX index's positional label index (occurrence
/// lists, subtree ends, levels) describes `doc` exactly — i.e. equals
/// what a from-scratch build would produce.
fn assert_label_index_matches(tax: &TaxIndex, doc: &Document) {
    let li = tax
        .label_index()
        .expect("built or patched indexes carry the label index");
    assert_eq!(li.node_count(), doc.node_count());
    for n in doc.all_nodes() {
        assert_eq!(
            li.subtree_end(n) as usize,
            n.index() + doc.subtree_size(n),
            "subtree_end of {n:?}"
        );
        assert_eq!(li.level(n) as usize, doc.depth(n), "level of {n:?}");
    }
    for raw in 0..doc.vocabulary().len() as u32 {
        let label = smoqe_xml::Label(raw);
        let want: Vec<u32> = doc.nodes_labeled(label).map(|n| n.0).collect();
        assert_eq!(
            li.occurrences(label),
            want.as_slice(),
            "occurrence list of label {raw}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 48,
        .. ProptestConfig::default()
    })]

    /// Satellite: for random documents and random accepted edits, the
    /// incrementally patched index equals a from-scratch rebuild.
    #[test]
    fn patched_tax_equals_rebuild_on_random_edits(seed in 0u64..10_000) {
        let vocab = Vocabulary::new();
        hospital::dtd(&vocab);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut doc = hospital::generate_document(&vocab, seed, 300);
        let mut tax = TaxIndex::build(&doc);
        // Chain a few edits so patches compose (patch of a patch).
        for _ in 0..3 {
            let Some((new_doc, span)) = random_edit(&mut rng, &vocab, &doc) else {
                continue;
            };
            tax = tax.patched(&new_doc, &span);
            let rebuilt = TaxIndex::build(&new_doc);
            prop_assert_eq!(tax.node_count(), rebuilt.node_count());
            for n in new_doc.all_nodes() {
                prop_assert_eq!(
                    tax.descendant_labels(n).iter().collect::<Vec<_>>(),
                    rebuilt.descendant_labels(n).iter().collect::<Vec<_>>(),
                    "node {:?} diverged after patch (seed {})", n, seed
                );
            }
            assert_label_index_matches(&tax, &new_doc);
            doc = new_doc;
        }
    }

    /// The patched index answers queries identically to a rebuilt one
    /// when driving TAX-pruned evaluation inside the engine.
    #[test]
    fn updated_engine_matches_fresh_engine_with_rebuilt_index(seed in 0u64..10_000) {
        let statements = [
            "insert <patient><pname>Zoe</pname><visit><treatment><medication>autism\
             </medication></treatment><date>d</date></visit></patient> into hospital",
            "delete hospital/patient[visit/treatment/test]",
            "replace //treatment[medication = 'flu'] with \
             <treatment><medication>headache</medication></treatment>",
            "insert <visit><treatment><test>blood</test></treatment><date>d2</date></visit> \
             after //patient[not(parent)]/visit",
        ];
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed);
        let engine = Engine::with_defaults();
        let vocab = engine.vocabulary().clone();
        engine.load_dtd(hospital::DTD).unwrap();
        engine.load_document_tree(hospital::generate_document(&vocab, seed, 250)).unwrap();
        engine.build_tax_index().unwrap();

        let mut applied_any = false;
        for _ in 0..3 {
            let stmt = statements[rng.random_range(0..statements.len())];
            match engine.update(stmt) {
                Ok(report) => {
                    prop_assert!(report.tax_patched, "index must be maintained");
                    applied_any = true;
                }
                // Rejected updates (no target / schema) change nothing —
                // also part of the contract.
                Err(EngineError::Update(_)) => {}
                Err(other) => prop_assert!(false, "unexpected error: {}", other),
            }
        }

        // A fresh engine loads the updated serialization and rebuilds its
        // index from scratch; both engines must answer identically.
        let updated_xml = engine.document().unwrap().to_xml();
        let fresh = Engine::with_defaults();
        fresh.load_dtd(hospital::DTD).unwrap();
        fresh.load_document(&updated_xml).unwrap();
        fresh.build_tax_index().unwrap();
        fresh
            .register_policy(hospital::GROUP, hospital::POLICY)
            .unwrap();
        engine
            .register_policy(hospital::GROUP, hospital::POLICY)
            .unwrap();
        for (_, q) in hospital::DOC_QUERIES {
            let a = engine.session(User::Admin).query(q).unwrap();
            let b = fresh.session(User::Admin).query(q).unwrap();
            prop_assert_eq!(&a.nodes, &b.nodes, "admin `{}` diverged (seed {})", q, seed);
        }
        for (_, q) in hospital::VIEW_QUERIES {
            let a = engine.session(User::Group(hospital::GROUP.into())).query(q).unwrap();
            let b = fresh.session(User::Group(hospital::GROUP.into())).query(q).unwrap();
            prop_assert_eq!(&a.nodes, &b.nodes, "view `{}` diverged (seed {})", q, seed);
        }
        let _ = applied_any;
    }

    /// Group updates only ever touch nodes the security view exposes, and
    /// denials never mutate anything.
    #[test]
    fn group_updates_stay_inside_the_view(seed in 0u64..10_000) {
        let engine = Engine::with_defaults();
        let vocab = engine.vocabulary().clone();
        engine.load_dtd(hospital::DTD).unwrap();
        engine.load_document_tree(hospital::generate_document(&vocab, seed, 200)).unwrap();
        engine
            .register_policy(hospital::GROUP, hospital::POLICY)
            .unwrap();
        let doc_before = engine.document().unwrap();
        let spec = engine.view(hospital::GROUP).unwrap();
        let accessible = smoqe_view::accessible_nodes(&spec, &doc_before).unwrap();

        let session = engine.session(User::Group(hospital::GROUP.into()));
        // Replacing a medication by a medication is always DTD-valid, so
        // acceptance depends on accessibility alone.
        let stmt = "replace hospital/patient/treatment/medication \
                    with <medication>autism</medication>";
        let update = parse_update(stmt, &vocab).unwrap();
        // The targets the engine will pick are exactly the accessible
        // medications selected through the view.
        let view = smoqe_view::materialize(&spec, &doc_before).unwrap();
        let view_hits = evaluate(&view.doc, &update.target);
        let expected = view.origins_of(view_hits.iter());
        for &t in &expected {
            prop_assert!(accessible.binary_search(&t).is_ok());
        }
        match session.update(stmt) {
            Ok(report) => {
                prop_assert_eq!(report.applied, expected.len());
                // Group reports count the document AS THE VIEW SEES IT —
                // source-side counts would leak hidden structure.
                prop_assert_eq!(report.nodes_before, view.doc.node_count());
                prop_assert!(report.nodes_before <= doc_before.node_count());
                // A medication swaps for a medication: size is stable.
                prop_assert_eq!(report.nodes_after, report.nodes_before);
            }
            Err(EngineError::UpdateDenied) => {
                prop_assert!(expected.is_empty(), "deny only when nothing accessible matches");
                prop_assert_eq!(
                    engine.document().unwrap().to_xml(),
                    doc_before.to_xml(),
                    "denied updates must not mutate"
                );
            }
            Err(other) => prop_assert!(false, "unexpected error: {}", other),
        }
    }
}

/// Regression (bugfix satellite): edits splicing at the very tail of the
/// id space — the last sibling of the root's final child — recompute
/// ancestors from the splice point only, which must keep the root-level
/// `subtree_end` / label-set maintenance of the positional index
/// consistent under `update_batch`; and a span touching the root itself
/// (root replacement) must fall back to a full positional rebuild.
#[test]
fn tail_and_root_spanning_updates_keep_the_label_index_consistent() {
    let engine = Engine::with_defaults();
    engine.load_dtd(hospital::DTD).unwrap();
    engine.load_document(hospital::SAMPLE_DOCUMENT).unwrap();
    engine.build_tax_index().unwrap();
    let doc = engine.document_handle(smoqe::DEFAULT_DOCUMENT).unwrap();

    let check = |stage: &str| {
        let tax = engine.tax_index().expect("index survives updates");
        let current = engine.document().unwrap();
        let rebuilt = TaxIndex::build(&current);
        assert_eq!(tax.node_count(), rebuilt.node_count(), "{stage}");
        for n in current.all_nodes() {
            assert_eq!(
                tax.descendant_labels(n).iter().collect::<Vec<_>>(),
                rebuilt.descendant_labels(n).iter().collect::<Vec<_>>(),
                "{stage}: node {n:?}"
            );
        }
        assert_label_index_matches(&tax, &current);
    };

    // Cal is the root's final child; the edits below all splice at (or
    // after) the last ids of the document.
    let reports = doc
        .update_batch(&[
            // Append after the final child's last visit (the last sibling
            // inside the root's final child).
            "insert <visit><treatment><test>mri</test></treatment><date>d1</date></visit> \
             after hospital/patient[pname = 'Cal']/visit[date = '2006-05-02']",
            // Append a whole new final child of the root.
            "insert <patient><pname>Tail</pname><visit><treatment><test>xray</test>\
             </treatment><date>d2</date></visit></patient> \
             after hospital/patient[pname = 'Cal']",
            // And take it away again (delete spanning the document tail).
            "delete hospital/patient[pname = 'Tail']",
        ])
        .unwrap();
    assert!(
        reports.iter().all(|r| r.tax_patched),
        "patched, not rebuilt"
    );
    check("tail splices");

    // Root replacement: span.parent is None, the positional index must
    // rebuild rather than splice — and still end up exact.
    doc.update(
        "replace hospital with <hospital><patient><pname>Solo</pname>\
         <visit><treatment><test>blood</test></treatment><date>d3</date></visit>\
         </patient></hospital>",
    )
    .unwrap();
    check("root replacement");
    assert_eq!(
        engine
            .session(User::Admin)
            .query("//patient")
            .unwrap()
            .len(),
        1
    );
}

#[test]
fn group_update_reports_count_the_view_not_the_source() {
    // Regression (information leak): deleting a visible node whose source
    // subtree contains hidden descendants must report VIEW-side node
    // counts — source-side counts would reveal how many hidden nodes the
    // subtree held.
    let engine = Engine::with_defaults();
    let doc = engine.open_document("h");
    hospital::install_sample(&doc).unwrap();
    let source_before = doc.document().unwrap();
    let spec = doc.view(hospital::GROUP).unwrap();
    let view_before = smoqe_view::materialize(&spec, &source_before).unwrap();

    let session = doc.session(User::Group(hospital::GROUP.into()));
    // Every view-visible patient goes away; their source subtrees are much
    // larger than their view images (pname/visit/date are hidden).
    let report = session.update("delete hospital/patient").unwrap();
    let source_after = doc.document().unwrap();
    let view_after = smoqe_view::materialize(&spec, &source_after).unwrap();

    assert_eq!(report.nodes_before, view_before.doc.node_count());
    assert_eq!(report.nodes_after, view_after.doc.node_count());
    let view_delta = report.nodes_before - report.nodes_after;
    let source_delta = source_before.node_count() - source_after.node_count();
    assert!(
        view_delta < source_delta,
        "the report must not expose the {source_delta}-node source delta \
         (view delta: {view_delta})"
    );
}

#[test]
fn group_update_that_breaks_the_view_is_opaquely_denied() {
    // The visible root is a legal target, but replacing it with a foreign
    // element makes the security view unmaterializable. A group session
    // must get the opaque denial (not a typed view/schema error that
    // could describe structure), and nothing may be installed.
    let engine = Engine::with_defaults();
    let doc = engine.open_document("h");
    hospital::install_sample(&doc).unwrap();
    let before = doc.document().unwrap().to_xml();
    let session = doc.session(User::Group(hospital::GROUP.into()));
    let err = session
        .update("replace hospital with <clinic/>")
        .unwrap_err();
    assert!(matches!(err, EngineError::UpdateDenied), "got {err}");
    assert_eq!(doc.document().unwrap().to_xml(), before);
}

#[test]
fn update_language_round_trips_through_the_engine() {
    let engine = Engine::with_defaults();
    engine.load_dtd(hospital::DTD).unwrap();
    engine.load_document(hospital::SAMPLE_DOCUMENT).unwrap();
    let admin = engine.session(User::Admin);

    // insert into / before / after, delete, replace — every primitive.
    engine
        .update(
            "insert <patient><pname>Neu</pname><visit><treatment><test>blood</test>\
             </treatment><date>d</date></visit></patient> into hospital",
        )
        .unwrap();
    engine
        .update(
            "insert <visit><treatment><medication>flu</medication></treatment><date>d2</date>\
             </visit> before hospital/patient[pname = 'Neu']/visit",
        )
        .unwrap();
    engine
        .update(
            "insert <visit><treatment><test>mri</test></treatment><date>d3</date>\
             </visit> after hospital/patient[pname = 'Neu']/visit[treatment/test = 'blood']",
        )
        .unwrap();
    assert_eq!(
        admin
            .query("hospital/patient[pname = 'Neu']/visit")
            .unwrap()
            .len(),
        3
    );
    // The inserted visits are ordered: flu, blood, mri.
    let xml = admin
        .query_xml("hospital/patient[pname = 'Neu']")
        .unwrap()
        .pop()
        .unwrap();
    let (flu, blood, mri) = (
        xml.find("flu").unwrap(),
        xml.find("blood").unwrap(),
        xml.find("mri").unwrap(),
    );
    assert!(flu < blood && blood < mri, "sibling order preserved: {xml}");

    engine
        .update("replace hospital/patient[pname = 'Neu']/pname with <pname>Alt</pname>")
        .unwrap();
    engine
        .update("delete hospital/patient[pname = 'Alt']")
        .unwrap();
    assert!(admin.query("//patient[pname = 'Alt']").unwrap().is_empty());
    assert!(admin.query("//patient[pname = 'Neu']").unwrap().is_empty());
}

#[test]
fn denied_and_accepted_updates_manage_generations_precisely() {
    let engine = Engine::with_defaults();
    let doc = engine.open_document("h");
    hospital::install_sample(&doc).unwrap();
    let session = doc.session(User::Group(hospital::GROUP.into()));
    let admin = doc.session(User::Admin);

    admin.query("//medication").unwrap();
    assert!(admin.query("//medication").unwrap().plan_cached);

    // A denied update must not bump the generation or drop plans.
    assert!(matches!(
        session.update("delete //pname"),
        Err(EngineError::UpdateDenied)
    ));
    assert!(
        admin.query("//medication").unwrap().plan_cached,
        "denied update must not invalidate plans"
    );

    // An accepted one invalidates this document's plans...
    session
        .update(
            "replace hospital/patient/treatment/medication with <medication>autism</medication>",
        )
        .unwrap();
    assert!(!admin.query("//medication").unwrap().plan_cached);
}

#[test]
fn view_paths_and_source_paths_are_different_worlds() {
    // The researchers' view hides `visit`: the *view* path
    // patient/treatment works, while the *source* path
    // patient/visit/treatment selects nothing for the group (visit is not
    // a view type) and is therefore denied.
    let engine = Engine::with_defaults();
    let doc = engine.open_document("h");
    hospital::install_sample(&doc).unwrap();
    let session = doc.session(User::Group(hospital::GROUP.into()));
    assert!(session
        .update(
            "replace hospital/patient/treatment/medication with <medication>autism</medication>"
        )
        .is_ok());
    assert!(matches!(
        session.update(
            "replace hospital/patient/visit/treatment/medication with <medication>autism</medication>"
        ),
        Err(EngineError::UpdateDenied)
    ));
}
