//! Property-based tests (proptest): the workspace invariants under
//! randomly generated documents and randomly generated Regular XPath.
//!
//! * print → parse round-trips the AST;
//! * every evaluator agrees with the naive reference on random inputs;
//! * the MFA optimizer never changes answers;
//! * TAX pruning never changes answers;
//! * TAX persistence round-trips;
//! * generated documents always validate against their DTD.

use proptest::prelude::*;
use smoqe::workloads::hospital;
use smoqe_automata::{compile, optimize::optimize};
use smoqe_hype::dom::{evaluate_mfa_with, DomOptions};
use smoqe_hype::stream::{evaluate_stream_str, StreamOptions};
use smoqe_hype::{evaluate_mfa_twopass, NoopObserver};
use smoqe_rxpath::random::{random_path, QueryGenConfig};
use smoqe_rxpath::{evaluate as naive, parse_path};
use smoqe_tax::TaxIndex;
use smoqe_xml::{Document, NodeId, Vocabulary};

/// One prepared document + query-generation config per RNG seed.
fn setup(doc_seed: u64) -> (Vocabulary, Document, QueryGenConfig) {
    let vocab = Vocabulary::new();
    hospital::dtd(&vocab);
    let doc = hospital::generate_document(&vocab, doc_seed, 400);
    let labels = vec![
        vocab.lookup("hospital").unwrap(),
        vocab.lookup("patient").unwrap(),
        vocab.lookup("pname").unwrap(),
        vocab.lookup("visit").unwrap(),
        vocab.lookup("treatment").unwrap(),
        vocab.lookup("medication").unwrap(),
        vocab.lookup("parent").unwrap(),
        vocab.lookup("test").unwrap(),
    ];
    let values = vec!["autism".into(), "headache".into(), "Ann".into()];
    let mut cfg = QueryGenConfig::new(labels, values);
    cfg.max_depth = 4;
    (vocab, doc, cfg)
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 64,
        .. ProptestConfig::default()
    })]

    #[test]
    fn print_parse_round_trip(seed in 0u64..10_000) {
        let vocab = Vocabulary::new();
        hospital::dtd(&vocab);
        let labels: Vec<_> = ["a", "b", "c", "d"].iter().map(|n| vocab.intern(n)).collect();
        let cfg = QueryGenConfig::new(labels, vec!["x".into(), "y".into()]);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        use rand::SeedableRng;
        let p = random_path(&mut rng, &cfg);
        let printed = p.display(&vocab).to_string();
        let reparsed = parse_path(&printed, &vocab)
            .unwrap_or_else(|e| panic!("unparseable `{printed}`: {e}"));
        prop_assert_eq!(reparsed.display(&vocab).to_string(), printed);
    }

    #[test]
    fn all_engines_agree_on_random_queries(doc_seed in 0u64..4, query_seed in 0u64..10_000) {
        use rand::SeedableRng;
        let (vocab, doc, cfg) = setup(doc_seed);
        let mut rng = rand::rngs::StdRng::seed_from_u64(query_seed);
        let path = random_path(&mut rng, &cfg);
        let expected = naive(&doc, &path);

        let mfa = compile(&path, &vocab);
        let (dom, _) = evaluate_mfa_with(&doc, &mfa, &DomOptions::default(), &mut NoopObserver);
        prop_assert_eq!(&dom, &expected, "HyPE/DOM, query {}", path.display(&vocab));

        let opt = optimize(&mfa);
        let (dom_opt, _) = evaluate_mfa_with(&doc, &opt, &DomOptions::default(), &mut NoopObserver);
        prop_assert_eq!(&dom_opt, &expected, "optimized, query {}", path.display(&vocab));

        let tax = TaxIndex::build(&doc);
        let opts = DomOptions { tax: Some(&tax) };
        let (pruned, _) = evaluate_mfa_with(&doc, &opt, &opts, &mut NoopObserver);
        prop_assert_eq!(&pruned, &expected, "TAX, query {}", path.display(&vocab));

        let (two, _) = evaluate_mfa_twopass(&doc, &mfa);
        prop_assert_eq!(&two, &expected, "two-pass, query {}", path.display(&vocab));

        let xml = doc.to_xml();
        let stream = evaluate_stream_str(&xml, &mfa, &vocab, StreamOptions::default()).unwrap();
        let stream_nodes: Vec<NodeId> = stream.answers.into_iter().map(NodeId).collect();
        prop_assert_eq!(stream_nodes.as_slice(), expected.as_slice(),
            "stream, query {}", path.display(&vocab));
    }

    #[test]
    fn generated_documents_always_validate(seed in 0u64..200, size in 50usize..600) {
        let vocab = Vocabulary::new();
        let dtd = hospital::dtd(&vocab);
        let doc = hospital::generate_document(&vocab, seed, size);
        prop_assert!(dtd.validate(&doc).is_ok());
        prop_assert!(doc.node_count() >= size);
    }

    #[test]
    fn document_serialization_round_trips(seed in 0u64..200) {
        let vocab = Vocabulary::new();
        hospital::dtd(&vocab);
        let doc = hospital::generate_document(&vocab, seed, 200);
        let xml = doc.to_xml();
        let doc2 = Document::parse_str(&xml, &vocab).unwrap();
        prop_assert_eq!(doc2.to_xml(), xml);
        prop_assert_eq!(doc2.node_count(), doc.node_count());
    }

    #[test]
    fn tax_persistence_round_trips(seed in 0u64..100) {
        let vocab = Vocabulary::new();
        hospital::dtd(&vocab);
        let doc = hospital::generate_document(&vocab, seed, 300);
        let tax = TaxIndex::build(&doc);
        let mut buf = Vec::new();
        tax.save(&mut buf, &vocab).unwrap();
        let loaded = TaxIndex::load(&mut &buf[..], &vocab).unwrap();
        for n in doc.all_nodes() {
            prop_assert_eq!(
                tax.descendant_labels(n).iter().collect::<Vec<_>>(),
                loaded.descendant_labels(n).iter().collect::<Vec<_>>()
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 32,
        .. ProptestConfig::default()
    })]

    /// The headline invariant under random *view* queries: rewriting over
    /// the derived hospital view is equivalent to materialize-then-query.
    #[test]
    fn rewriting_equivalence_on_random_view_queries(doc_seed in 0u64..3, query_seed in 0u64..5_000) {
        use rand::SeedableRng;
        use smoqe_view::{derive, materialize, AccessPolicy};

        let vocab = Vocabulary::new();
        let dtd = hospital::dtd(&vocab);
        let policy = AccessPolicy::parse(dtd.clone(), hospital::POLICY).unwrap();
        let spec = derive(&policy);
        let doc = hospital::generate_document(&vocab, doc_seed, 300);

        // Queries over the *view* alphabet.
        let view_labels = vec![
            vocab.lookup("hospital").unwrap(),
            vocab.lookup("patient").unwrap(),
            vocab.lookup("parent").unwrap(),
            vocab.lookup("treatment").unwrap(),
            vocab.lookup("medication").unwrap(),
        ];
        let mut cfg = QueryGenConfig::new(view_labels, vec!["autism".into(), "flu".into()]);
        cfg.max_depth = 3;
        let mut rng = rand::rngs::StdRng::seed_from_u64(query_seed);
        let q = random_path(&mut rng, &cfg);

        let mfa = smoqe_rewrite::rewrite(&q, &spec);
        let (got, _) = smoqe_hype::evaluate_mfa(&doc, &mfa);
        let view = materialize(&spec, &doc).unwrap();
        let expected = view.origins_of(naive(&view.doc, &q).iter());
        prop_assert_eq!(got.as_slice(), expected.as_slice(),
            "Q'(T) != Q(V(T)) for {}", q.display(&vocab));
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 64,
        .. ProptestConfig::default()
    })]

    /// The wire codec invariant behind the chaos harness's dribble
    /// fault: however the TCP layer chops the byte stream — one byte at
    /// a time, across frame boundaries, mid-header — `FrameBuffer`
    /// reassembles exactly the frames that were sent, in order, with
    /// ids and payloads intact.
    #[test]
    fn frame_reassembly_is_chop_invariant(
        seed in 0u64..100_000,
        nframes in 1usize..8,
        max_chop in 1usize..9,
    ) {
        use smoqe_server::proto::{FrameBuffer, Request, DEFAULT_MAX_FRAME_LEN};

        // Seed-derived queries and chop sizes (xorshift64*, the
        // workspace's usual deterministic generator).
        let mut state = seed.wrapping_mul(2).max(1);
        let mut next = move || {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            state.wrapping_mul(0x2545_F491_4F6C_DD1D)
        };
        let alphabet: Vec<char> = "abcdefghij/*()@ ".chars().collect();
        let requests: Vec<Request> = (0..nframes)
            .map(|i| Request::Query {
                query: (0..next() as usize % 40)
                    .map(|_| alphabet[next() as usize % alphabet.len()])
                    .collect(),
                deadline_ms: (next() % 5_000) as u32 + i as u32,
            })
            .collect();
        let mut stream = Vec::new();
        for (i, r) in requests.iter().enumerate() {
            stream.extend_from_slice(&r.encode(i as u64 + 1));
        }

        // Deliver the stream in random chops of 1..=max_chop bytes, the
        // way the chaos proxy's dribble fault does at its cruelest.
        let mut fb = FrameBuffer::new();
        let mut decoded = Vec::new();
        let mut ids = Vec::new();
        let mut offset = 0;
        while offset < stream.len() {
            let n = (1 + next() as usize % max_chop).min(stream.len() - offset);
            fb.push(&stream[offset..offset + n]);
            offset += n;
            while let Some(frame) = fb.next_frame(DEFAULT_MAX_FRAME_LEN).unwrap() {
                ids.push(frame.request_id);
                decoded.push(Request::decode(frame.op, &frame.payload).unwrap());
            }
        }
        prop_assert_eq!(decoded, requests);
        prop_assert_eq!(ids, (1..=nframes as u64).collect::<Vec<_>>());
    }
}
