//! Error-path coverage of the engine façade: every failure mode surfaces
//! a typed, descriptive error instead of a panic.

use smoqe::workloads::hospital;
use smoqe::{Engine, EngineError, User};

#[test]
fn query_without_document_fails_cleanly() {
    let e = Engine::with_defaults();
    e.load_dtd(hospital::DTD).unwrap();
    let s = e.session(User::Admin);
    assert!(matches!(s.query("hospital"), Err(EngineError::NoDocument)));
}

#[test]
fn register_policy_requires_dtd() {
    let e = Engine::with_defaults();
    assert!(matches!(
        e.register_policy("g", hospital::POLICY),
        Err(EngineError::NoDocument)
    ));
}

#[test]
fn malformed_query_is_a_query_error() {
    let e = Engine::with_defaults();
    e.load_dtd(hospital::DTD).unwrap();
    e.load_document(hospital::SAMPLE_DOCUMENT).unwrap();
    let s = e.session(User::Admin);
    for bad in ["hospital//", "a[", "a/b | ", "(a", "a)b", "a[b = ]"] {
        match s.query(bad) {
            Err(EngineError::Query(err)) => {
                assert!(err.to_string().contains("offset"), "{bad}: {err}")
            }
            other => panic!("`{bad}` gave {other:?}"),
        }
    }
}

#[test]
fn malformed_policy_is_a_policy_error() {
    let e = Engine::with_defaults();
    e.load_dtd(hospital::DTD).unwrap();
    let err = e
        .register_policy("g", "ann(hospital, nothere) = N")
        .unwrap_err();
    assert!(matches!(err, EngineError::Policy(_)));
    assert!(err.to_string().contains("unknown DTD edge"));
}

#[test]
fn malformed_view_spec_is_a_view_error() {
    let e = Engine::with_defaults();
    e.load_dtd(hospital::DTD).unwrap();
    // Nullable sigma.
    let err = e
        .register_view_spec(
            "g",
            "<!ELEMENT hospital (patient*)>\n<!ELEMENT patient EMPTY>\n\
             sigma(hospital, patient) = (patient)*\n",
        )
        .unwrap_err();
    assert!(matches!(err, EngineError::View(_)));
    assert!(err.to_string().contains("nullable"));
}

#[test]
fn invalid_document_rejected_with_dtd_details() {
    let e = Engine::with_defaults();
    e.load_dtd(hospital::DTD).unwrap();
    let err = e
        .load_document("<hospital><unknown/></hospital>")
        .unwrap_err();
    // Either diagnosis is correct: the parent's content model fails, or
    // the undeclared element is flagged (validation visits parents first).
    let msg = err.to_string();
    assert!(
        msg.contains("content model") || msg.contains("not declared"),
        "{msg}"
    );
}

#[test]
fn malformed_xml_rejected_with_position() {
    let e = Engine::with_defaults();
    let err = e.load_document("<a><b></a>").unwrap_err();
    assert!(err.to_string().contains("offset"), "{err}");
}

#[test]
fn tax_persistence_errors_are_reported() {
    let e = Engine::with_defaults();
    e.load_dtd(hospital::DTD).unwrap();
    e.load_document(hospital::SAMPLE_DOCUMENT).unwrap();
    // Saving without building.
    assert!(e.save_tax_index("/tmp/never-written.tax").is_err());
    // Loading garbage.
    let dir = std::env::temp_dir().join("smoqe-errors-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("garbage.tax");
    std::fs::write(&path, b"not a tax index at all").unwrap();
    assert!(e.load_tax_index(&path).is_err());
    std::fs::remove_file(&path).ok();
}

#[test]
fn errors_display_and_chain_sources() {
    use std::error::Error as _;
    let e = Engine::with_defaults();
    e.load_dtd(hospital::DTD).unwrap();
    e.load_document(hospital::SAMPLE_DOCUMENT).unwrap();
    let err = e.session(User::Admin).query("((((").unwrap_err();
    // The source chain reaches the underlying parse error.
    assert!(err.source().is_some());
}
