//! The multi-tenant serving surface: one engine, many documents, many
//! concurrent sessions.
//!
//! * owned `Send + Sync` sessions answer queries from many threads with
//!   answers identical to serial evaluation;
//! * repeated queries hit the shared plan cache (observable through the
//!   exposed hit/miss counters);
//! * replacing a document, its DTD, or a view invalidates exactly the
//!   affected cached plans;
//! * catalog documents and their user groups are isolated from each other.

use smoqe::workloads::{hospital, org};
use smoqe::{DocHandle, Engine, EngineConfig, User};
use smoqe_xml::NodeId;
use std::sync::Arc;

fn hospital_doc(engine: &Arc<Engine>, name: &str) -> DocHandle {
    let doc = engine.open_document(name);
    hospital::install_sample(&doc).unwrap();
    doc
}

/// Every (user, query) pair a serving mix would issue against the
/// hospital sample, with several distinct groups registered.
fn serving_mix(doc: &DocHandle) -> Vec<(User, &'static str)> {
    doc.register_view_spec(
        "meds-only",
        "<!ELEMENT hospital (medication*)>\n\
         <!ELEMENT medication (#PCDATA)>\n\
         sigma(hospital, medication) = patient/visit/treatment/medication\n",
    )
    .unwrap();
    doc.register_policy("open", "# allow-all policy: no annotations\n")
        .unwrap();
    let mut mix = Vec::new();
    for (_, q) in hospital::DOC_QUERIES {
        mix.push((User::Admin, *q));
    }
    for (_, q) in hospital::VIEW_QUERIES {
        for group in [hospital::GROUP, "open"] {
            mix.push((User::Group(group.into()), *q));
        }
    }
    mix.push((User::Group("meds-only".into()), "hospital/medication"));
    mix.push((User::Group("meds-only".into()), "//patient"));
    mix
}

#[test]
fn concurrent_sessions_agree_with_serial_evaluation() {
    let engine = Engine::with_defaults();
    let doc = hospital_doc(&engine, "hospital");
    doc.build_tax_index().unwrap();
    let mix = serving_mix(&doc);

    // Serial reference, computed before any threads exist.
    let serial: Vec<Vec<NodeId>> = mix
        .iter()
        .map(|(user, q)| doc.session(user.clone()).query(q).unwrap().nodes)
        .collect();

    // Two full passes over the mix from each of 8 threads, all through
    // owned sessions of the same engine.
    const THREADS: usize = 8;
    let mix = Arc::new(mix);
    let serial = Arc::new(serial);
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let doc = doc.clone();
            let mix = mix.clone();
            let serial = serial.clone();
            std::thread::spawn(move || {
                // Stagger starting offsets so threads hit different
                // queries at the same time.
                for round in 0..2 {
                    for i in 0..mix.len() {
                        let idx = (i + t * 3 + round) % mix.len();
                        let (user, q) = &mix[idx];
                        let session = doc.session(user.clone());
                        let answer = session.query(q).unwrap();
                        assert_eq!(
                            answer.nodes, serial[idx],
                            "thread {t} diverged from serial on `{q}` as {user:?}"
                        );
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    let m = engine.cache_metrics();
    assert!(
        m.hits > 0,
        "the concurrent mix must reuse cached plans: {m:?}"
    );
}

#[test]
fn repeated_query_is_a_cache_hit() {
    let engine = Engine::with_defaults();
    let doc = hospital_doc(&engine, "h");
    let session = doc.session(User::Group(hospital::GROUP.into()));

    let before = engine.cache_metrics();
    let first = session.query("//medication").unwrap();
    assert!(!first.plan_cached, "first run must compile");
    let second = session.query("//medication").unwrap();
    assert!(second.plan_cached, "second run must hit the cache");
    assert_eq!(first.nodes, second.nodes);

    let after = engine.cache_metrics();
    assert_eq!(after.hits, before.hits + 1);
    assert_eq!(after.misses, before.misses + 1);
    assert!(after.entries >= 1);
}

#[test]
fn document_replacement_invalidates_cached_plans() {
    let engine = Engine::with_defaults();
    let doc = hospital_doc(&engine, "h");
    let session = doc.session(User::Admin);
    session.query("//medication").unwrap();
    assert!(session.query("//medication").unwrap().plan_cached);

    doc.load_document(hospital::SAMPLE_DOCUMENT).unwrap();
    let invalidations = engine.cache_metrics().invalidations;
    assert!(invalidations >= 1, "reload must invalidate cached plans");
    assert!(
        !session.query("//medication").unwrap().plan_cached,
        "post-reload query must recompile"
    );
}

#[test]
fn view_reregistration_invalidates_only_that_group() {
    let engine = Engine::with_defaults();
    let doc = hospital_doc(&engine, "h");
    let researcher = doc.session(User::Group(hospital::GROUP.into()));
    let admin = doc.session(User::Admin);
    researcher.query("//medication").unwrap();
    admin.query("//medication").unwrap();

    doc.register_policy(hospital::GROUP, hospital::POLICY)
        .unwrap();
    assert!(
        !researcher.query("//medication").unwrap().plan_cached,
        "the re-registered group's plans must be invalid"
    );
    assert!(
        admin.query("//medication").unwrap().plan_cached,
        "admin plans must survive a view change"
    );
}

#[test]
fn documents_in_the_catalog_are_isolated() {
    let engine = Engine::with_defaults();
    let hosp = hospital_doc(&engine, "hospital");
    let orgdoc = engine.open_document("org");
    org::install_sample(&orgdoc).unwrap();

    // Same query text, same engine, different documents and policies.
    let hosp_all = hosp.session(User::Admin).query("//*").unwrap();
    let org_all = orgdoc.session(User::Admin).query("//*").unwrap();
    assert_ne!(hosp_all.nodes.len(), org_all.nodes.len());

    // Groups are scoped to their document.
    assert!(orgdoc
        .session(User::Group(hospital::GROUP.into()))
        .query("//emp")
        .is_err());
    assert!(hosp
        .session(User::Group(org::GROUP.into()))
        .query("//patient")
        .is_err());

    // Sessions opened by name agree with handle-minted ones.
    let by_name = engine
        .session_on("org", User::Group(org::GROUP.into()))
        .unwrap();
    let by_handle = orgdoc.session(User::Group(org::GROUP.into()));
    assert_eq!(
        by_name.query("//ename").unwrap().nodes,
        by_handle.query("//ename").unwrap().nodes
    );
}

#[test]
fn stale_session_on_reopened_name_cannot_poison_the_cache() {
    // Regression: generation counters restart per entry, so a document
    // name that is dropped and re-opened reproduces old (name, generation)
    // pairs. A session still bound to the OLD entry must not repopulate
    // plan-cache keys the NEW entry's sessions then hit — its plans were
    // rewritten through the old security view.
    let engine = Engine::with_defaults();
    let old = engine.open_document("h");
    hospital::install_sample(&old).unwrap();
    let old_session = old.session(User::Group(hospital::GROUP.into()));

    assert!(engine.drop_document("h"));
    let fresh = engine.open_document("h");
    fresh.load_dtd(hospital::DTD).unwrap();
    fresh.load_document(hospital::SAMPLE_DOCUMENT).unwrap();
    // Same generation sequence as the old entry, but an allow-all view.
    fresh
        .register_policy(hospital::GROUP, "# allow-all policy: no annotations\n")
        .unwrap();

    // The old session caches a plan compiled through the restrictive view.
    assert!(old_session.query("//pname").unwrap().is_empty());
    // The fresh entry's session must compile its own plan (no cache hit
    // across entries) and see names per the allow-all policy.
    let fresh_answer = fresh
        .session(User::Group(hospital::GROUP.into()))
        .query("//pname")
        .unwrap();
    assert!(!fresh_answer.plan_cached, "cross-entry cache hit");
    assert!(!fresh_answer.is_empty(), "old view leaked into new entry");
}

#[test]
fn sessions_survive_document_drop_and_reload() {
    let engine = Engine::with_defaults();
    let doc = hospital_doc(&engine, "h");
    let session = doc.session(User::Admin);
    assert!(!session.query("//medication").unwrap().is_empty());

    // Dropping the catalog name doesn't kill live sessions...
    assert!(engine.drop_document("h"));
    assert!(!session.query("//medication").unwrap().is_empty());
    // ...but the name is gone from the catalog.
    assert!(engine.session_on("h", User::Admin).is_err());

    // Re-opening the name creates a fresh, empty entry.
    let fresh = engine.open_document("h");
    assert!(fresh.session(User::Admin).query("//medication").is_err());
}

#[test]
fn multi_group_batch_shares_one_scan_and_matches_serial() {
    // One engine, one document, FOUR principals (admin + three groups with
    // different views): a single cross-session batch must answer all of
    // them in one scan, each through its own view.
    let engine = Engine::with_defaults();
    let doc = hospital_doc(&engine, "hospital");
    let mix = serving_mix(&doc);

    let sessions: Vec<smoqe::Session> = mix
        .iter()
        .map(|(user, _)| doc.session(user.clone()))
        .collect();
    let requests: Vec<(&smoqe::Session, &str)> = sessions
        .iter()
        .zip(mix.iter())
        .map(|(s, (_, q))| (s, *q))
        .collect();

    let batch = engine.evaluate_batch(&requests).unwrap();
    assert_eq!(batch.answers.len(), mix.len());
    for ((user, q), answer) in mix.iter().zip(&batch.answers) {
        let serial = doc.session(user.clone()).query(q).unwrap();
        assert_eq!(
            answer.nodes, serial.nodes,
            "batched `{q}` as {user:?} diverged from serial"
        );
    }
    // The whole multi-group mix cost a single document scan.
    let one_scan = engine.evaluate_batch(&requests[..1]).unwrap().events;
    assert_eq!(batch.events, one_scan, "batch re-scanned the document");

    // The mix covers several distinct principals over the same scan.
    let distinct: std::collections::HashSet<_> = mix.iter().map(|(u, _)| u.clone()).collect();
    assert!(distinct.len() >= 4, "mix should span admin + 3 groups");

    // Batching from multiple threads stays consistent too.
    std::thread::scope(|scope| {
        for _ in 0..4 {
            let engine = &engine;
            let requests = &requests;
            let batch = &batch;
            scope.spawn(move || {
                let again = engine.evaluate_batch(requests).unwrap();
                for (a, b) in again.answers.iter().zip(&batch.answers) {
                    assert_eq!(a.nodes, b.nodes);
                }
            });
        }
    });
}

/// Applies one update through the engine's write path the first time the
/// evaluator enters a node — i.e. provably *while a query is running*.
struct MidQueryUpdater {
    doc: DocHandle,
    statement: &'static str,
    fired: bool,
}

impl smoqe::hype::EvalObserver for MidQueryUpdater {
    fn enter_node(&mut self, _node: u32, _label: smoqe_xml::Label, _depth: usize) {
        if !self.fired {
            self.fired = true;
            self.doc.update(self.statement).unwrap();
        }
    }
}

#[test]
fn update_landing_mid_query_leaves_the_reader_on_its_snapshot() {
    // Deterministic reader isolation: the update is applied from inside
    // the evaluation (via the observer hook), so the query is mid-flight
    // by construction when the new snapshot is installed. The in-flight
    // query must complete with pre-update answers — evaluation holds no
    // lock, only its Arc snapshot — and the next query sees the update.
    let engine = Engine::with_defaults();
    let doc = hospital_doc(&engine, "h");
    doc.build_tax_index().unwrap();
    let session = doc.session(User::Admin);
    let pre = session.query("//medication").unwrap().nodes;

    let mut updater = MidQueryUpdater {
        doc: doc.clone(),
        statement: "insert <patient><pname>Mid</pname><visit><treatment>\
                    <medication>autism</medication></treatment><date>d</date></visit>\
                    </patient> into hospital",
        fired: false,
    };
    let during = session
        .query_observed("//medication", &mut updater)
        .unwrap();
    assert!(updater.fired, "the update must have landed mid-query");
    assert_eq!(
        during.nodes, pre,
        "the in-flight reader must finish on its pre-update snapshot"
    );

    let after = session.query("//medication").unwrap();
    assert_eq!(after.len(), pre.len() + 1, "a fresh query sees the update");
    assert!(
        !after.plan_cached,
        "the update invalidated this doc's plans"
    );
}

#[test]
fn mid_batch_readers_complete_on_exactly_one_snapshot() {
    // A thread runs query_batch while the main thread applies an update.
    // Whichever side wins the race, the batch must be answered entirely
    // from ONE snapshot: all answers pre-update, or all post-update —
    // never a torn mix — and a fresh batch afterwards is all-post.
    let engine = Engine::with_defaults();
    let doc = engine.open_document("big");
    doc.load_dtd(hospital::DTD).unwrap();
    let tree = {
        let vocab = engine.vocabulary().clone();
        hospital::generate_document(&vocab, 7, 20_000)
    };
    doc.load_document_tree(tree).unwrap();
    let queries = ["//medication", "//pname", "//patient"];
    let statement = "insert <patient><pname>Raced</pname><visit><treatment>\
                     <medication>autism</medication></treatment><date>d</date></visit>\
                     </patient> into hospital";

    let pre: Vec<Vec<NodeId>> = doc
        .query_batch(&User::Admin, &queries)
        .unwrap()
        .answers
        .into_iter()
        .map(|a| a.nodes)
        .collect();

    let session = doc.session(User::Admin);
    let (tx, rx) = std::sync::mpsc::channel();
    let reader = std::thread::spawn(move || {
        tx.send(()).unwrap();
        session.query_batch(&queries).unwrap()
    });
    rx.recv().unwrap();
    doc.update(statement).unwrap();
    let raced = reader.join().unwrap();

    let post: Vec<Vec<NodeId>> = doc
        .query_batch(&User::Admin, &queries)
        .unwrap()
        .answers
        .into_iter()
        .map(|a| a.nodes)
        .collect();
    for (p, q) in pre.iter().zip(&post) {
        assert_eq!(
            q.len(),
            p.len() + 1,
            "the inserted patient shifts every count"
        );
    }

    let raced: Vec<Vec<NodeId>> = raced.answers.into_iter().map(|a| a.nodes).collect();
    assert!(
        raced == pre || raced == post,
        "the racing batch mixed snapshots: {:?} answers",
        raced.iter().map(Vec::len).collect::<Vec<_>>()
    );
}

#[test]
fn dropped_documents_plans_are_purged_eagerly_and_stay_out() {
    // Regression (cache hygiene on drop): dropping a document must purge
    // its plans immediately — counted as invalidations, not left to decay
    // via capacity eviction — and a session still bound to the dropped
    // entry must not repopulate the shared cache afterwards.
    let engine = Engine::with_defaults();
    let doc = hospital_doc(&engine, "h");
    let session = doc.session(User::Admin);
    session.query("//medication").unwrap();
    session.query("//pname").unwrap();
    let before = engine.cache_metrics();
    assert_eq!(before.entries, 2, "two plans resident pre-drop");

    assert!(engine.drop_document("h"));
    let after = engine.cache_metrics();
    assert_eq!(after.entries, 0, "drop must purge the plans eagerly");
    assert_eq!(
        after.invalidations,
        before.invalidations + 2,
        "purged plans count as invalidations"
    );

    // The surviving session still works, but compiles outside the cache.
    let answer = session.query("//medication").unwrap();
    assert!(!answer.is_empty());
    assert!(!answer.plan_cached);
    let repeat = session.query("//medication").unwrap();
    assert!(
        !repeat.plan_cached,
        "a dropped entry must not regrow cache residency"
    );
    assert_eq!(engine.cache_metrics().entries, 0);
}

#[test]
fn concurrent_sessions_work_across_documents_and_modes() {
    // DOM and stream engines, each serving two documents from 4 threads
    // per engine; every thread's answers must match the serial ones.
    for config in [EngineConfig::default(), EngineConfig::streaming()] {
        let engine = Engine::new(config);
        let hosp = hospital_doc(&engine, "hospital");
        let orgdoc = engine.open_document("org");
        org::install_sample(&orgdoc).unwrap();

        let work: Vec<(DocHandle, User, &str)> = vec![
            (
                hosp.clone(),
                User::Group(hospital::GROUP.into()),
                "//medication",
            ),
            (hosp.clone(), User::Admin, "hospital/patient/pname"),
            (orgdoc.clone(), User::Group(org::GROUP.into()), "//ename"),
            (orgdoc.clone(), User::Admin, "//salary"),
        ];
        let serial: Vec<Vec<NodeId>> = work
            .iter()
            .map(|(doc, user, q)| doc.session(user.clone()).query(q).unwrap().nodes)
            .collect();
        let work = Arc::new(work);
        let serial = Arc::new(serial);
        let handles: Vec<_> = (0..8)
            .map(|t| {
                let work = work.clone();
                let serial = serial.clone();
                std::thread::spawn(move || {
                    for i in 0..work.len() {
                        let idx = (i + t) % work.len();
                        let (doc, user, q) = &work[idx];
                        let nodes = doc.session(user.clone()).query(q).unwrap().nodes;
                        assert_eq!(nodes, serial[idx], "{q} diverged");
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }
}
