//! Differential suite for the compiled evaluation plans: on random
//! documents × random Regular XPath queries, the dense-table executor
//! ([`ExecMode::Compiled`]) and the per-event NFA interpreter
//! ([`ExecMode::Interpreted`]) must produce **identical answers and
//! identical skip/event counts** in DOM mode (with and without TAX
//! pruning), stream mode, and batch mode — and both must agree with the
//! naive reference evaluator.

use proptest::prelude::*;
use smoqe::workloads::hospital;
use smoqe_automata::compile::CompiledMfa;
use smoqe_automata::{compile, optimize::optimize};
use smoqe_hype::batch::evaluate_batch_stream_plans;
use smoqe_hype::dom::{evaluate_mfa_plan, DomOptions};
use smoqe_hype::stream::{evaluate_stream_plan_with, StreamOptions};
use smoqe_hype::{ExecMode, NoopObserver};
use smoqe_rxpath::random::{random_path, QueryGenConfig};
use smoqe_rxpath::{evaluate as naive, parse_path};
use smoqe_tax::TaxIndex;
use smoqe_xml::{Document, NodeId, Vocabulary};

/// One prepared document + query-generation config per RNG seed.
fn setup(doc_seed: u64) -> (Vocabulary, Document, QueryGenConfig) {
    let vocab = Vocabulary::new();
    hospital::dtd(&vocab);
    let doc = hospital::generate_document(&vocab, doc_seed, 400);
    let labels = vec![
        vocab.lookup("hospital").unwrap(),
        vocab.lookup("patient").unwrap(),
        vocab.lookup("pname").unwrap(),
        vocab.lookup("visit").unwrap(),
        vocab.lookup("treatment").unwrap(),
        vocab.lookup("medication").unwrap(),
        vocab.lookup("parent").unwrap(),
        vocab.lookup("test").unwrap(),
    ];
    let values = vec!["autism".into(), "headache".into(), "Ann".into()];
    let mut cfg = QueryGenConfig::new(labels, values);
    cfg.max_depth = 4;
    (vocab, doc, cfg)
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 48,
        .. ProptestConfig::default()
    })]

    #[test]
    fn compiled_equals_interpreted_everywhere(
        doc_seed in 0u64..6,
        query_seed in 0u64..10_000,
        optimized in 0u64..2,
    ) {
        let optimized = optimized == 1;
        let (vocab, doc, cfg) = setup(doc_seed);
        let xml = doc.to_xml();
        let tax = TaxIndex::build(&doc);

        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(query_seed);
        let path = random_path(&mut rng, &cfg);
        let printed = path.display(&vocab).to_string();
        let path = parse_path(&printed, &vocab).unwrap();
        let mfa = if optimized {
            optimize(&compile(&path, &vocab))
        } else {
            compile(&path, &vocab)
        };
        let plan = CompiledMfa::compile(&mfa);
        let expected = naive(&doc, &path);

        // DOM mode, with and without TAX pruning: identical answers AND
        // identical traversal/skip counters.
        for tax_opt in [None, Some(&tax)] {
            let options = DomOptions { tax: tax_opt };
            let (a_c, s_c) =
                evaluate_mfa_plan(&doc, &plan, &options, ExecMode::Compiled, &mut NoopObserver);
            let (a_i, s_i) =
                evaluate_mfa_plan(&doc, &plan, &options, ExecMode::Interpreted, &mut NoopObserver);
            prop_assert_eq!(&a_c, &expected, "compiled/DOM vs naive on `{}`", printed);
            prop_assert_eq!(&a_i, &expected, "interpreted/DOM vs naive on `{}`", printed);
            prop_assert_eq!(
                s_c.nodes_visited, s_i.nodes_visited,
                "visited nodes diverged on `{}` (tax={})", printed, tax_opt.is_some()
            );
            prop_assert_eq!(
                s_c.subtrees_skipped_dead, s_i.subtrees_skipped_dead,
                "dead-run skips diverged on `{}`", printed
            );
            prop_assert_eq!(
                s_c.subtrees_pruned_tax, s_i.subtrees_pruned_tax,
                "TAX prunes diverged on `{}`", printed
            );
            prop_assert_eq!(
                s_c.immediate_answers, s_i.immediate_answers,
                "immediate answers diverged on `{}`", printed
            );
        }

        // Stream mode: identical answers and event counts.
        let stream = |mode| {
            evaluate_stream_plan_with(
                xml.as_bytes(),
                &plan,
                &vocab,
                StreamOptions::default(),
                mode,
                &mut NoopObserver,
            )
            .unwrap()
        };
        let out_c = stream(ExecMode::Compiled);
        let out_i = stream(ExecMode::Interpreted);
        let expected_ids: Vec<u32> = expected.iter().map(|n| n.0).collect();
        prop_assert_eq!(&out_c.answers, &expected_ids, "compiled/stream on `{}`", printed);
        prop_assert_eq!(&out_i.answers, &expected_ids, "interpreted/stream on `{}`", printed);
        prop_assert_eq!(out_c.events, out_i.events, "stream events diverged on `{}`", printed);
        prop_assert_eq!(
            out_c.stats.nodes_visited, out_i.stats.nodes_visited,
            "stream visited diverged on `{}`", printed
        );

        // Batch mode: the same plan twice in one shared scan, both modes.
        let batch = |mode| {
            let lanes = [
                (&plan, StreamOptions::default()),
                (&plan, StreamOptions { want_xml: true }),
            ];
            evaluate_batch_stream_plans(xml.as_bytes(), &lanes, &vocab, mode).unwrap()
        };
        let b_c = batch(ExecMode::Compiled);
        let b_i = batch(ExecMode::Interpreted);
        prop_assert_eq!(b_c.events, b_i.events, "batch events diverged on `{}`", printed);
        for (lane_c, lane_i) in b_c.outcomes.iter().zip(&b_i.outcomes) {
            prop_assert_eq!(&lane_c.answers, &expected_ids, "compiled/batch on `{}`", printed);
            prop_assert_eq!(&lane_i.answers, &expected_ids, "interpreted/batch on `{}`", printed);
        }
        // The XML-buffering lane must serialize identically in both modes.
        prop_assert_eq!(
            b_c.outcomes[1].answer_xml.as_ref(),
            b_i.outcomes[1].answer_xml.as_ref(),
            "buffered answer XML diverged on `{}`",
            printed
        );
    }

    /// The `Cow` fast path of `direct_text`/`string_value` must agree with
    /// the allocating originals on arbitrary generated documents.
    #[test]
    fn text_cow_accessors_agree(doc_seed in 0u64..50) {
        let vocab = Vocabulary::new();
        hospital::dtd(&vocab);
        let doc = hospital::generate_document(&vocab, doc_seed, 200);
        for n in doc.all_nodes() {
            let n = NodeId(n.0);
            prop_assert_eq!(doc.direct_text(n), doc.direct_text_cow(n).into_owned());
            prop_assert_eq!(doc.string_value(n), doc.string_value_cow(n).into_owned());
        }
    }
}
