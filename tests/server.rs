//! The serving layer, end to end over real sockets: wire answers must
//! match in-process sessions per principal, admission control must
//! refuse politely (`Busy`, never a disconnect), hostile bytes must not
//! crash anything, denials must stay byte-indistinguishable on the wire,
//! and a draining server must finish what it admitted.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use smoqe::{workloads::hospital, Engine, EngineConfig};
use smoqe_server::proto::{
    code, encode_frame, op, Frame, FrameBuffer, Request, Response, DEFAULT_MAX_FRAME_LEN,
};
use smoqe_server::{
    Client, ClientError, Principal, RecoveryGate, RetryPolicy, Server, ServerConfig, ServerHandle,
    TenantQuota,
};

/// Hospital sample under the catalog name `wards`, plus a second group so
/// cross-group multiplexing is testable, served on an ephemeral port.
fn start_server(config: ServerConfig) -> (ServerHandle, Arc<Engine>) {
    let engine = Engine::with_defaults();
    let doc = engine.open_document("wards");
    hospital::install_sample(&doc).unwrap();
    doc.register_policy("auditors", hospital::POLICY).unwrap();
    let handle = Server::start(engine.clone(), config).unwrap();
    (handle, engine)
}

fn connect(handle: &ServerHandle) -> Client {
    let mut client = Client::connect(handle.local_addr()).unwrap();
    client.set_timeout(Some(Duration::from_secs(30))).unwrap();
    client
}

fn researcher(handle: &ServerHandle) -> Client {
    let mut client = connect(handle);
    client
        .hello("wards", Principal::Group(hospital::GROUP.into()))
        .unwrap();
    client
}

/// Reads one frame from a raw socket (for tests that bypass `Client`).
fn read_raw_frame(stream: &mut TcpStream, fb: &mut FrameBuffer) -> Option<Frame> {
    let mut buf = [0u8; 4096];
    loop {
        match fb.next_frame(DEFAULT_MAX_FRAME_LEN) {
            Ok(Some(frame)) => return Some(frame),
            Ok(None) => {}
            Err(_) => return None,
        }
        match stream.read(&mut buf) {
            Ok(0) | Err(_) => return None,
            Ok(n) => fb.push(&buf[..n]),
        }
    }
}

// -------------------------------------------------------------------------
// Remote ≡ in-process, per principal, under concurrency
// -------------------------------------------------------------------------

#[test]
fn concurrent_remote_clients_match_in_process_sessions() {
    let (handle, engine) = start_server(ServerConfig::default());
    let queries = ["hospital/patient", "//medication", "//treatment"];

    // 12 concurrent connections across three principals.
    let principals = [
        Principal::Admin,
        Principal::Group(hospital::GROUP.into()),
        Principal::Group("auditors".into()),
    ];
    let threads: Vec<_> = (0..12)
        .map(|i| {
            let principal = principals[i % principals.len()].clone();
            let engine = engine.clone();
            let addr = handle.local_addr();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                client.set_timeout(Some(Duration::from_secs(30))).unwrap();
                client.hello("wards", principal.clone()).unwrap();
                let session = engine.session_on("wards", principal.to_user()).unwrap();
                for q in queries {
                    let remote = client.query(q).unwrap();
                    let local = session.query_serialized(q).unwrap();
                    // The answer payload — the serialized subtrees — is
                    // byte-identical to what the in-process session
                    // produces for this principal.
                    assert_eq!(remote.xml, local.xml.clone().unwrap(), "query {q}");
                    assert_eq!(remote.len(), local.len());
                    assert_eq!(remote.stats.answers, local.stats.answers);
                    match &principal {
                        Principal::Admin => {
                            // Admins additionally get the raw node ids and
                            // full telemetry, verbatim.
                            let ids: Vec<u64> = local.nodes.iter().map(|n| n.0 as u64).collect();
                            assert_eq!(remote.nodes, ids);
                            assert_eq!(remote.stats.nodes_visited, local.stats.nodes_visited);
                            assert_eq!(remote.mode, local.mode);
                        }
                        Principal::Group(_) => {
                            // Groups get ordinals and a masked stats block.
                            let ordinals: Vec<u64> = (0..local.len() as u64).collect();
                            assert_eq!(remote.nodes, ordinals);
                            assert_eq!(remote.stats.nodes_visited, 0);
                            assert_eq!(remote.stats.cans_size, 0);
                            assert_eq!(remote.stats.max_depth, 0);
                            assert_eq!(remote.stats.tree_passes, 0);
                            assert_eq!(remote.mode, smoqe::ExecMode::Compiled);
                        }
                    }
                }
                // Batches too: same shared-scan answers, serialized.
                let refs: Vec<&str> = queries.to_vec();
                let (remote_batch, _events) = client.query_batch(&refs).unwrap();
                let local_batch = session.query_batch_serialized(&refs).unwrap();
                assert_eq!(remote_batch.len(), local_batch.answers.len());
                for (r, l) in remote_batch.iter().zip(&local_batch.answers) {
                    assert_eq!(r.xml, l.xml.clone().unwrap());
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }

    handle.shutdown();
    handle.join();
}

// -------------------------------------------------------------------------
// Admission control
// -------------------------------------------------------------------------

#[test]
fn quota_exhaustion_yields_busy_not_disconnect() {
    let (handle, _engine) = start_server(ServerConfig {
        default_quota: TenantQuota {
            rate_per_sec: 2.0,
            burst: 2,
            max_inflight: 64,
        },
        ..ServerConfig::default()
    });

    let mut client = researcher(&handle);
    let mut ok = 0u32;
    let mut busy = 0u32;
    let mut retry_hint = 0u32;
    for _ in 0..10 {
        match client.query("//medication") {
            Ok(_) => ok += 1,
            Err(ClientError::Busy { retry_after_ms }) => {
                busy += 1;
                retry_hint = retry_hint.max(retry_after_ms);
            }
            Err(e) => panic!("expected Ok or Busy, got {e}"),
        }
    }
    assert!(ok >= 2, "the burst is admitted (got {ok})");
    assert!(busy >= 6, "past the burst the bucket refuses (got {busy})");
    assert!(retry_hint > 0, "Busy carries a retry-after hint");

    // The connection survived every refusal: control ops still work ...
    client.ping().unwrap();
    // ... and once tokens accrue, so do queries, on the SAME connection.
    std::thread::sleep(Duration::from_millis(600));
    client.query("//medication").unwrap();

    // An admin on its own (unlimited) quota was never affected.
    let mut admin = connect(&handle);
    admin.hello("wards", Principal::Admin).unwrap();
    admin.query("//medication").unwrap();

    handle.shutdown();
    handle.join();
}

#[test]
fn over_quota_tenant_does_not_starve_others() {
    let (handle, _engine) = start_server(ServerConfig {
        default_quota: TenantQuota {
            rate_per_sec: 5.0,
            burst: 3,
            max_inflight: 4,
        },
        tenant_quotas: [(
            "auditors".to_string(),
            TenantQuota {
                rate_per_sec: 10_000.0,
                burst: 10_000,
                max_inflight: 64,
            },
        )]
        .into_iter()
        .collect(),
        ..ServerConfig::default()
    });

    // researchers hammer their tiny quota ...
    let mut greedy = researcher(&handle);
    let mut greedy_busy = 0;
    for _ in 0..20 {
        if matches!(
            greedy.query("hospital/patient"),
            Err(ClientError::Busy { .. })
        ) {
            greedy_busy += 1;
        }
    }
    assert!(greedy_busy > 10, "the greedy tenant is throttled");

    // ... while auditors, on their own gate, sail through.
    let mut calm = connect(&handle);
    calm.hello("wards", Principal::Group("auditors".into()))
        .unwrap();
    for _ in 0..20 {
        calm.query("hospital/patient").unwrap();
    }

    handle.shutdown();
    handle.join();
}

// -------------------------------------------------------------------------
// Hostile bytes
// -------------------------------------------------------------------------

#[test]
fn malformed_truncated_and_oversized_frames_never_kill_the_server() {
    let (handle, _engine) = start_server(ServerConfig::default());
    let addr = handle.local_addr();

    // Wrong protocol version: one Error frame, then the connection closes.
    {
        let mut s = TcpStream::connect(addr).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        let mut bad = encode_frame(op::PING, 1, &[]);
        bad[4] = 99; // version byte
        s.write_all(&bad).unwrap();
        let mut fb = FrameBuffer::new();
        let frame = read_raw_frame(&mut s, &mut fb).expect("error frame before close");
        match Response::decode(frame.op, &frame.payload).unwrap() {
            Response::Error { code: c, .. } => assert_eq!(c, code::BAD_VERSION),
            other => panic!("unexpected {other:?}"),
        }
        assert!(read_raw_frame(&mut s, &mut fb).is_none(), "then EOF");
    }

    // Oversized length prefix: rejected from the header, FRAME_TOO_LARGE.
    {
        let mut s = TcpStream::connect(addr).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        s.write_all(&(DEFAULT_MAX_FRAME_LEN + 1).to_le_bytes())
            .unwrap();
        let mut fb = FrameBuffer::new();
        let frame = read_raw_frame(&mut s, &mut fb).expect("error frame before close");
        match Response::decode(frame.op, &frame.payload).unwrap() {
            Response::Error { code: c, .. } => assert_eq!(c, code::FRAME_TOO_LARGE),
            other => panic!("unexpected {other:?}"),
        }
    }

    // Truncated frame then abrupt hangup: the server just moves on.
    {
        let mut s = TcpStream::connect(addr).unwrap();
        let full = Request::Ping.encode(1);
        s.write_all(&full[..full.len() - 2]).unwrap();
        drop(s);
    }

    // Unknown op and garbage payload on a known op: per-request errors,
    // the connection stays usable.
    {
        let mut s = TcpStream::connect(addr).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        let mut fb = FrameBuffer::new();

        s.write_all(&encode_frame(0x6F, 7, &[])).unwrap();
        let frame = read_raw_frame(&mut s, &mut fb).unwrap();
        assert_eq!(frame.request_id, 7);
        match Response::decode(frame.op, &frame.payload).unwrap() {
            Response::Error { code: c, .. } => assert_eq!(c, code::UNSUPPORTED_OP),
            other => panic!("unexpected {other:?}"),
        }

        s.write_all(&encode_frame(op::QUERY, 8, &[0xFF, 0xFF, 0xFF]))
            .unwrap();
        let frame = read_raw_frame(&mut s, &mut fb).unwrap();
        match Response::decode(frame.op, &frame.payload).unwrap() {
            Response::Error { code: c, .. } => assert_eq!(c, code::MALFORMED_FRAME),
            other => panic!("unexpected {other:?}"),
        }

        // Still alive after both rejections:
        s.write_all(&Request::Ping.encode(9)).unwrap();
        let frame = read_raw_frame(&mut s, &mut fb).unwrap();
        assert_eq!(frame.op, op::PONG);
    }

    // And through all of that, the server kept serving normal clients.
    let mut client = researcher(&handle);
    assert!(!client.query("//medication").unwrap().xml.is_empty());

    handle.shutdown();
    handle.join();
}

// -------------------------------------------------------------------------
// Security over the wire
// -------------------------------------------------------------------------

#[test]
fn denial_frames_are_byte_identical_hidden_vs_nonexistent() {
    let (handle, _engine) = start_server(ServerConfig::default());

    // Two fresh connections issue their update as the same ordinal
    // request (hello = 1, update = 2), so even the echoed request id
    // matches and the comparison can be on raw frames.
    let mut hidden_conn = researcher(&handle);
    let mut missing_conn = researcher(&handle);

    // `//pname` exists in the source document but the policy hides it;
    // the second target simply does not exist in the view.
    let hidden = hidden_conn
        .request_raw(&Request::Update {
            statement: "delete //pname".into(),
            deadline_ms: 0,
        })
        .unwrap();
    let missing = missing_conn
        .request_raw(&Request::Update {
            statement: "delete hospital/patient[treatment/medication = 'nosuchmed']".into(),
            deadline_ms: 0,
        })
        .unwrap();

    assert_eq!(hidden.op, op::ERROR);
    assert_eq!(hidden.op, missing.op);
    assert_eq!(hidden.request_id, missing.request_id);
    assert_eq!(
        hidden.payload, missing.payload,
        "a hidden target and a non-existent target must produce \
         byte-identical denial frames"
    );
    match Response::decode(hidden.op, &hidden.payload).unwrap() {
        Response::Error { code: c, .. } => {
            assert_eq!(c, smoqe::EngineError::UpdateDenied.code())
        }
        other => panic!("unexpected {other:?}"),
    }

    handle.shutdown();
    handle.join();
}

#[test]
fn hello_is_required_and_admin_ops_are_guarded() {
    let (handle, _engine) = start_server(ServerConfig::default());

    let mut fresh = connect(&handle);
    match fresh.query("//medication") {
        Err(ClientError::Remote { code: c, .. }) => assert_eq!(c, code::HELLO_REQUIRED),
        other => panic!("expected HELLO_REQUIRED, got {other:?}"),
    }

    let mut group = researcher(&handle);
    match group.shutdown() {
        Err(ClientError::Remote { code: c, .. }) => assert_eq!(c, code::UNAUTHORIZED),
        other => panic!("expected UNAUTHORIZED, got {other:?}"),
    }
    match group.open_document("other", None, None, &[]) {
        Err(ClientError::Remote { code: c, .. }) => assert_eq!(c, code::UNAUTHORIZED),
        other => panic!("expected UNAUTHORIZED, got {other:?}"),
    }
    // The guarded refusals did not cost the session.
    group.ping().unwrap();

    handle.shutdown();
    handle.join();
}

#[test]
fn stats_are_scoped_per_principal() {
    let (handle, _engine) = start_server(ServerConfig::default());

    let mut group = researcher(&handle);
    group.query("//medication").unwrap();
    let mut admin = connect(&handle);
    admin.hello("wards", Principal::Admin).unwrap();
    admin.query("//medication").unwrap();

    // Admin sees every tenant and may pull the trace ring.
    let full = admin.stats(true).unwrap();
    let tenants: Vec<&str> = full.tenants.iter().map(|t| t.tenant.as_str()).collect();
    assert!(tenants.contains(&smoqe::ADMIN_TENANT));
    assert!(tenants.contains(&hospital::GROUP));
    assert!(!full.trace.is_empty(), "trace ring is dumpable");
    assert!(
        full.trace.iter().any(|e| e.op == op::QUERY && e.code == 0),
        "successful queries are traced with their op"
    );
    assert!(full.queue_capacity > 0);

    // A group asking for the same sees only itself, and no trace.
    let scoped = group.stats(true).unwrap();
    assert_eq!(
        scoped
            .tenants
            .iter()
            .map(|t| t.tenant.as_str())
            .collect::<Vec<_>>(),
        vec![hospital::GROUP]
    );
    assert!(scoped.trace.is_empty(), "the trace names other tenants");
    assert!(scoped.tenants[0].queries >= 1);

    handle.shutdown();
    handle.join();
}

#[test]
fn admin_requires_token_when_configured() {
    let (handle, _engine) = start_server(ServerConfig {
        admin_token: Some("sekrit".to_string()),
        ..ServerConfig::default()
    });

    // Loopback alone no longer suffices once a token is configured.
    let mut bare = connect(&handle);
    match bare.hello("wards", Principal::Admin) {
        Err(ClientError::Remote { code: c, .. }) => assert_eq!(c, code::UNAUTHORIZED),
        other => panic!("expected UNAUTHORIZED, got {other:?}"),
    }
    let mut wrong = connect(&handle);
    match wrong.hello_auth("wards", Principal::Admin, Some("guess")) {
        Err(ClientError::Remote { code: c, .. }) => assert_eq!(c, code::UNAUTHORIZED),
        other => panic!("expected UNAUTHORIZED, got {other:?}"),
    }
    // A refused Hello leaves the connection alive and unbound.
    match bare.query("//medication") {
        Err(ClientError::Remote { code: c, .. }) => assert_eq!(c, code::HELLO_REQUIRED),
        other => panic!("expected HELLO_REQUIRED, got {other:?}"),
    }

    // Groups are unaffected by the admin token.
    let mut group = researcher(&handle);
    group.query("//medication").unwrap();

    // The right token unlocks the admin surface.
    let mut admin = connect(&handle);
    admin
        .hello_auth("wards", Principal::Admin, Some("sekrit"))
        .unwrap();
    admin.stats(true).unwrap();
    admin.shutdown().unwrap();
    handle.join();
}

#[test]
fn group_tokens_are_enforced_per_group() {
    let (handle, _engine) = start_server(ServerConfig {
        group_tokens: [(hospital::GROUP.to_string(), "badge".to_string())]
            .into_iter()
            .collect(),
        ..ServerConfig::default()
    });

    let mut bare = connect(&handle);
    match bare.hello("wards", Principal::Group(hospital::GROUP.into())) {
        Err(ClientError::Remote { code: c, .. }) => assert_eq!(c, code::UNAUTHORIZED),
        other => panic!("expected UNAUTHORIZED, got {other:?}"),
    }
    bare.hello_auth(
        "wards",
        Principal::Group(hospital::GROUP.into()),
        Some("badge"),
    )
    .unwrap();
    bare.query("//medication").unwrap();

    // A group with no configured token still binds freely.
    let mut open = connect(&handle);
    open.hello("wards", Principal::Group("auditors".into()))
        .unwrap();

    handle.shutdown();
    handle.join();
}

#[test]
fn spoofed_or_malformed_group_names_are_rejected_at_hello() {
    let (handle, _engine) = start_server(ServerConfig::default());

    // `(admin)` is the admin tenant's accounting key; a group must not be
    // able to claim it (or any other non-identifier) and inherit the
    // admin quota or stats row.
    let mut client = connect(&handle);
    for name in ["(admin)", "", " researchers", "a b", "x/y", "né"] {
        match client.hello("wards", Principal::Group(name.into())) {
            Err(ClientError::Remote { code: c, .. }) => {
                assert_eq!(c, code::BAD_PRINCIPAL, "group name {name:?}")
            }
            other => panic!("expected BAD_PRINCIPAL for {name:?}, got {other:?}"),
        }
    }
    // The connection survives the refusals and a valid name still binds.
    client
        .hello("wards", Principal::Group(hospital::GROUP.into()))
        .unwrap();
    client.query("//medication").unwrap();

    // No spoofed tenant ever reached the accounting table.
    let mut admin = connect(&handle);
    admin.hello("wards", Principal::Admin).unwrap();
    let stats = admin.stats(false).unwrap();
    assert!(stats
        .tenants
        .iter()
        .all(|t| t.tenant == smoqe::ADMIN_TENANT || t.tenant == hospital::GROUP));

    handle.shutdown();
    handle.join();
}

#[test]
fn control_ops_are_rate_limited_per_connection() {
    let (handle, _engine) = start_server(ServerConfig {
        control_quota: TenantQuota {
            rate_per_sec: 1.0,
            burst: 3,
            max_inflight: usize::MAX,
        },
        ..ServerConfig::default()
    });

    let mut client = researcher(&handle); // hello spends one control token
    let mut busy = 0u32;
    for _ in 0..10 {
        match client.stats(false) {
            Ok(_) => {}
            Err(ClientError::Busy { retry_after_ms }) => {
                assert!(retry_after_ms > 0);
                busy += 1;
            }
            Err(e) => panic!("expected Ok or Busy, got {e}"),
        }
    }
    assert!(
        busy >= 6,
        "a stats flood is throttled (got {busy} refusals)"
    );

    // Pings are pure liveness and stay exempt; the connection survives.
    client.ping().unwrap();
    // Data-plane ops ride the tenant quota, not the control cap.
    client.query("//medication").unwrap();
    // Other connections have their own bucket.
    let mut admin = connect(&handle);
    admin.hello("wards", Principal::Admin).unwrap();
    admin.stats(false).unwrap();

    handle.shutdown();
    handle.join();
}

// -------------------------------------------------------------------------
// Graceful drain
// -------------------------------------------------------------------------

#[test]
fn drain_completes_pipelined_in_flight_queries() {
    let (handle, _engine) = start_server(ServerConfig {
        workers: 2,
        ..ServerConfig::default()
    });

    // Pipeline a burst of queries on a raw connection (the synchronous
    // Client would drain its own pipeline before we could shut down).
    let mut s = TcpStream::connect(handle.local_addr()).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    let mut fb = FrameBuffer::new();
    s.write_all(
        &Request::Hello {
            document: "wards".into(),
            principal: Principal::Group(hospital::GROUP.into()),
            auth: None,
        }
        .encode(1),
    )
    .unwrap();
    let hello = read_raw_frame(&mut s, &mut fb).unwrap();
    assert_eq!(hello.op, op::HELLO_OK);

    const PIPELINED: u64 = 16;
    for i in 0..PIPELINED {
        s.write_all(
            &Request::Query {
                query: "//medication".into(),
                deadline_ms: 0,
            }
            .encode(100 + i),
        )
        .unwrap();
    }

    // Shut down from a second connection while those are in flight.
    let mut admin = connect(&handle);
    admin.hello("wards", Principal::Admin).unwrap();
    admin.shutdown().unwrap();

    // Every pipelined request gets a real response: an answer if it was
    // admitted before the drain began, SHUTTING_DOWN if it arrived
    // after. Nothing is dropped on the floor, nothing disconnects early.
    let mut answered = 0;
    let mut refused = 0;
    for _ in 0..PIPELINED {
        let frame = read_raw_frame(&mut s, &mut fb).expect("response for every request");
        match Response::decode(frame.op, &frame.payload).unwrap() {
            Response::AnswerOk(a) => {
                assert!(!a.xml.is_empty());
                answered += 1;
            }
            Response::Error { code: c, .. } => {
                assert_eq!(c, code::SHUTTING_DOWN);
                refused += 1;
            }
            other => panic!("unexpected {other:?}"),
        }
    }
    assert_eq!(answered + refused, PIPELINED);
    assert!(answered > 0, "in-flight work completed during the drain");

    // The drain terminates everything: join() returns.
    handle.join();
}

// -------------------------------------------------------------------------
// Durability at the wire: slow readers, the recovery gate, retry policy
// -------------------------------------------------------------------------

/// A unique scratch directory removed on drop.
struct TempDir(std::path::PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static SEQ: AtomicUsize = AtomicUsize::new(0);
        let path = std::env::temp_dir().join(format!(
            "smoqe-server-{tag}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&path);
        std::fs::create_dir_all(&path).unwrap();
        TempDir(path)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

#[test]
fn a_reader_that_stops_reading_is_dropped_not_waited_on() {
    let (handle, _engine) = start_server(ServerConfig {
        write_timeout: Duration::from_millis(300),
        ..ServerConfig::default()
    });

    // An admin connection floods the server with pipelined batches whose
    // responses serialize the whole document 256 times each — then never
    // reads a byte. The kernel buffers fill, the server's response write
    // stalls past write_timeout, and the connection must be dropped.
    let mut s = TcpStream::connect(handle.local_addr()).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let mut fb = FrameBuffer::new();
    s.write_all(
        &Request::Hello {
            document: "wards".into(),
            principal: Principal::Admin,
            auth: None,
        }
        .encode(1),
    )
    .unwrap();
    assert_eq!(read_raw_frame(&mut s, &mut fb).unwrap().op, op::HELLO_OK);
    let batch = Request::QueryBatch {
        queries: vec!["hospital/patient".to_string(); 256],
        deadline_ms: 0,
    };
    for i in 0..40u64 {
        if s.write_all(&batch.encode(100 + i)).is_err() {
            break; // already shut down on us — that is the point
        }
    }

    // The server notices within write_timeout (plus execution slack) and
    // accounts the drop.
    let mut admin = connect(&handle);
    admin.hello("wards", Principal::Admin).unwrap();
    let deadline = std::time::Instant::now() + Duration::from_secs(20);
    loop {
        let stats = admin.stats(false).unwrap();
        if stats.slow_client_drops >= 1 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "server never recorded a slow-client drop"
        );
        std::thread::sleep(Duration::from_millis(100));
    }

    // The stalled connection really is severed: draining what the kernel
    // buffered ends in EOF (or a reset), never a fresh response.
    let mut sink = [0u8; 65536];
    loop {
        match s.read(&mut sink) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
    }

    // And its worker + admission slots are free again: a well-behaved
    // client gets served immediately.
    let mut client = researcher(&handle);
    assert!(!client.query("//medication").unwrap().xml.is_empty());

    handle.shutdown();
    handle.join();
}

#[test]
fn recovery_gate_answers_recovering_then_the_recovered_catalog_serves() {
    let dir = TempDir::new("gate");

    // Seed a durable catalog and crash it without a clean shutdown: the
    // marker update exists only in the WAL tail.
    {
        let engine = Engine::recover(EngineConfig::default(), &dir.0).unwrap();
        let doc = engine.open_document("wards");
        hospital::install_sample(&doc).unwrap();
        doc.update(
            "insert <patient><pname>durable-marker</pname><visit><treatment>\
             <medication>autism</medication></treatment><date>d</date></visit>\
             </patient> into hospital",
        )
        .unwrap();
    }

    // Bind the socket first; while recovery replays, the gate answers
    // RECOVERING error frames instead of refusing connections.
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let gate = RecoveryGate::start(&listener).unwrap();
    let gate_addr = listener.local_addr().unwrap();
    {
        let mut s = TcpStream::connect(gate_addr).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        s.write_all(&Request::Ping.encode(1)).unwrap();
        let mut fb = FrameBuffer::new();
        let frame = read_raw_frame(&mut s, &mut fb).expect("gate answers, never refuses");
        match Response::decode(frame.op, &frame.payload).unwrap() {
            Response::Error { code: c, .. } => assert_eq!(c, code::RECOVERING),
            other => panic!("unexpected {other:?}"),
        }
    }

    let engine = Engine::recover(EngineConfig::default(), &dir.0).unwrap();
    assert!(engine.recovery_epoch() >= 1);
    gate.finish();
    let handle = Server::start_on(listener, engine.clone(), ServerConfig::default()).unwrap();

    // The same socket now serves the recovered catalog, WAL tail included.
    let mut admin = connect(&handle);
    admin.hello("wards", Principal::Admin).unwrap();
    let answer = admin.query("//pname").unwrap();
    assert!(
        answer.xml.iter().any(|x| x.contains("durable-marker")),
        "the WAL-tail update must survive into the served catalog"
    );

    // Stats surface the recovery epoch on the wire.
    let stats = admin.stats(false).unwrap();
    assert_eq!(stats.epoch, engine.recovery_epoch());
    assert!(stats.epoch >= 1);
    assert_eq!(stats.slow_client_drops, 0);

    handle.shutdown();
    handle.join();
}

#[test]
fn retry_policy_rides_out_busy_refusals() {
    let (handle, _engine) = start_server(ServerConfig {
        default_quota: TenantQuota {
            rate_per_sec: 10.0,
            burst: 1,
            max_inflight: 4,
        },
        ..ServerConfig::default()
    });

    // Back-to-back queries from one researcher overrun a burst-1 bucket,
    // so without retries some would surface Busy. The policy absorbs
    // them: every request completes, and the retries are observable.
    let mut client = researcher(&handle);
    client.set_retry_policy(Some(RetryPolicy {
        max_attempts: 12,
        base_ms: 5,
        cap_ms: 300,
        seed: 42,
    }));
    for _ in 0..4 {
        assert!(!client.query("//medication").unwrap().xml.is_empty());
    }
    assert!(
        client.busy_retries() >= 1,
        "burst-1 quota must have refused at least one attempt"
    );

    handle.shutdown();
    handle.join();
}
