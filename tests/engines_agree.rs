//! Cross-engine agreement: the naive reference evaluator, HyPE in DOM
//! mode (with and without TAX, with and without the MFA optimizer), HyPE
//! in StAX mode, and the two-pass baseline must all return identical
//! answers on identical inputs.

use smoqe::workloads::{hospital, org};
use smoqe_automata::{compile, optimize::optimize};
use smoqe_hype::dom::{evaluate_mfa_with, DomOptions};
use smoqe_hype::stream::{evaluate_stream_str, StreamOptions};
use smoqe_hype::{evaluate_mfa_twopass, NoopObserver};
use smoqe_rxpath::{evaluate as naive, parse_path};
use smoqe_tax::TaxIndex;
use smoqe_xml::{Document, NodeId, Vocabulary};

fn check_all_engines(doc: &Document, vocab: &Vocabulary, query: &str) {
    let path = parse_path(query, vocab).unwrap();
    let expected = naive(doc, &path);
    let xml = doc.to_xml();
    let tax = TaxIndex::build(doc);

    for optimized in [false, true] {
        let mfa = if optimized {
            optimize(&compile(&path, vocab))
        } else {
            compile(&path, vocab)
        };
        // DOM, no TAX.
        let (plain, _) = evaluate_mfa_with(doc, &mfa, &DomOptions::default(), &mut NoopObserver);
        assert_eq!(
            plain, expected,
            "HyPE/DOM differs (`{query}`, opt={optimized})"
        );
        // DOM, TAX.
        let opts = DomOptions { tax: Some(&tax) };
        let (pruned, _) = evaluate_mfa_with(doc, &mfa, &opts, &mut NoopObserver);
        assert_eq!(
            pruned, expected,
            "HyPE/TAX differs (`{query}`, opt={optimized})"
        );
        // Stream.
        let out = evaluate_stream_str(&xml, &mfa, vocab, StreamOptions::default()).unwrap();
        let stream_nodes: Vec<NodeId> = out.answers.into_iter().map(NodeId).collect();
        assert_eq!(
            stream_nodes,
            expected.as_slice(),
            "HyPE/stream differs (`{query}`, opt={optimized})"
        );
        // Two-pass.
        let (two, _) = evaluate_mfa_twopass(doc, &mfa);
        assert_eq!(
            two, expected,
            "two-pass differs (`{query}`, opt={optimized})"
        );
    }
}

#[test]
fn engines_agree_on_hospital_documents() {
    let vocab = Vocabulary::new();
    hospital::dtd(&vocab);
    for seed in [2u64, 17] {
        let doc = hospital::generate_document(&vocab, seed, 1_500);
        for (_, q) in hospital::DOC_QUERIES {
            check_all_engines(&doc, &vocab, q);
        }
    }
}

#[test]
fn engines_agree_on_org_documents() {
    let vocab = Vocabulary::new();
    org::dtd(&vocab);
    let doc = org::generate_document(&vocab, 8, 1_500);
    for q in [
        "//ename",
        "company/dept/(dept)*/emp",
        "//emp[review]/ename",
        "//emp[not(review) and salary]",
        "company/dept[emp/review = 'public']/dname",
        "//dept[dname = 'db']/emp/ename",
    ] {
        check_all_engines(&doc, &vocab, q);
    }
}

#[test]
fn engines_agree_on_adversarial_shapes() {
    let vocab = Vocabulary::new();
    // Deep recursion, text at several levels, empty elements.
    let doc = Document::parse_str(
        "<a>top<b><a>mid<b><a>deep<c>x</c></a></b></a></b><c>y</c><b/></a>",
        &vocab,
    )
    .unwrap();
    for q in [
        "(a/b)*",
        "(a/b)*/a/c",
        "a[b/a]/c",
        "a/b[a[c = 'x']]",
        "//a[text() = 'deep']",
        "//a[not(b)]",
        "a/(b/a | c)*",
        "a/b[not(a[c])]",
        "//*",
        ".",
    ] {
        check_all_engines(&doc, &vocab, q);
    }
}

#[test]
fn engines_agree_on_predicate_ordering_edge_cases() {
    let vocab = Vocabulary::new();
    // Witness appears before / after / around the candidate.
    for xml in [
        "<a><w/><b><x/></b></a>",
        "<a><b><x/></b><w/></a>",
        "<a><b><x/><w/></b><b><w/><x/></b><b><x/></b></a>",
    ] {
        let doc = Document::parse_str(xml, &vocab).unwrap();
        for q in ["a[w]/b/x", "a/b[w]/x", "a/b[x]/w", "a[w and b]/b[x]"] {
            check_all_engines(&doc, &vocab, q);
        }
    }
}

#[test]
fn engines_agree_with_nested_negation() {
    let vocab = Vocabulary::new();
    let doc = Document::parse_str("<r><p><q><s>v</s></q></p><p><q/></p><p/></r>", &vocab).unwrap();
    for q in [
        "r/p[not(q)]",
        "r/p[not(q[s])]",
        "r/p[not(q[not(s)])]",
        "r/p[q[not(s = 'v')]]",
        "r/p[not(q/s = 'w') and q]",
    ] {
        check_all_engines(&doc, &vocab, q);
    }
}
