//! The fault-injection harness (tentpole): crash the durable write path
//! at every [`Failpoint`], recover the directory, and check the
//! crash-consistency contract — the recovered engine equals the state
//! after **some prefix** of the attempted updates, never fewer than the
//! acknowledged ones, with a TAX index identical to a from-scratch
//! rebuild and answers identical to a fresh engine over the same
//! document.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use smoqe::workloads::hospital;
use smoqe::{Engine, EngineConfig, EngineError, Failpoint, User, ALL_FAILPOINTS};
use smoqe_tax::TaxIndex;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// A unique scratch directory removed on drop.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        static SEQ: AtomicUsize = AtomicUsize::new(0);
        let path = std::env::temp_dir().join(format!(
            "smoqe-faults-{tag}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&path);
        std::fs::create_dir_all(&path).unwrap();
        TempDir(path)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn install_sample(engine: &Arc<Engine>) {
    engine.load_dtd(hospital::DTD).unwrap();
    engine.load_document(hospital::SAMPLE_DOCUMENT).unwrap();
    engine
        .register_policy(hospital::GROUP, hospital::POLICY)
        .unwrap();
    engine.build_tax_index().unwrap();
}

fn marker_insert(i: usize) -> String {
    format!(
        "insert <patient><pname>F{i}</pname><visit><treatment><medication>autism\
         </medication></treatment><date>d</date></visit></patient> into hospital"
    )
}

/// Checks the recovered engine against the expected prefix `states`
/// (`states[k]` = serialized document after `k` accepted updates):
/// membership, the `k >= acked` floor, index ≡ rebuild, and answer
/// equivalence against a fresh engine. Returns `k`.
fn assert_prefix_consistent(
    recovered: &Arc<Engine>,
    states: &[String],
    acked: usize,
    label: &str,
) -> usize {
    let xml = recovered.document().unwrap().to_xml();
    let k = states
        .iter()
        .position(|s| *s == xml)
        .unwrap_or_else(|| panic!("[{label}] recovered a state that was never produced"));
    assert!(
        k >= acked,
        "[{label}] recovery lost acknowledged updates: recovered prefix {k} < acked {acked}"
    );

    // The replayed-and-patched index must equal a from-scratch rebuild.
    let doc = recovered.document().unwrap();
    let tax = recovered
        .tax_index()
        .unwrap_or_else(|| panic!("[{label}] TAX index lost"));
    let rebuilt = TaxIndex::build(&doc);
    assert_eq!(
        tax.node_count(),
        rebuilt.node_count(),
        "[{label}] index size"
    );
    for n in doc.all_nodes() {
        assert_eq!(
            tax.descendant_labels(n).iter().collect::<Vec<_>>(),
            rebuilt.descendant_labels(n).iter().collect::<Vec<_>>(),
            "[{label}] descendant set of {n:?} diverged from a rebuild"
        );
    }

    // And it must answer exactly like a fresh engine over the same state.
    let fresh = Engine::with_defaults();
    fresh.load_dtd(hospital::DTD).unwrap();
    fresh.load_document(&xml).unwrap();
    fresh
        .register_policy(hospital::GROUP, hospital::POLICY)
        .unwrap();
    fresh.build_tax_index().unwrap();
    for (_, q) in hospital::DOC_QUERIES {
        assert_eq!(
            recovered.session(User::Admin).query(q).unwrap().nodes,
            fresh.session(User::Admin).query(q).unwrap().nodes,
            "[{label}] admin `{q}` diverged"
        );
    }
    for (_, q) in hospital::VIEW_QUERIES {
        assert_eq!(
            recovered
                .session(User::Group(hospital::GROUP.into()))
                .query(q)
                .unwrap()
                .nodes,
            fresh
                .session(User::Group(hospital::GROUP.into()))
                .query(q)
                .unwrap()
                .nodes,
            "[{label}] view `{q}` diverged"
        );
    }
    k
}

#[test]
fn every_failpoint_recovers_to_a_consistent_prefix() {
    // Expected prefix states, computed once on an in-memory shadow.
    let shadow = Engine::with_defaults();
    install_sample(&shadow);
    let mut states = vec![shadow.document().unwrap().to_xml()];
    for i in 0..6 {
        shadow.update(&marker_insert(i)).unwrap();
        states.push(shadow.document().unwrap().to_xml());
    }

    for fp in ALL_FAILPOINTS {
        let dir = TempDir::new(fp.name());
        let engine = Engine::recover(EngineConfig::default(), dir.path()).unwrap();
        install_sample(&engine);

        let mut acked = 0usize;
        if fp == Failpoint::CheckpointInterrupted {
            for i in 0..3 {
                engine.update(&marker_insert(i)).unwrap();
                acked += 1;
            }
            engine.durability().unwrap().failpoints().arm(fp);
            match engine.checkpoint() {
                Err(EngineError::Durability(_)) => {}
                other => panic!("[{}] armed checkpoint must die, got {other:?}", fp.name()),
            }
        } else {
            for i in 0..6 {
                if i == 3 {
                    engine.durability().unwrap().failpoints().arm(fp);
                }
                match engine.update(&marker_insert(i)) {
                    Ok(_) => acked += 1,
                    Err(EngineError::Durability(_)) => break,
                    Err(other) => panic!("[{}] unexpected error: {other}", fp.name()),
                }
            }
            assert_eq!(
                acked,
                3,
                "[{}] the 4th update must hit the failpoint",
                fp.name()
            );
        }

        // The crash leaves the engine durably dead: no write is accepted
        // until the directory is recovered, so nothing can be appended
        // after a possibly-torn log tail.
        assert!(engine.durability().unwrap().is_dead(), "[{}]", fp.name());
        assert!(
            matches!(
                engine.update(&marker_insert(9)),
                Err(EngineError::Durability(_))
            ),
            "[{}] a dead engine must refuse writes",
            fp.name()
        );
        drop(engine);

        let recovered = Engine::recover(EngineConfig::default(), dir.path())
            .unwrap_or_else(|e| panic!("[{}] recovery failed: {e}", fp.name()));
        assert!(recovered.recovery_epoch() >= 1, "[{}]", fp.name());
        let k = assert_prefix_consistent(&recovered, &states, acked, fp.name());
        // Torn or lost appends roll back to exactly the acked count; a
        // crash after the append (or a failed flush of a complete record)
        // legally recovers the in-doubt write too.
        assert!(k <= acked + 1, "[{}] recovered too much: {k}", fp.name());

        // And the recovered engine is a fully durable engine again.
        recovered.update(&marker_insert(7)).unwrap();
    }
}

#[test]
fn random_update_storms_crash_at_every_failpoint_and_recover() {
    let templates = [
        "insert <patient><pname>Zoe</pname><visit><treatment><medication>autism\
         </medication></treatment><date>d</date></visit></patient> into hospital",
        "delete hospital/patient[visit/treatment/test]",
        "replace //treatment[medication = 'flu'] with \
         <treatment><medication>headache</medication></treatment>",
        "insert <visit><treatment><test>blood</test></treatment><date>d2</date></visit> \
         after //patient[not(parent)]/visit",
    ];

    for fp in ALL_FAILPOINTS {
        if fp == Failpoint::CheckpointInterrupted {
            continue; // fires on checkpoints, not updates — covered above
        }
        for round in 0..2u64 {
            let seed = 31 * fp as u64 + round;
            let mut rng = StdRng::seed_from_u64(seed);
            let label = format!("{} seed {seed}", fp.name());

            let dir = TempDir::new(&format!("storm-{}-{round}", fp.name()));
            let engine = Engine::recover(EngineConfig::default(), dir.path()).unwrap();
            let vocab = engine.vocabulary().clone();
            engine.load_dtd(hospital::DTD).unwrap();
            engine
                .load_document_tree(hospital::generate_document(&vocab, seed, 150))
                .unwrap();
            engine
                .register_policy(hospital::GROUP, hospital::POLICY)
                .unwrap();
            engine.build_tax_index().unwrap();

            // The shadow mirrors every *accepted* update; its states are
            // the legal recovery targets.
            let shadow = Engine::with_defaults();
            let shadow_vocab = shadow.vocabulary().clone();
            shadow.load_dtd(hospital::DTD).unwrap();
            shadow
                .load_document_tree(hospital::generate_document(&shadow_vocab, seed, 150))
                .unwrap();
            shadow
                .register_policy(hospital::GROUP, hospital::POLICY)
                .unwrap();
            shadow.build_tax_index().unwrap();
            let mut states = vec![shadow.document().unwrap().to_xml()];

            let arm_at = rng.random_range(2..8);
            let mut attempts = 0usize;
            let mut acked = 0usize;
            loop {
                if attempts == arm_at {
                    engine.durability().unwrap().failpoints().arm(fp);
                }
                let stmt = templates[rng.random_range(0..templates.len())];
                attempts += 1;
                match engine.update(stmt) {
                    Ok(_) => {
                        acked += 1;
                        shadow.update(stmt).unwrap_or_else(|e| {
                            panic!("[{label}] shadow rejected an accepted update: {e}")
                        });
                        states.push(shadow.document().unwrap().to_xml());
                    }
                    Err(EngineError::Durability(_)) => {
                        // The crashed statement may or may not have reached
                        // the log; if the shadow accepts it, its state is a
                        // legal recovery target too (the in-doubt write).
                        if shadow.update(stmt).is_ok() {
                            states.push(shadow.document().unwrap().to_xml());
                        }
                        break;
                    }
                    Err(_) => {
                        // Rejected (no target / schema): nothing logged,
                        // the shadow must agree.
                        assert!(
                            shadow.update(stmt).is_err(),
                            "[{label}] accept/reject diverged"
                        );
                    }
                }
                assert!(attempts < 64, "[{label}] the armed failpoint never fired");
            }
            drop(engine);

            let recovered = Engine::recover(EngineConfig::default(), dir.path())
                .unwrap_or_else(|e| panic!("[{label}] recovery failed: {e}"));
            assert_prefix_consistent(&recovered, &states, acked, &label);
        }
    }
}
