//! Deadlines, cancellation and overload shedding under network chaos.
//!
//! The chaos proxy ([`smoqe_server::chaos`]) injects the faults TCP
//! produces in the wild — mid-frame stalls, byte dribble, torn request
//! writes, clients vanishing mid-response — between real clients and a
//! live server. These tests assert the invariants that make the
//! robustness work trustworthy:
//!
//! * **zero leaks** — after any mix of faults drains, the server reports
//!   `inflight == 0` and `queue_depth == 0`, and a fresh connection gets
//!   clean answers (no slot, queue entry, or worker was lost);
//! * **opacity** — deadline-exceeded and brownout refusals are
//!   byte-identical for a group principal whether the query targeted a
//!   hidden or a non-existent element (a timeout must not become an
//!   oracle);
//! * **bounded collateral** — traffic on healthy connections keeps a
//!   sane p99 while chaos runs on the faulted ones.

use std::io::{Read, Write};
use std::net::{Shutdown, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

use smoqe::{workloads::hospital, Engine};
use smoqe_server::proto::{
    code, op, Frame, FrameBuffer, Principal, Request, Response, WireStats, DEFAULT_MAX_FRAME_LEN,
};
use smoqe_server::{
    percentile, seeded_schedule, ChaosProxy, Client, Server, ServerConfig, ServerHandle,
};

/// Starts a server on a *generated* hospital document big enough that a
/// shared-scan batch of closure queries occupies a worker for seconds —
/// the deterministic "blocker" the shed tests park behind.
/// Deterministic per seed.
fn start_big_server(config: ServerConfig) -> (ServerHandle, Arc<Engine>) {
    let engine = Engine::with_defaults();
    let doc = engine.open_document("wards");
    doc.load_dtd(hospital::DTD).unwrap();
    let tree = hospital::generate_document(engine.vocabulary(), 42, 30_000);
    doc.load_document_tree(tree).unwrap();
    doc.register_policy(hospital::GROUP, hospital::POLICY)
        .unwrap();
    let handle = Server::start(engine.clone(), config).unwrap();
    (handle, engine)
}

/// A QueryBatch that holds one worker busy for a couple of seconds
/// while probes queue up behind it: closure queries in one shared scan
/// over the generated document. Must run as **admin** — the policy
/// hides `visit`, so on the view this matches nothing and returns
/// instantly.
fn blocker_batch() -> Request {
    Request::QueryBatch {
        queries: vec!["hospital/patient/(parent/patient)*/visit/treatment".to_string(); 4],
        deadline_ms: 0,
    }
}

fn read_raw_frame(stream: &mut TcpStream, fb: &mut FrameBuffer) -> Option<Frame> {
    let mut buf = [0u8; 4096];
    loop {
        match fb.next_frame(DEFAULT_MAX_FRAME_LEN) {
            Ok(Some(frame)) => return Some(frame),
            Ok(None) => {}
            Err(_) => return None,
        }
        match stream.read(&mut buf) {
            Ok(0) | Err(_) => return None,
            Ok(n) => fb.push(&buf[..n]),
        }
    }
}

/// Opens a raw connection bound as `principal` (hello = request 1) so
/// subsequent sends and reads can be driven independently of `Client`'s
/// blocking request/response cycle.
fn raw_conn(handle: &ServerHandle, principal: Principal) -> (TcpStream, FrameBuffer) {
    let mut stream = TcpStream::connect(handle.local_addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let mut fb = FrameBuffer::new();
    let hello = Request::Hello {
        document: "wards".into(),
        principal,
        auth: None,
    };
    stream.write_all(&hello.encode(1)).unwrap();
    let frame = read_raw_frame(&mut stream, &mut fb).unwrap();
    assert_eq!(frame.op, op::HELLO_OK, "hello must succeed");
    (stream, fb)
}

fn raw_researcher(handle: &ServerHandle) -> (TcpStream, FrameBuffer) {
    raw_conn(handle, Principal::Group(hospital::GROUP.into()))
}

fn admin(handle: &ServerHandle) -> Client {
    let mut client = Client::connect(handle.local_addr()).unwrap();
    client.set_timeout(Some(Duration::from_secs(30))).unwrap();
    client.hello("wards", Principal::Admin).unwrap();
    client
}

/// Polls admin `Stats` until the server is fully drained (`inflight`
/// and `queue_depth` both zero) or the timeout passes; returns the last
/// snapshot either way for the caller's assertions.
fn await_drained(client: &mut Client, timeout: Duration) -> WireStats {
    let deadline = Instant::now() + timeout;
    loop {
        let stats = client.stats(false).unwrap();
        if (stats.inflight == 0 && stats.queue_depth == 0) || Instant::now() >= deadline {
            return stats;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}

// -------------------------------------------------------------------------
// Opacity: shed frames reveal nothing
// -------------------------------------------------------------------------

#[test]
fn queue_shed_deadline_frames_are_byte_identical_hidden_vs_nonexistent() {
    // One worker, so the blocker batch serializes everything behind it.
    let (handle, _engine) = start_big_server(ServerConfig {
        workers: 1,
        ..ServerConfig::default()
    });

    // Park the only worker on a heavy shared scan.
    let addr = handle.local_addr();
    let blocker = std::thread::spawn(move || {
        let mut client = Client::connect(addr).unwrap();
        client.set_timeout(Some(Duration::from_secs(60))).unwrap();
        client.hello("wards", Principal::Admin).unwrap();
        client.request_raw(&blocker_batch()).unwrap().op
    });
    std::thread::sleep(Duration::from_millis(60));

    // Two fresh researcher connections, same ordinal request id
    // (hello = 1, query = 2), each sending a 1 ms-deadline probe that
    // expires in the queue behind the blocker. `//pname` exists but the
    // policy hides it; the other target does not exist at all.
    let (mut hidden_conn, mut hidden_fb) = raw_researcher(&handle);
    let (mut missing_conn, mut missing_fb) = raw_researcher(&handle);
    let probe = |query: &str| Request::Query {
        query: query.into(),
        deadline_ms: 1,
    };
    hidden_conn.write_all(&probe("//pname").encode(2)).unwrap();
    missing_conn
        .write_all(&probe("//nosuchelement").encode(2))
        .unwrap();

    let hidden = read_raw_frame(&mut hidden_conn, &mut hidden_fb).unwrap();
    let missing = read_raw_frame(&mut missing_conn, &mut missing_fb).unwrap();
    assert_eq!(hidden.op, op::ERROR);
    assert_eq!(hidden.op, missing.op);
    assert_eq!(hidden.request_id, missing.request_id);
    assert_eq!(
        hidden.payload, missing.payload,
        "a deadline refusal must not reveal whether the target exists"
    );
    match Response::decode(hidden.op, &hidden.payload).unwrap() {
        Response::Error { code: c, .. } => assert_eq!(c, code::DEADLINE_EXCEEDED),
        other => panic!("unexpected {other:?}"),
    }

    assert_eq!(blocker.join().unwrap(), op::BATCH_OK);

    // The sheds were counted and nothing leaked.
    let mut stats_conn = admin(&handle);
    let stats = await_drained(&mut stats_conn, Duration::from_secs(5));
    assert!(stats.shed_total + stats.deadline_total >= 2);
    assert_eq!(stats.inflight, 0);

    handle.shutdown();
    handle.join();
}

#[test]
fn brownout_refusals_are_byte_identical_and_spare_admins() {
    // Watermark zero: every non-admin engine op is refused while the
    // brownout holds — the easiest deterministic overload.
    let (handle, _engine) = start_big_server(ServerConfig {
        brownout_watermark: 0,
        ..ServerConfig::default()
    });

    let (mut hidden_conn, mut hidden_fb) = raw_researcher(&handle);
    let (mut missing_conn, mut missing_fb) = raw_researcher(&handle);
    let probe = |query: &str| Request::Query {
        query: query.into(),
        deadline_ms: 0,
    };
    hidden_conn.write_all(&probe("//pname").encode(2)).unwrap();
    missing_conn
        .write_all(&probe("//nosuchelement").encode(2))
        .unwrap();

    let hidden = read_raw_frame(&mut hidden_conn, &mut hidden_fb).unwrap();
    let missing = read_raw_frame(&mut missing_conn, &mut missing_fb).unwrap();
    assert_eq!(hidden.op, op::OVERLOADED);
    assert_eq!(hidden.op, missing.op);
    assert_eq!(hidden.request_id, missing.request_id);
    assert_eq!(
        hidden.payload, missing.payload,
        "a brownout refusal must not reveal whether the target exists"
    );
    match Response::decode(hidden.op, &hidden.payload).unwrap() {
        Response::Overloaded { retry_after_ms } => assert!(retry_after_ms > 0),
        other => panic!("unexpected {other:?}"),
    }

    // Admin work rides through the brownout.
    let mut boss = admin(&handle);
    assert!(!boss.query("//medication").unwrap().xml.is_empty());
    let stats = boss.stats(false).unwrap();
    assert!(stats.overloaded_total >= 2);
    assert_eq!(stats.inflight, 0);

    handle.shutdown();
    handle.join();
}

// -------------------------------------------------------------------------
// Cancellation: vanished clients free their slots
// -------------------------------------------------------------------------

#[test]
fn dropped_connection_cancels_inflight_work_and_frees_the_slot() {
    let (handle, _engine) = start_big_server(ServerConfig {
        workers: 1,
        ..ServerConfig::default()
    });

    // An admin sends the heavy batch (the blocker only bites on the raw
    // document), waits long enough for a worker to be mid-scan, then
    // vanishes without reading the response.
    let (mut conn, _fb) = raw_conn(&handle, Principal::Admin);
    conn.write_all(&blocker_batch().encode(2)).unwrap();
    std::thread::sleep(Duration::from_millis(80));
    conn.shutdown(Shutdown::Both).unwrap();
    drop(conn);

    // The reader thread notices the hangup, flips the connection's
    // cancel token, and the evaluation meter abandons the scan at its
    // next check — long before the batch would have finished.
    let mut boss = admin(&handle);
    let stats = await_drained(&mut boss, Duration::from_secs(10));
    assert_eq!(stats.inflight, 0, "cancelled work must release its slot");
    assert_eq!(stats.queue_depth, 0);
    assert!(
        stats.cancelled_total + stats.shed_total >= 1,
        "the abandoned batch must be counted: {stats:?}"
    );

    // The freed worker serves new traffic immediately.
    assert!(!boss.query("//medication").unwrap().xml.is_empty());

    handle.shutdown();
    handle.join();
}

// -------------------------------------------------------------------------
// The storm: every fault mode at once, zero leaks after
// -------------------------------------------------------------------------

#[test]
fn chaos_storm_leaks_nothing_and_healthy_traffic_stays_sane() {
    let (handle, _engine) = start_big_server(ServerConfig::default());
    let upstream = handle.local_addr();

    // A seeded schedule covering all five fault modes, reproducible
    // run-to-run. 24 sessions cycle through it.
    let schedule = seeded_schedule(0xC4A0_5EED, 12);
    let proxy = ChaosProxy::start(upstream, schedule).unwrap();
    let proxy_addr = proxy.local_addr();

    let victims: Vec<_> = (0..24)
        .map(|i| {
            std::thread::spawn(move || {
                // Short timeouts; every outcome is acceptable — the
                // invariants are checked on the server afterwards.
                let Ok(mut client) = Client::connect(proxy_addr) else {
                    return;
                };
                let _ = client.set_timeout(Some(Duration::from_millis(500)));
                client.set_request_deadline(Some(Duration::from_millis(300)));
                if client
                    .hello("wards", Principal::Group(hospital::GROUP.into()))
                    .is_err()
                {
                    return;
                }
                for q in ["//medication", "hospital/patient", "//treatment"] {
                    let _ = client.query(q);
                    if i % 3 == 0 {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                }
            })
        })
        .collect();

    // Meanwhile, a *healthy* direct connection keeps querying; chaos on
    // other connections must not blow up its tail latency.
    let prober = std::thread::spawn(move || {
        let mut client = Client::connect(upstream).unwrap();
        client.set_timeout(Some(Duration::from_secs(30))).unwrap();
        client
            .hello("wards", Principal::Group(hospital::GROUP.into()))
            .unwrap();
        let mut micros: Vec<u64> = Vec::new();
        for _ in 0..40 {
            let started = Instant::now();
            client.query("//medication").unwrap();
            micros.push(started.elapsed().as_micros() as u64);
            std::thread::sleep(Duration::from_millis(2));
        }
        micros.sort_unstable();
        micros
    });

    for v in victims {
        v.join().unwrap();
    }
    let micros = prober.join().unwrap();
    let p99 = percentile(&micros, 99.0);
    assert!(
        p99 < 5_000_000,
        "healthy-connection p99 exploded under chaos: {p99}us"
    );

    assert!(proxy.connections() >= 24);
    proxy.shutdown();

    // Every fault path must have unwound completely: no admission slot
    // still held, no queue entry stranded, and the server answers a
    // fresh connection cleanly.
    let mut boss = admin(&handle);
    let stats = await_drained(&mut boss, Duration::from_secs(10));
    assert_eq!(stats.inflight, 0, "leaked admission slots: {stats:?}");
    assert_eq!(stats.queue_depth, 0, "stranded queue entries: {stats:?}");
    boss.ping().unwrap();
    assert!(!boss.query("//medication").unwrap().xml.is_empty());

    handle.shutdown();
    handle.join();
}
