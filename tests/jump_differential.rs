//! Differential suite for jump-scan evaluation: on random documents ×
//! random Regular XPath queries, the jump driver ([`ExecMode::Jump`])
//! must produce **identical answers** to the dense-table scan walker
//! ([`ExecMode::Compiled`]) and the per-event interpreter
//! ([`ExecMode::Interpreted`]) — all agreeing with the naive reference
//! evaluator — while entering **no more nodes** than the scan walker.
//! Plans the jump driver cannot execute (predicates, no DFA) must fall
//! back transparently.
//!
//! Also here: the deterministic multi-thread batch test — answers of a
//! DOM batch are independent of `EngineConfig::eval_threads`.

use proptest::prelude::*;
use smoqe::workloads::hospital;
use smoqe::{Engine, EngineConfig, User};
use smoqe_automata::compile::CompiledMfa;
use smoqe_automata::{compile, optimize::optimize};
use smoqe_hype::dom::{evaluate_mfa_plan, DomOptions};
use smoqe_hype::{jump_eligible, ExecMode, NoopObserver};
use smoqe_rxpath::random::{random_path, random_qualifier, QueryGenConfig};
use smoqe_rxpath::{evaluate as naive, parse_path};
use smoqe_tax::TaxIndex;
use smoqe_xml::{Document, Vocabulary};

/// Query-generation config over the hospital vocabulary (the DTD must
/// already be interned into `vocab`).
fn gen_config(vocab: &Vocabulary) -> QueryGenConfig {
    let labels = vec![
        vocab.lookup("hospital").unwrap(),
        vocab.lookup("patient").unwrap(),
        vocab.lookup("pname").unwrap(),
        vocab.lookup("visit").unwrap(),
        vocab.lookup("treatment").unwrap(),
        vocab.lookup("medication").unwrap(),
        vocab.lookup("parent").unwrap(),
        vocab.lookup("test").unwrap(),
    ];
    let values = vec!["autism".into(), "headache".into(), "Ann".into()];
    let mut cfg = QueryGenConfig::new(labels, values);
    cfg.max_depth = 4;
    cfg
}

/// One prepared document + query-generation config per RNG seed.
fn setup(doc_seed: u64) -> (Vocabulary, Document, QueryGenConfig) {
    let vocab = Vocabulary::new();
    hospital::dtd(&vocab);
    let doc = hospital::generate_document(&vocab, doc_seed, 400);
    let cfg = gen_config(&vocab);
    (vocab, doc, cfg)
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 64,
        .. ProptestConfig::default()
    })]

    #[test]
    fn jump_equals_compiled_equals_interpreted(
        doc_seed in 0u64..6,
        query_seed in 0u64..10_000,
        optimized in 0u64..2,
    ) {
        let optimized = optimized == 1;
        let (vocab, doc, cfg) = setup(doc_seed);
        let tax = TaxIndex::build(&doc);

        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(query_seed);
        let path = random_path(&mut rng, &cfg);
        let printed = path.display(&vocab).to_string();
        let path = parse_path(&printed, &vocab).unwrap();
        let mfa = if optimized {
            optimize(&compile(&path, &vocab))
        } else {
            compile(&path, &vocab)
        };
        let plan = CompiledMfa::compile(&mfa);
        let expected = naive(&doc, &path);

        let options = DomOptions { tax: Some(&tax) };
        let run = |mode| evaluate_mfa_plan(&doc, &plan, &options, mode, &mut NoopObserver);
        let (a_jump, s_jump) = run(ExecMode::Jump);
        let (a_scan, s_scan) = run(ExecMode::Compiled);
        let (a_interp, _) = run(ExecMode::Interpreted);
        prop_assert_eq!(&a_jump, &expected, "jump vs naive on `{}`", printed);
        prop_assert_eq!(&a_scan, &expected, "compiled vs naive on `{}`", printed);
        prop_assert_eq!(&a_interp, &expected, "interpreted vs naive on `{}`", printed);
        prop_assert!(
            s_jump.nodes_visited <= s_scan.nodes_visited,
            "jump visited {} > scan {} on `{}` (eligible: {})",
            s_jump.nodes_visited, s_scan.nodes_visited, printed, jump_eligible(&plan)
        );
        // Ineligible plans fall back to the scan walker: identical stats.
        if !jump_eligible(&plan) {
            prop_assert_eq!(s_jump.nodes_visited, s_scan.nodes_visited);
        }
    }

    /// The jump driver must also hold up under documents mutated through
    /// the incremental index maintenance path (`TaxIndex::patched`).
    #[test]
    fn jump_agrees_after_incremental_edits(
        doc_seed in 0u64..4,
        edit_seed in 0u64..50,
        query_seed in 0u64..2_000,
    ) {
        let (vocab, doc, cfg) = setup(doc_seed);
        let mut tax = TaxIndex::build(&doc);
        // Delete one subtree, patch the index (never rebuild).
        let victims: Vec<_> = doc
            .all_nodes()
            .filter(|&n| doc.is_element(n) && n != doc.root())
            .collect();
        let victim = victims[(edit_seed as usize) % victims.len()];
        let (doc, span) = smoqe_xml::delete_subtree(&doc, victim).unwrap();
        tax = tax.patched(&doc, &span);

        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(query_seed);
        let path = random_path(&mut rng, &cfg);
        let printed = path.display(&vocab).to_string();
        let path = parse_path(&printed, &vocab).unwrap();
        let plan = CompiledMfa::compile(&compile(&path, &vocab));
        let expected = naive(&doc, &path);
        let options = DomOptions { tax: Some(&tax) };
        let (a_jump, _) = evaluate_mfa_plan(&doc, &plan, &options, ExecMode::Jump, &mut NoopObserver);
        prop_assert_eq!(&a_jump, &expected, "jump on patched index, `{}`", printed);
    }

    /// Predicated plans must stay correct through `update_batch` edits
    /// that splice the **value posting lists**: inserting carriers of new
    /// text values, replacing a text node in place (same label shape, new
    /// value), and deleting a carrier again. Every statement must patch
    /// the index incrementally — never rebuild — and the guarded jump
    /// driver must then agree with the naive reference over the patched
    /// index while visiting no more nodes than the scan walker.
    #[test]
    fn predicated_jump_agrees_after_update_batch(
        doc_seed in 0u64..3,
        edit_seed in 0u64..12,
        query_seed in 0u64..2_000,
    ) {
        let engine = Engine::with_defaults();
        engine.load_dtd(hospital::DTD).unwrap();
        let initial = hospital::generate_document(engine.vocabulary(), doc_seed, 300);
        engine.load_document_tree(initial).unwrap();
        engine.build_tax_index().unwrap();
        let handle = engine.document_handle(smoqe::DEFAULT_DOCUMENT).unwrap();

        let med = ["autism", "headache", "flu"][(edit_seed % 3) as usize];
        let date = ["2006-01-11", "2006-02-07"][(edit_seed % 2) as usize];
        let insert = format!(
            "insert <patient><pname>Zed</pname><visit><treatment>\
             <medication>{med}</medication></treatment><date>{date}</date>\
             </visit></patient> into hospital"
        );
        let reports = handle
            .update_batch(&[
                insert.as_str(),
                // Text-only replace: splices 'Zed' out of and 'Ann' into
                // the pname posting lists, label index shape unchanged.
                "replace hospital/patient[pname = 'Zed']/pname with <pname>Ann</pname>",
                "insert <patient><pname>Tmp</pname><visit><treatment><test>mri</test>\
                 </treatment><date>d</date></visit></patient> into hospital",
                "delete hospital/patient[pname = 'Tmp']",
            ])
            .unwrap();
        prop_assert!(reports.iter().all(|r| r.tax_patched), "patched, not rebuilt");

        let doc = engine.document().unwrap();
        let tax = engine.tax_index().expect("index survives update_batch");

        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(query_seed);
        let cfg = gen_config(engine.vocabulary());
        // Force a qualified top path so every case exercises a guard.
        let path = smoqe_rxpath::Path::qualified(
            random_path(&mut rng, &cfg),
            random_qualifier(&mut rng, &cfg),
        );
        let printed = path.display(engine.vocabulary()).to_string();
        let path = parse_path(&printed, engine.vocabulary()).unwrap();
        let plan = CompiledMfa::compile(&compile(&path, engine.vocabulary()));
        let expected = naive(&doc, &path);

        let options = DomOptions { tax: Some(&*tax) };
        let run = |mode| evaluate_mfa_plan(&doc, &plan, &options, mode, &mut NoopObserver);
        let (a_jump, s_jump) = run(ExecMode::Jump);
        let (a_scan, s_scan) = run(ExecMode::Compiled);
        let (a_interp, _) = run(ExecMode::Interpreted);
        prop_assert_eq!(&a_jump, &expected, "jump vs naive after updates, `{}`", printed);
        prop_assert_eq!(&a_scan, &expected, "compiled vs naive after updates, `{}`", printed);
        prop_assert_eq!(&a_interp, &expected, "interpreted vs naive after updates, `{}`", printed);
        prop_assert!(
            s_jump.nodes_visited <= s_scan.nodes_visited,
            "jump visited {} > scan {} on `{}`",
            s_jump.nodes_visited, s_scan.nodes_visited, printed
        );
    }
}

/// Deterministic multi-thread batch check: a DOM batch returns the same
/// answers at 1, 2, 4 and 8 worker threads (1 thread takes the shared
/// streaming scan; more take the parallel snapshot path).
#[test]
fn batch_answers_are_independent_of_eval_threads() {
    let queries: Vec<&str> = hospital::DOC_QUERIES.iter().map(|(_, q)| *q).collect();
    let mut baseline: Option<Vec<Vec<smoqe_xml::NodeId>>> = None;
    for threads in [1usize, 2, 4, 8] {
        let engine = Engine::new(EngineConfig {
            eval_threads: threads,
            ..EngineConfig::default()
        });
        hospital::dtd(engine.vocabulary());
        let doc = hospital::generate_document(engine.vocabulary(), 3, 2_000);
        engine.load_document_tree(doc).unwrap();
        engine.build_tax_index().unwrap();
        let session = engine.session(User::Admin);
        let batch = session.query_batch(&queries).unwrap();
        let nodes: Vec<Vec<smoqe_xml::NodeId>> =
            batch.answers.iter().map(|a| a.nodes.clone()).collect();
        match &baseline {
            None => baseline = Some(nodes),
            Some(want) => assert_eq!(
                &nodes, want,
                "batch answers changed at {threads} eval threads"
            ),
        }
        if threads > 1 {
            assert_eq!(batch.events, 0, "parallel DOM batches do not parse");
        }
    }
}
