//! Security properties: SMOQE "prevents the disclosure of confidential or
//! sensitive information to unauthorized users" (paper §1).
//!
//! * answers to view queries only ever contain nodes that are *visible*
//!   under the policy (i.e. nodes with a counterpart in V(T));
//! * serialized answers never contain text that exists only in hidden
//!   regions;
//! * independence: changing hidden data never changes a view answer.

use smoqe::workloads::hospital;
use smoqe::{Engine, User};
use smoqe_xml::NodeId;
use std::collections::HashSet;
use std::sync::Arc;

fn engine() -> Arc<Engine> {
    let e = Engine::with_defaults();
    e.load_dtd(hospital::DTD).unwrap();
    e.load_document(hospital::SAMPLE_DOCUMENT).unwrap();
    e.register_policy("g", hospital::POLICY).unwrap();
    e
}

#[test]
fn answers_are_subsets_of_visible_nodes() {
    let e = engine();
    let view = e.materialize_view("g").unwrap();
    let visible: HashSet<NodeId> = view.origins.iter().copied().collect();
    let session = e.session(User::Group("g".into()));
    for (_, q) in hospital::VIEW_QUERIES {
        let ans = session.query(q).unwrap();
        for n in &ans.nodes {
            assert!(
                visible.contains(n),
                "query `{q}` leaked invisible node {n:?}"
            );
        }
    }
}

#[test]
fn hidden_text_never_appears_in_serialized_answers() {
    let e = engine();
    let session = e.session(User::Group("g".into()));
    // Names, test values and dates exist only in hidden regions of the
    // sample; session-safe serialization must filter them even when the
    // answer node's *source* subtree contains them.
    let secrets = ["Ann", "Bob", "Cal", "Pat", "blood", "2006-01-11"];
    for (_, q) in hospital::VIEW_QUERIES {
        for xml in session.query_xml(q).unwrap() {
            for s in secrets {
                assert!(
                    !xml.contains(s),
                    "query `{q}` leaked '{s}' in answer: {xml}"
                );
            }
        }
    }
}

#[test]
fn stream_mode_answers_are_also_filtered() {
    use smoqe::EngineConfig;
    let e = Engine::new(EngineConfig::streaming());
    e.load_dtd(hospital::DTD).unwrap();
    e.load_document(hospital::SAMPLE_DOCUMENT).unwrap();
    e.register_policy("g", hospital::POLICY).unwrap();
    let session = e.session(User::Group("g".into()));
    let ans = session.query("hospital/patient").unwrap();
    for xml in ans.xml.unwrap() {
        assert!(!xml.contains("pname"), "stream leaked pname: {xml}");
        assert!(!xml.contains("date"), "stream leaked date: {xml}");
    }
}

#[test]
fn wildcard_and_descendant_probing_cannot_reach_hidden_types() {
    let e = engine();
    let session = e.session(User::Group("g".into()));
    let doc = e.document().unwrap();
    let vocab = e.vocabulary();
    let hidden: Vec<_> = ["pname", "visit", "date", "test"]
        .iter()
        .map(|n| vocab.lookup(n).unwrap())
        .collect();
    // Exhaustive probing with wildcards and closures.
    for q in [
        "//*",
        "(*)*/*",
        "hospital/*/*",
        "hospital/(*)*",
        "//*[not(zzz)]",
    ] {
        let ans = session.query(q).unwrap();
        for n in &ans.nodes {
            let label = doc.label(*n).unwrap();
            assert!(
                !hidden.contains(&label),
                "probe `{q}` returned hidden-type node <{}>",
                vocab.name(label)
            );
        }
    }
}

#[test]
fn changing_hidden_data_does_not_change_view_answers() {
    // Two documents differing only in hidden content (names, dates, test
    // values) must be indistinguishable through the view.
    let doc_a = hospital::SAMPLE_DOCUMENT.to_string();
    let doc_b = doc_a
        .replace("Ann", "XXX")
        .replace("blood", "mri")
        .replace("2006-01-11", "1999-09-09");
    assert_ne!(doc_a, doc_b);
    let answers = |xml: &str| -> Vec<Vec<String>> {
        let e = Engine::with_defaults();
        e.load_dtd(hospital::DTD).unwrap();
        e.load_document(xml).unwrap();
        e.register_policy("g", hospital::POLICY).unwrap();
        let session = e.session(User::Group("g".into()));
        hospital::VIEW_QUERIES
            .iter()
            .map(|(_, q)| session.query_xml(q).unwrap())
            .collect()
    };
    assert_eq!(answers(&doc_a), answers(&doc_b));
}

#[test]
fn conditionally_visible_data_appears_only_when_condition_holds() {
    // Patient exposed iff some visit treats autism; flip the condition.
    let with = "<hospital><patient><pname>Zed</pname>\
        <visit><treatment><medication>autism</medication></treatment><date>d</date></visit>\
        </patient></hospital>";
    let without = with.replace("autism", "flu");
    let count = |xml: &str| {
        let e = Engine::with_defaults();
        e.load_dtd(hospital::DTD).unwrap();
        e.load_document(xml).unwrap();
        e.register_policy("g", hospital::POLICY).unwrap();
        e.session(User::Group("g".into()))
            .query("hospital/patient")
            .unwrap()
            .len()
    };
    assert_eq!(count(with), 1);
    assert_eq!(count(&without), 0);
}

#[test]
fn admin_and_group_sessions_are_isolated() {
    let e = engine();
    let admin = e.session(User::Admin);
    let group = e.session(User::Group("g".into()));
    // Admin sees hidden data the group cannot.
    assert!(!admin.query("//pname").unwrap().is_empty());
    assert!(group.query("//pname").unwrap().is_empty());
    // Two groups with different policies see different data.
    e.register_policy("open", "# allow-all policy: no annotations\n")
        .unwrap();
    let open = e.session(User::Group("open".into()));
    assert!(!open.query("//pname").unwrap().is_empty());
}
