//! Span-backed document storage: edge cases and differential checks.
//!
//! The DOM holds one shared buffer plus compact span records; text and
//! attribute values are materialized lazily. These tests pin down the
//! tricky span boundaries (entities, split CDATA, empty elements, quoted
//! attribute values) and check — differentially, against a document
//! rebuilt from pull events into *owned* strings (the pre-span
//! representation) — that `string_value`, `direct_text` and `to_xml` are
//! byte-for-byte identical on random documents.

use proptest::prelude::*;
use smoqe_xml::stax::{PullParser, XmlEvent};
use smoqe_xml::{Document, TreeBuilder, Vocabulary};

/// Rebuilds `xml` into a document of **owned** strings by replaying pull
/// events through the programmatic `TreeBuilder` path — exactly the
/// pre-refactor string-arena representation. Node numbering matches the
/// span-backed parse by the DOM/StAX parity invariant.
fn owned_rebuild(xml: &str, vocab: &Vocabulary) -> Document {
    let mut b = TreeBuilder::new(vocab.clone());
    let mut p = PullParser::from_str(xml);
    loop {
        match p.next_event().expect("oracle rebuild parses") {
            XmlEvent::StartElement { name, attributes } => {
                b.start_element_named(&name);
                for a in &attributes {
                    b.attribute(&a.name, &a.value);
                }
            }
            XmlEvent::Text(t) => b.text(&t),
            XmlEvent::EndElement { .. } => b.end_element(),
            XmlEvent::EndDocument => break,
        }
    }
    b.finish().expect("oracle rebuild is well-formed")
}

/// Asserts the span-backed parse of `xml` agrees with the owned-string
/// oracle on every accessor the engine uses.
fn assert_span_parse_matches_owned(xml: &str) {
    let vocab = Vocabulary::new();
    let spanned = Document::parse_str(xml, &vocab).expect("span parse");
    let owned = owned_rebuild(xml, &vocab);
    assert_eq!(spanned.node_count(), owned.node_count(), "node count");
    assert_eq!(spanned.to_xml(), owned.to_xml(), "serialization");
    for n in spanned.all_nodes() {
        assert_eq!(spanned.kind(n), owned.kind(n), "kind of {n:?}");
        assert_eq!(
            spanned.string_value(n),
            owned.string_value(n),
            "string_value of {n:?}"
        );
        assert_eq!(
            spanned.direct_text(n),
            owned.direct_text(n),
            "direct_text of {n:?}"
        );
        assert_eq!(spanned.text(n), owned.text(n), "text of {n:?}");
        let sa: Vec<(String, String)> = spanned
            .attributes(n)
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        let oa: Vec<(String, String)> = owned
            .attributes(n)
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        assert_eq!(sa, oa, "attributes of {n:?}");
    }
}

#[test]
fn entity_heavy_text_decodes_identically() {
    for xml in [
        "<a>&amp;&lt;&gt;&#65;&#x42;&apos;&quot;</a>",
        "<a>x&amp;y<b>&lt;inner&gt;</b>z&#33;</a>",
        "<a>&amp;&amp;&amp;&amp;&amp;</a>",
        "<a><b>&#x4e2d;&#x6587;</b>tail &gt; here</a>",
    ] {
        assert_span_parse_matches_owned(xml);
    }
    let vocab = Vocabulary::new();
    let doc = Document::parse_str("<a>&amp;&lt;&gt;&#65;&#x42;</a>", &vocab).unwrap();
    assert_eq!(doc.string_value(doc.root()), "&<>AB");
}

#[test]
fn cdata_split_sections_concatenate() {
    // "]]>" spelled as two adjacent CDATA sections, plus trailing
    // brackets that are content, plus markup characters kept verbatim.
    for xml in [
        "<a><![CDATA[x]]></a>",
        "<a><![CDATA[a]]]]><![CDATA[>b]]></a>",
        "<a>pre<![CDATA[ <raw> & ]]>post</a>",
        "<a><![CDATA[x]]]></a>",
        "<a><![CDATA[]]><![CDATA[y]]></a>",
        "<a><b><![CDATA[only]]></b> tail</a>",
    ] {
        assert_span_parse_matches_owned(xml);
    }
    let vocab = Vocabulary::new();
    let doc = Document::parse_str("<a><![CDATA[a]]]]><![CDATA[>b]]></a>", &vocab).unwrap();
    assert_eq!(doc.string_value(doc.root()), "a]]>b");
    let doc = Document::parse_str("<a><![CDATA[x]]]></a>", &vocab).unwrap();
    assert_eq!(doc.string_value(doc.root()), "x]");
}

#[test]
fn empty_elements_have_tight_extents() {
    for xml in [
        "<a/>",
        "<a><b/><c></c></a>",
        "<a><b x=\"\"/></a>",
        "<a>t<b/>t</a>",
    ] {
        assert_span_parse_matches_owned(xml);
    }
    let vocab = Vocabulary::new();
    let src = "<a><b/><c></c></a>";
    let doc = Document::parse_str(src, &vocab).unwrap();
    let b = doc.first_child(doc.root()).unwrap();
    let (bs, be) = doc.node_extent(b).unwrap();
    assert_eq!(&src[bs..be], "<b/>");
    let c = doc.next_sibling(b).unwrap();
    let (cs, ce) = doc.node_extent(c).unwrap();
    assert_eq!(&src[cs..ce], "<c></c>");
}

#[test]
fn attribute_values_with_quotes_and_entities() {
    for xml in [
        r#"<a k="it's fine"/>"#,
        r#"<a k='say "hi"'/>"#,
        r#"<a k="a&amp;b" j='1 &lt; 2'/>"#,
        r#"<a k="&#x22;&#39;"/>"#,
        r#"<a k="" j="plain"/>"#,
    ] {
        assert_span_parse_matches_owned(xml);
    }
    let vocab = Vocabulary::new();
    let doc = Document::parse_str(r#"<a k='say "hi"'/>"#, &vocab).unwrap();
    assert_eq!(doc.attribute(doc.root(), "k"), Some("say \"hi\""));
    // Attribute names are interned through the shared vocabulary.
    assert!(vocab.lookup("k").is_some());
}

#[test]
fn span_tables_are_a_fraction_of_the_owned_arena_footprint() {
    // A 30k-node document with realistic text and attribute sizes: the
    // span-backed text/attribute tables must be far smaller than the
    // owned-string arena they replaced.
    let mut xml = String::from("<hospital>");
    for i in 0..15_000 {
        xml.push_str(&format!(
            "<record id=\"r{i:05}\">patient visit note number {i:05}, \
             condition stable on review</record>"
        ));
    }
    xml.push_str("</hospital>");
    let vocab = Vocabulary::new();
    let doc = Document::parse_str(&xml, &vocab).unwrap();
    assert!(doc.node_count() >= 30_000);
    let summary = doc.memory_summary();

    // What the old representation paid per node: an owned `String` (24
    // bytes of header plus content) for every text node and for both
    // halves of every attribute.
    let string_header = std::mem::size_of::<String>();
    let mut owned_arena = 0usize;
    for n in doc.all_nodes() {
        if let Some(t) = doc.text(n) {
            owned_arena += string_header + t.len();
        }
        for (k, v) in doc.attributes(n) {
            owned_arena += 2 * string_header + k.len() + v.len();
        }
    }
    let span_tables = summary.text_table_bytes
        + summary.attr_table_bytes
        + summary.owned_bytes
        + summary.entity_cache_bytes;
    assert!(
        span_tables * 2 < owned_arena,
        "span tables ({span_tables} B) should be well under half the \
         owned-string arena ({owned_arena} B); summary: {summary}"
    );
    // And the whole document must be dominated by the buffer itself, not
    // bookkeeping: tables together stay within ~3x of a bare 32-byte
    // node table.
    assert_eq!(summary.buffer_bytes, xml.len());
    assert!(summary.node_table_bytes >= doc.node_count() * 32);
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    /// Random documents: the span-backed parse agrees byte-for-byte with
    /// the owned-string oracle on every accessor.
    #[test]
    fn span_parse_matches_owned_rebuild(seed in 0u64..1_000_000) {
        let xml = random_document(seed);
        assert_span_parse_matches_owned(&xml);
    }
}

/// Tiny deterministic generator (splitmix64) for random document sources:
/// nested elements with attributes, mixed text with entity references,
/// numeric character references and CDATA sections.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

fn random_document(seed: u64) -> String {
    let mut rng = Rng(seed.wrapping_mul(0x2545_F491_4F6C_DD1D) ^ 0xDEAD_BEEF);
    let mut out = String::new();
    random_element(&mut rng, 3, &mut out);
    out
}

fn random_text(rng: &mut Rng, out: &mut String) {
    const PIECES: &[&str] = &[
        "word", "x y", "tail ", "&amp;", "&lt;", "&gt;", "&#65;", "&#x2603;", "&apos;", "mid",
    ];
    for _ in 0..1 + rng.below(3) {
        out.push_str(PIECES[rng.below(PIECES.len() as u64) as usize]);
    }
}

fn random_cdata(rng: &mut Rng, out: &mut String) {
    const BODIES: &[&str] = &["", "raw", "a < b & c", "]x", "x]", "<tag>", "  "];
    out.push_str("<![CDATA[");
    out.push_str(BODIES[rng.below(BODIES.len() as u64) as usize]);
    out.push_str("]]>");
}

fn random_attrs(rng: &mut Rng, out: &mut String) {
    const NAMES: &[&str] = &["k", "x", "y"];
    const VALUES: &[&str] = &[
        "",
        "v",
        "a&amp;b",
        "it's",
        "1 &lt; 2",
        "&#x22;",
        "two words",
    ];
    let n = rng.below(3) as usize;
    for name in &NAMES[..n] {
        let value = VALUES[rng.below(VALUES.len() as u64) as usize];
        out.push_str(&format!(" {name}=\"{value}\""));
    }
}

fn random_element(rng: &mut Rng, depth: u32, out: &mut String) {
    const NAMES: &[&str] = &["a", "b", "c", "d"];
    let name = NAMES[rng.below(NAMES.len() as u64) as usize];
    out.push('<');
    out.push_str(name);
    random_attrs(rng, out);
    if rng.below(4) == 0 {
        out.push_str("/>");
        return;
    }
    out.push('>');
    for _ in 0..rng.below(4) {
        match rng.below(3) {
            0 if depth > 0 => random_element(rng, depth - 1, out),
            1 => random_cdata(rng, out),
            _ => random_text(rng, out),
        }
    }
    out.push_str("</");
    out.push_str(name);
    out.push('>');
}
