//! The durability subsystem end to end: WAL logging, checkpoints, and
//! crash recovery through [`Engine::recover`].
//!
//! The heart of the file is the torn-log sweep: a populated WAL is cut at
//! **every byte offset** and recovery must come back with exactly the
//! state of some prefix of the logged operations (monotonically growing
//! with the cut), never a torn document and never a panic. A proptest
//! flips random bits the same way: recovery either succeeds on a prefix
//! or refuses with a typed corruption error.

use proptest::prelude::*;
use smoqe::workloads::hospital;
use smoqe::{DurError, Engine, EngineConfig, EngineError, Failpoint, User};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// A unique scratch directory removed on drop (the workspace has no
/// `tempfile` dependency; std is enough).
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        static SEQ: AtomicUsize = AtomicUsize::new(0);
        let path = std::env::temp_dir().join(format!(
            "smoqe-durability-{tag}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&path);
        std::fs::create_dir_all(&path).unwrap();
        TempDir(path)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn recover(dir: &Path) -> Arc<Engine> {
    Engine::recover(EngineConfig::default(), dir).unwrap()
}

/// An admin insert with a unique marker name, so every accepted update
/// changes the serialized document distinguishably.
fn marker_insert(i: usize) -> String {
    format!(
        "insert <patient><pname>M{i}</pname><visit><treatment><medication>autism\
         </medication></treatment><date>d</date></visit></patient> into hospital"
    )
}

#[test]
fn a_recovered_engine_is_indistinguishable_from_the_one_that_crashed() {
    let dir = TempDir::new("roundtrip");
    let engine = recover(dir.path());
    assert_eq!(
        engine.recovery_epoch(),
        0,
        "fresh directory starts at epoch 0"
    );

    engine.load_dtd(hospital::DTD).unwrap();
    engine.load_document(hospital::SAMPLE_DOCUMENT).unwrap();
    engine
        .register_policy(hospital::GROUP, hospital::POLICY)
        .unwrap();
    engine.build_tax_index().unwrap();
    for i in 0..4 {
        engine.update(&marker_insert(i)).unwrap();
    }
    let generation = engine
        .document_handle(smoqe::DEFAULT_DOCUMENT)
        .unwrap()
        .generation();
    let admin_before: Vec<_> = hospital::DOC_QUERIES
        .iter()
        .map(|(_, q)| engine.session(User::Admin).query(q).unwrap().nodes)
        .collect();
    let view_before: Vec<_> = hospital::VIEW_QUERIES
        .iter()
        .map(|(_, q)| {
            engine
                .session(User::Group(hospital::GROUP.into()))
                .query(q)
                .unwrap()
                .nodes
        })
        .collect();
    drop(engine); // an abrupt exit: no checkpoint, no shutdown hook

    let recovered = recover(dir.path());
    assert_eq!(
        recovered.recovery_epoch(),
        1,
        "recovering existing state advances the epoch"
    );
    assert_eq!(
        recovered
            .document_handle(smoqe::DEFAULT_DOCUMENT)
            .unwrap()
            .generation(),
        generation,
        "generation counters must survive so cached plans stay correctly keyed"
    );
    assert!(recovered.tax_index().is_some(), "the TAX index is rebuilt");
    for ((_, q), nodes) in hospital::DOC_QUERIES.iter().zip(&admin_before) {
        assert_eq!(
            &recovered.session(User::Admin).query(q).unwrap().nodes,
            nodes,
            "admin `{q}` diverged after recovery"
        );
    }
    for ((_, q), nodes) in hospital::VIEW_QUERIES.iter().zip(&view_before) {
        assert_eq!(
            &recovered
                .session(User::Group(hospital::GROUP.into()))
                .query(q)
                .unwrap()
                .nodes,
            nodes,
            "view `{q}` diverged after recovery"
        );
    }

    // A third boot advances the epoch again.
    drop(recovered);
    assert_eq!(recover(dir.path()).recovery_epoch(), 2);
}

#[test]
fn checkpoint_empties_the_wal_and_recovery_replays_only_the_tail() {
    let dir = TempDir::new("checkpoint");
    let wal = dir.path().join("wal.log");
    let engine = recover(dir.path());
    engine.load_dtd(hospital::DTD).unwrap();
    engine.load_document(hospital::SAMPLE_DOCUMENT).unwrap();
    engine
        .register_policy(hospital::GROUP, hospital::POLICY)
        .unwrap();
    engine.build_tax_index().unwrap();
    engine.update(&marker_insert(0)).unwrap();
    assert!(std::fs::metadata(&wal).unwrap().len() > 0);

    let covered = engine
        .checkpoint()
        .unwrap()
        .expect("durable engines checkpoint");
    assert!(covered > 0);
    assert_eq!(
        std::fs::metadata(&wal).unwrap().len(),
        0,
        "a quiet checkpoint truncates the log"
    );

    // Post-checkpoint writes land in the (now short) WAL tail.
    engine.update(&marker_insert(1)).unwrap();
    let expected = engine.document().unwrap().to_xml();
    drop(engine);

    let recovered = recover(dir.path());
    assert_eq!(
        recovered.document().unwrap().to_xml(),
        expected,
        "checkpointed state plus the replayed tail must equal the pre-crash state"
    );
    assert!(expected.contains("M0") && expected.contains("M1"));
}

#[test]
fn dropped_documents_are_not_resurrected_by_recovery() {
    let dir = TempDir::new("drop");
    let engine = recover(dir.path());
    for name in ["keep", "gone"] {
        let doc = engine.open_document(name);
        hospital::install_sample(&doc).unwrap();
    }
    // Checkpoint first: the drop must also erase the document from the
    // *persisted* artifacts, not just from memory.
    engine.checkpoint().unwrap();
    assert!(engine.drop_document("gone"));
    drop(engine);

    let recovered = recover(dir.path());
    let names = recovered.document_names();
    assert!(names.iter().any(|n| n == "keep"));
    assert!(
        !names.iter().any(|n| n == "gone"),
        "a dropped document came back from the dead: {names:?}"
    );
    assert!(recovered
        .document_handle("keep")
        .unwrap()
        .document()
        .is_ok());
}

#[test]
fn group_updates_replay_through_their_security_view_not_as_admin() {
    let dir = TempDir::new("group");
    let engine = recover(dir.path());
    engine.load_dtd(hospital::DTD).unwrap();
    engine.load_document(hospital::SAMPLE_DOCUMENT).unwrap();
    engine
        .register_policy(hospital::GROUP, hospital::POLICY)
        .unwrap();
    // The researchers' view hides some medications; this statement, run
    // as admin, would replace *every* medication. The replay must keep
    // the group's restricted target set.
    let session = engine.session(User::Group(hospital::GROUP.into()));
    let report = session
        .update(
            "replace hospital/patient/treatment/medication with <medication>autism</medication>",
        )
        .unwrap();
    assert!(report.applied >= 1);
    let expected = engine.document().unwrap().to_xml();
    assert!(
        expected.contains("flu") || expected.contains("headache"),
        "the view must have hidden at least one medication from the update"
    );
    drop(engine);

    let recovered = recover(dir.path());
    assert_eq!(
        recovered.document().unwrap().to_xml(),
        expected,
        "replaying the group update as a different principal changes its targets"
    );
}

/// The deterministic setup used by the corruption tests: returns the data
/// directory populated with a checkpoint (empty, from initialization) and
/// a WAL holding the whole history, plus the fingerprint after every
/// logged step (`states[0]` = empty engine).
fn populated_wal(tag: &str) -> (TempDir, Vec<String>) {
    let dir = TempDir::new(tag);
    let engine = recover(dir.path());
    let mut states = vec![fingerprint(&engine)];
    engine.load_dtd(hospital::DTD).unwrap();
    states.push(fingerprint(&engine));
    engine.load_document(hospital::SAMPLE_DOCUMENT).unwrap();
    states.push(fingerprint(&engine));
    engine
        .register_policy(hospital::GROUP, hospital::POLICY)
        .unwrap();
    states.push(fingerprint(&engine));
    engine.build_tax_index().unwrap();
    states.push(fingerprint(&engine));
    for i in 0..4 {
        engine.update(&marker_insert(i)).unwrap();
        states.push(fingerprint(&engine));
    }
    (dir, states)
}

/// A state digest that is defined even before a document is loaded.
fn fingerprint(engine: &Arc<Engine>) -> String {
    let mut names = engine.document_names();
    names.sort();
    let mut out = String::new();
    for name in names {
        let doc = engine.document_handle(&name).unwrap();
        out.push_str(&format!(
            "{name}|dtd:{}|view:{}|tax:{}|{}\n",
            doc.dtd().is_some(),
            doc.view(hospital::GROUP).is_ok(),
            doc.tax_index().is_some(),
            doc.document().map(|d| d.to_xml()).unwrap_or_default(),
        ));
    }
    out
}

/// Copies the populated directory, truncating its WAL to `cut` bytes.
fn copy_with_wal(src: &Path, tag: &str, wal: &[u8]) -> TempDir {
    let scratch = TempDir::new(tag);
    for entry in std::fs::read_dir(src).unwrap() {
        let entry = entry.unwrap();
        if entry.file_name() != *"wal.log" {
            std::fs::copy(entry.path(), scratch.path().join(entry.file_name())).unwrap();
        }
    }
    std::fs::write(scratch.path().join("wal.log"), wal).unwrap();
    scratch
}

#[test]
fn truncating_the_wal_at_every_byte_offset_recovers_a_growing_prefix() {
    let (dir, states) = populated_wal("sweep");
    let wal = std::fs::read(dir.path().join("wal.log")).unwrap();
    assert!(wal.len() > 100, "the sweep needs a real log to cut");

    let mut last_matched = 0usize;
    for cut in 0..=wal.len() {
        let scratch = copy_with_wal(dir.path(), "sweep-cut", &wal[..cut]);
        let recovered = Engine::recover(EngineConfig::default(), scratch.path())
            .unwrap_or_else(|e| panic!("cut at {cut}/{} must recover, got: {e}", wal.len()));
        let state = fingerprint(&recovered);
        let matched = states
            .iter()
            .position(|s| *s == state)
            .unwrap_or_else(|| panic!("cut at {cut} recovered a state that never existed"));
        assert!(
            matched >= last_matched,
            "cut at {cut} recovered state {matched}, an earlier prefix than {last_matched}"
        );
        last_matched = matched;
    }
    assert_eq!(
        last_matched,
        states.len() - 1,
        "the uncut log must recover the full history"
    );
}

#[test]
fn midlog_corruption_is_refused_with_a_typed_error() {
    let (dir, _) = populated_wal("midlog");
    let mut wal = std::fs::read(dir.path().join("wal.log")).unwrap();
    // A payload byte of the first record: the record is complete, so this
    // is corruption, not a torn tail.
    wal[10] ^= 0x01;
    let scratch = copy_with_wal(dir.path(), "midlog-flip", &wal);
    match Engine::recover(EngineConfig::default(), scratch.path()) {
        Err(EngineError::Durability(DurError::Corrupt { offset: 0, .. })) => {}
        Ok(_) => panic!("recovery accepted a corrupt log"),
        Err(other) => panic!("expected a typed corruption error, got: {other}"),
    }
}

/// The live engine permits loading a document and then registering a DTD
/// it does not match (`load_dtd` never revalidates the installed
/// document). That state must checkpoint *and restore*: a restore that
/// re-validated would refuse on every boot, making the directory
/// permanently unrecoverable for state the engine accepted.
#[test]
fn a_document_loaded_before_a_mismatched_dtd_still_recovers() {
    let dir = TempDir::new("dtd-after-doc");
    let engine = recover(dir.path());
    engine.load_document(hospital::SAMPLE_DOCUMENT).unwrap();
    // A DTD the hospital document does not satisfy — accepted live.
    engine
        .load_dtd("<!ELEMENT inventory (item*)> <!ELEMENT item (#PCDATA)>")
        .unwrap();
    let before = engine.document().unwrap().to_xml();
    engine.checkpoint().unwrap();
    drop(engine);

    // Boot from the checkpoint, then once more from the checkpoint the
    // recovery itself writes — both must accept the capture as-is.
    for boot in 1..=2 {
        let recovered = Engine::recover(EngineConfig::default(), dir.path())
            .unwrap_or_else(|e| panic!("boot {boot} refused accepted state: {e}"));
        assert_eq!(recovered.document().unwrap().to_xml(), before);
        assert!(recovered.dtd().is_some(), "the mismatched DTD survives too");
        drop(recovered);
    }
}

/// Stress for the checkpoint's consistent cut: documents created and
/// loaded *while* checkpoints run must never be lost, even though they
/// were absent from the entry listing a racing checkpoint started from.
#[test]
fn documents_created_during_a_checkpoint_are_never_lost() {
    let dir = TempDir::new("ckpt-race");
    let engine = recover(dir.path());
    let n = 150;
    let writer = {
        let engine = engine.clone();
        std::thread::spawn(move || {
            for i in 0..n {
                let handle = engine.try_open_document(&format!("doc{i}")).unwrap();
                handle.load_document(&format!("<a><b>{i}</b></a>")).unwrap();
            }
        })
    };
    while !writer.is_finished() {
        engine.checkpoint().unwrap();
    }
    writer.join().unwrap();
    drop(engine); // abrupt: whatever the last checkpoint + WAL hold must suffice

    let recovered = recover(dir.path());
    for i in 0..n {
        let handle = recovered
            .document_handle(&format!("doc{i}"))
            .unwrap_or_else(|_| panic!("acknowledged doc{i} vanished after recovery"));
        assert_eq!(
            handle.document().unwrap().to_xml(),
            format!("<a><b>{i}</b></a>"),
            "doc{i} recovered torn"
        );
    }
}

#[test]
fn try_open_document_surfaces_a_dead_durability_layer() {
    let dir = TempDir::new("dead-open");
    let engine = recover(dir.path());
    engine
        .durability()
        .unwrap()
        .failpoints()
        .arm(Failpoint::CrashBeforeAppend);
    match engine.try_open_document("fresh") {
        Err(EngineError::Durability(_)) => {}
        Ok(_) => panic!("a dying creation record must surface"),
        Err(other) => panic!("expected a durability error, got: {other}"),
    }
    // The plain variant still hands out a handle, but the dead layer is
    // visible at the first data-bearing operation.
    let handle = engine.open_document("another");
    assert!(matches!(
        handle.load_document("<a/>"),
        Err(EngineError::Durability(DurError::Crashed))
    ));
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 48,
        .. ProptestConfig::default()
    })]

    /// Satellite: flipping any single bit of the WAL either recovers some
    /// prefix of the history or fails with a typed durability error —
    /// never a panic, never a state that did not exist.
    #[test]
    fn bit_flips_recover_a_prefix_or_fail_typed(byte in 0usize..4096, bit in 0u8..8) {
        let (dir, states) = populated_wal("bitflip");
        let mut wal = std::fs::read(dir.path().join("wal.log")).unwrap();
        let byte = byte % wal.len();
        wal[byte] ^= 1 << bit;
        let scratch = copy_with_wal(dir.path(), "bitflip-case", &wal);
        match Engine::recover(EngineConfig::default(), scratch.path()) {
            Ok(recovered) => {
                let state = fingerprint(&recovered);
                prop_assert!(
                    states.contains(&state),
                    "flip of bit {} at byte {} recovered a state that never existed",
                    bit, byte
                );
            }
            Err(EngineError::Durability(_)) => {} // typed refusal is the other legal outcome
            Err(other) => prop_assert!(false, "untyped failure {} for flip at {}", other, byte),
        }
    }
}
