//! Offline stand-in for the `rand` crate, implementing exactly the API
//! subset this workspace uses (`StdRng::seed_from_u64`, `random_range`,
//! `random_bool`). The container has no network access to crates.io, so the
//! workspace vendors a deterministic splitmix64/xoshiro-style generator
//! under the same names. Streams are stable across runs for a given seed,
//! which is all the seeded generators and property tests require.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// High-level sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range`. Panics on an empty range.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        // 53 high-quality mantissa bits -> uniform in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<T: RngCore> Rng for T {}

/// Ranges that can produce a uniform sample.
pub trait SampleRange<T> {
    /// Draws one sample; panics if the range is empty.
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u128) - (lo as u128) + 1;
                lo + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_signed {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_sample_range_signed!(i32 => u32, i64 => u64);

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ seeded via
    /// splitmix64 (the same construction the real `rand` uses for
    /// seeding). Deterministic per seed.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(
                a.random_range(0u64..1_000_000),
                b.random_range(0u64..1_000_000)
            );
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1_000 {
            let x = rng.random_range(10usize..20);
            assert!((10..20).contains(&x));
            let y = rng.random_range(2..=3);
            assert!((2..=3).contains(&y));
        }
    }

    #[test]
    fn bool_probability_is_roughly_respected() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((1_800..3_200).contains(&hits), "{hits}");
        assert!(!(0..100).any(|_| rng.random_bool(0.0)));
        assert!((0..100).all(|_| rng.random_bool(1.0)));
    }
}
