//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The container cannot reach crates.io, so this crate implements the exact
//! API subset the workspace's benches use — `criterion_group!` /
//! `criterion_main!`, `Criterion::sample_size`, benchmark groups,
//! `bench_function` / `bench_with_input`, and `Bencher::iter` — with a
//! plain wall-clock measurement loop instead of criterion's statistical
//! machinery. Each benchmark prints `group/id: mean per-iteration time` to
//! stdout. Good enough to compare configurations; swap in the real crate
//! when a registry is reachable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level harness state (a subset of criterion's knobs).
pub struct Criterion {
    sample_size: usize,
}

/// Whether the bench binary was invoked in smoke mode (`cargo bench --
/// --test`), mirroring real criterion: every benchmark runs exactly once
/// to prove it still works, with no timed sampling. Keeps CI able to
/// execute benches without paying measurement time.
fn test_mode() -> bool {
    std::env::args().any(|a| a == "--test")
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 100 }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark (ignored in `--test` mode,
    /// which always runs a single sample).
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = if test_mode() { 1 } else { self.sample_size };
        BenchmarkGroup {
            name: name.into(),
            sample_size,
            _criterion: self,
        }
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group (ignored in `--test`
    /// mode).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        if !test_mode() {
            self.sample_size = n;
        }
        self
    }

    /// Runs `f` as a benchmark named `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        bencher.report(&self.name, &id.to_string());
        self
    }

    /// Runs `f` with `input` as a benchmark named `id`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Display,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (report-flush hook in real criterion; no-op here).
    pub fn finish(self) {}
}

/// A benchmark id with an optional parameter, rendered `name/param`.
pub struct BenchmarkId {
    rendered: String,
}

impl BenchmarkId {
    /// Creates an id `name/param`.
    pub fn new(name: impl Display, param: impl Display) -> Self {
        BenchmarkId {
            rendered: format!("{name}/{param}"),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.rendered)
    }
}

/// Times a closure over the configured number of samples.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Measures `f`, recording one sample per configured iteration (after
    /// one untimed warm-up call).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f()); // warm-up
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed());
        }
    }

    fn report(&self, group: &str, id: &str) {
        if self.samples.is_empty() {
            println!("{group}/{id}: no samples recorded");
            return;
        }
        let total: Duration = self.samples.iter().sum();
        let mean = total / self.samples.len() as u32;
        let min = self.samples.iter().min().copied().unwrap_or_default();
        let max = self.samples.iter().max().copied().unwrap_or_default();
        println!(
            "{group}/{id}: mean {} (min {}, max {}, n={})",
            fmt_duration(mean),
            fmt_duration(min),
            fmt_duration(max),
            self.samples.len(),
        );
    }
}

fn fmt_duration(d: Duration) -> String {
    let us = d.as_secs_f64() * 1e6;
    if us < 1_000.0 {
        format!("{us:.2}us")
    } else if us < 1_000_000.0 {
        format!("{:.2}ms", us / 1e3)
    } else {
        format!("{:.2}s", us / 1e6)
    }
}

/// Declares a benchmark group function, mirroring criterion's macro forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench entry point running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default().sample_size(5);
        let mut group = c.benchmark_group("t");
        let mut calls = 0usize;
        group.bench_function("count", |b| b.iter(|| calls += 1));
        // one warm-up + five samples
        assert_eq!(calls, 6);
        group.bench_with_input(BenchmarkId::new("with", 3), &3usize, |b, &n| {
            b.iter(|| n * 2)
        });
        group.finish();
    }

    #[test]
    fn benchmark_id_renders() {
        assert_eq!(BenchmarkId::new("eval", "q0").to_string(), "eval/q0");
    }
}
