//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset the workspace's property tests use: the
//! `proptest!` macro with `#![proptest_config(...)]`, integer-range
//! strategies (`name in 0u64..10_000`), and `prop_assert!` /
//! `prop_assert_eq!`. Cases are sampled with a deterministic generator
//! seeded from the test name, so failures reproduce exactly. There is no
//! shrinking — the failing case's sampled arguments are printed instead.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Range;

/// Run configuration (subset of proptest's).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases per test.
    pub cases: u32,
    /// Accepted for compatibility; shrinking is not implemented.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 0,
        }
    }
}

/// A source of sampled values for one generated test.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator whose stream is a pure function of `name` — each test
    /// function gets its own reproducible stream.
    pub fn deterministic(name: &str) -> Self {
        // FNV-1a over the test name.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    /// Next 64 random bits (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Types usable on the right of `name in <strategy>`.
pub trait Strategy {
    /// The value the strategy produces.
    type Value: std::fmt::Debug;
    /// Samples one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

/// The test-defining macro. Expands each `fn name(arg in strategy, ...)`
/// into a `#[test]` that samples `config.cases` argument tuples and runs
/// the body on each.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng = $crate::TestRng::deterministic(stringify!($name));
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::sample(&($strategy), &mut rng);)+
                let case_desc = || {
                    let mut d = format!("case {case} of {}", stringify!($name));
                    $(d.push_str(&format!(", {} = {:?}", stringify!($arg), $arg));)+
                    d
                };
                let _ = &case_desc; // used only on failure paths
                $crate::__run_case(case_desc, || $body);
            }
        }
    )*};
}

/// Runs one sampled case, decorating any panic with the case description.
#[doc(hidden)]
pub fn __run_case<D: Fn() -> String>(desc: D, body: impl FnOnce()) {
    let guard = CaseGuard(Some(desc()));
    body();
    std::mem::forget(guard);
}

struct CaseGuard(Option<String>);

impl Drop for CaseGuard {
    fn drop(&mut self) {
        if let Some(desc) = self.0.take() {
            // Only reached when the body panicked (success forgets the
            // guard), so this prints the reproduction info below the
            // panic message.
            eprintln!("proptest failure in {desc}");
        }
    }
}

/// Asserts a condition inside a proptest body.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Everything a property test needs in scope.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy, TestRng,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        #[test]
        fn samples_stay_in_range(x in 10u64..20, y in 0usize..5) {
            prop_assert!((10..20).contains(&x));
            prop_assert!(y < 5);
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(v in 0u32..100) {
            prop_assert_eq!(v / 100, 0);
            prop_assert_ne!(v, 100);
        }
    }

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = TestRng::deterministic("t");
        let mut b = TestRng::deterministic("t");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::deterministic("other");
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
