//! Secure updates: policy-checked writes through security views.
//!
//! Two user groups share one hospital document. The `clinicians` group
//! may see (and therefore write) treatments; the `researchers` group
//! lives behind the paper's restrictive policy. A clinician's update
//! lands; a researcher's write to a hidden node is **denied with exactly
//! the same error as a write to a node that does not exist**, so a denial
//! reveals nothing about what the policy hides. Accepted updates patch
//! the TAX index incrementally and leave concurrent readers on their old
//! snapshot.
//!
//! ```text
//! cargo run --example secure_updates
//! ```

use smoqe::workloads::hospital;
use smoqe::{Engine, EngineError, User};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let engine = Engine::with_defaults();
    let wards = engine.open_document("wards");
    hospital::install_sample(&wards)?; // registers the "researchers" group
    wards.build_tax_index()?;

    // Clinicians see everything except test results.
    wards.register_policy("clinicians", "ann(treatment, test) = N\n")?;

    // --- An admin grows the document. -------------------------------
    let admin = wards.session(User::Admin);
    let report = wards.update(
        "insert <patient><pname>Zoe</pname>\
         <visit><treatment><medication>autism</medication></treatment>\
         <date>2006-07-30</date></visit></patient> into hospital",
    )?;
    println!(
        "admin insert: {} target(s), {} -> {} nodes, TAX patched: {}",
        report.applied, report.nodes_before, report.nodes_after, report.tax_patched
    );
    assert!(report.tax_patched);

    // --- A clinician updates through their view. --------------------
    let clinician = wards.session(User::Group("clinicians".into()));
    let report = clinician.update(
        "replace hospital/patient[pname = 'Zoe']/visit/treatment/medication \
         with <medication>ritalin</medication>",
    )?;
    println!("clinician replace: {} accessible target(s)", report.applied);
    assert_eq!(
        admin
            .query("//patient[pname = 'Zoe']/visit/treatment/medication[text() = 'ritalin']")?
            .len(),
        1,
        "the clinician's write is visible in the source document"
    );

    // --- A researcher's denied write reveals nothing. ---------------
    let researcher = wards.session(User::Group(hospital::GROUP.into()));
    // `pname` exists but is hidden by the policy...
    let hidden = researcher.update("delete //pname").unwrap_err();
    // ...while `allergy-note` does not exist at all.
    let missing = researcher.update("delete //allergy-note").unwrap_err();
    println!("write to a hidden node:       {hidden}");
    println!("write to a missing node:      {missing}");
    assert!(matches!(hidden, EngineError::UpdateDenied));
    assert!(matches!(missing, EngineError::UpdateDenied));
    assert_eq!(
        hidden.to_string(),
        missing.to_string(),
        "denials must not distinguish hidden from non-existent targets"
    );
    assert!(
        !admin.query("//pname")?.is_empty(),
        "denied writes change nothing"
    );

    // --- Researchers can still write inside their view. -------------
    // The view exposes autism patients' treatments; the path is a VIEW
    // path (no `visit` — that type is hidden and skipped over).
    let report = researcher.update(
        "replace hospital/patient/treatment/medication with <medication>autism</medication>",
    )?;
    println!(
        "researcher replace: {} accessible target(s) (only nodes their view exposes)",
        report.applied
    );

    // Plans were invalidated for this document only, and fresh queries
    // see the updated snapshot.
    println!("cache after updates: {:?}", engine.cache_metrics());
    println!("secure_updates: OK");
    Ok(())
}
