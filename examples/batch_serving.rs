//! Batched serving: a whole mixed query load — admin and several user
//! groups with different security views — answered in **one sequential
//! scan** of the document.
//!
//! Serial streaming costs one document parse per query; under heavy
//! traffic against one document that is the bottleneck. The batched
//! evaluator feeds every parser event to all compiled plans at once, so
//! the whole batch costs a single parse: the `events` count it reports is
//! exactly what one query alone would have reported.
//!
//! ```text
//! cargo run --example batch_serving
//! ```

use smoqe::workloads::hospital;
use smoqe::{Engine, EngineConfig, Session, User};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let engine = Engine::new(EngineConfig::streaming());
    let wards = engine.open_document("wards");
    hospital::install_sample(&wards)?;
    wards.register_policy("auditors", "# allow-all policy: no annotations\n")?;

    // --- One session, a batch of queries ---------------------------------
    let researcher = wards.session(User::Group(hospital::GROUP.into()));
    let queries: Vec<&str> = hospital::VIEW_QUERIES.iter().map(|(_, q)| *q).collect();
    let single = researcher.query_batch(&queries[..1])?;
    let batch = researcher.query_batch(&queries)?;
    println!(
        "researcher batch: {} queries in one scan — {} parser events \
         (one query alone: {} events)",
        queries.len(),
        batch.events,
        single.events,
    );
    assert_eq!(batch.events, single.events, "the scan is shared");
    for (q, a) in queries.iter().zip(&batch.answers) {
        println!("  {} answer(s) for `{q}`", a.len());
    }

    // --- Cross-session batch: different groups, different views, ONE scan
    let admin = wards.session(User::Admin);
    let auditor = wards.session(User::Group("auditors".into()));
    let requests: Vec<(&Session, &str)> = vec![
        (&admin, "//pname"),
        (&auditor, "//pname"),
        (&researcher, "//pname"),
        (&admin, hospital::Q0),
        (&researcher, "//medication"),
    ];
    let mixed = engine.evaluate_batch(&requests)?;
    println!(
        "\ncross-session batch ({} principals, {} parser events):",
        3, mixed.events
    );
    for ((session, q), a) in requests.iter().zip(&mixed.answers) {
        println!("  [{:?}] `{q}` -> {} answer(s)", session.user(), a.len());
    }
    // Same query, three different views of the truth, one scan: the admin
    // and the allow-all auditor see patient names, the researcher's view
    // hides them.
    assert!(!mixed.answers[0].is_empty());
    assert!(!mixed.answers[1].is_empty());
    assert!(mixed.answers[2].is_empty());
    assert_eq!(mixed.events, single.events);

    // Serial equivalence: every batched answer matches its serial twin.
    for ((session, q), a) in requests.iter().zip(&mixed.answers) {
        assert_eq!(a.nodes, session.query(q)?.nodes, "`{q}` diverged");
    }
    println!("\nall batched answers identical to serial evaluation");
    Ok(())
}
