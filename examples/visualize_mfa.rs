//! Fig. 4 + Fig. 5: the MFA of the paper's query Q0, and a step-by-step
//! HyPE evaluation trace with node "colors".
//!
//! ```text
//! cargo run --example visualize_mfa           # text listing + trace
//! cargo run --example visualize_mfa -- dot    # Graphviz DOT on stdout
//! ```

use smoqe::automata::compile;
use smoqe::hype::dom::{evaluate_mfa_with, DomOptions};
use smoqe::rxpath::parse_path;
use smoqe::viz::{annotated_tree, mfa_listing, mfa_to_dot, trace_log, TraceCollector};
use smoqe::workloads::hospital;
use smoqe::xml::{Document, Vocabulary};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dot_mode = std::env::args().any(|a| a == "dot");
    let vocab = Vocabulary::new();
    let doc = Document::parse_str(hospital::SAMPLE_DOCUMENT, &vocab)?;
    let q0 = parse_path(hospital::Q0, &vocab)?;
    let m0 = compile(&q0, &vocab);

    if dot_mode {
        println!("{}", mfa_to_dot(&m0));
        return Ok(());
    }

    println!("=== Q0 (paper §3) ===\n{}\n", q0.display(&vocab));
    println!("=== MFA M0 (Fig. 4) ===\n{}", mfa_listing(&m0));

    let mut trace = TraceCollector::new();
    let (answers, stats) = evaluate_mfa_with(&doc, &m0, &DomOptions::default(), &mut trace);
    println!("=== HyPE evaluation (Fig. 5) ===");
    println!("{}", annotated_tree(&doc, &trace));
    println!("=== chronological trace ===\n{}", trace_log(&trace, &vocab));
    println!(
        "answers: {:?} ({} nodes visited, |Cans| = {})",
        answers
            .iter()
            .map(|n| doc.string_value(n))
            .collect::<Vec<_>>(),
        stats.nodes_visited,
        stats.cans_size
    );
    Ok(())
}
