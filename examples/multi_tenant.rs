//! Multi-tenant serving: one engine, two documents, four user groups,
//! eight worker threads — the deployment picture of the paper's Fig. 1.
//!
//! A hospital document and a company org chart live side by side in the
//! engine's catalog, each with its own DTD, policy-derived views and
//! generation counters. Worker threads carry owned `Send + Sync` sessions
//! and hammer the engine with a mixed query load; the shared plan cache
//! absorbs the repeated planning work, and a mid-flight policy change
//! invalidates exactly the plans of the group it touches.
//!
//! ```text
//! cargo run --example multi_tenant
//! ```

use smoqe::workloads::{hospital, org};
use smoqe::{Engine, Session, User};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let engine = Engine::with_defaults();

    // Tenant 1: the hospital, with the paper's policy plus an open group.
    let wards = engine.open_document("wards");
    hospital::install_sample(&wards)?;
    wards.register_policy("auditors", "# allow-all policy: no annotations\n")?;

    // Tenant 2: the company org chart.
    let company = engine.open_document("company");
    org::install_sample(&company)?;

    println!("catalog: {:?}", engine.document_names());

    // A serving mix: (session, query) pairs across tenants and groups.
    let mix: Vec<(Session, &str)> = vec![
        (
            wards.session(User::Group(hospital::GROUP.into())),
            "//medication",
        ),
        (
            wards.session(User::Group(hospital::GROUP.into())),
            "hospital/patient/treatment",
        ),
        (wards.session(User::Group("auditors".into())), "//pname"),
        (wards.session(User::Admin), hospital::Q0),
        (company.session(User::Group(org::GROUP.into())), "//ename"),
        (company.session(User::Group(org::GROUP.into())), "//salary"),
        (company.session(User::Admin), "//salary"),
    ];

    // Eight threads, each running the whole mix several times.
    std::thread::scope(|scope| {
        for t in 0..8 {
            let mix = &mix;
            scope.spawn(move || {
                for round in 0..5 {
                    for (i, (session, query)) in mix.iter().enumerate() {
                        let answer = session.query(query).unwrap();
                        if t == 0 && round == 0 {
                            println!(
                                "  [{} as {:?}] `{}` -> {} answer(s)",
                                session.document_name(),
                                session.user(),
                                query,
                                answer.len()
                            );
                        }
                        // Spread access order so threads collide on
                        // different plans.
                        let _ = i;
                    }
                }
            });
        }
    });

    let m = engine.cache_metrics();
    println!(
        "after serving: {} hits / {} misses ({}% hit rate), {} plan(s) resident",
        m.hits,
        m.misses,
        (m.hit_rate() * 100.0).round(),
        m.entries
    );

    // A policy change mid-flight: researchers lose nothing visible here,
    // but their cached plans are dropped while every other group's stay.
    wards.register_policy(hospital::GROUP, hospital::POLICY)?;
    let m2 = engine.cache_metrics();
    println!(
        "after re-registering '{}': {} invalidation(s), {} plan(s) resident",
        hospital::GROUP,
        m2.invalidations,
        m2.entries
    );

    let researcher = wards.session(User::Group(hospital::GROUP.into()));
    assert!(!researcher.query("//medication")?.plan_cached, "recompiled");
    assert!(
        researcher.query("//medication")?.plan_cached,
        "cached again"
    );
    println!("researcher plans recompiled once, then cached again");
    Ok(())
}
