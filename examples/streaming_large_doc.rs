//! StAX mode: query a large generated document in one sequential scan.
//!
//! The document is generated straight to a file (never fully in memory),
//! then queried in streaming mode; peak buffering stays tiny compared to
//! the document size.
//!
//! ```text
//! cargo run --release --example streaming_large_doc
//! ```

use smoqe::automata::{compile, optimize::optimize};
use smoqe::hype::stream::{evaluate_stream, StreamOptions};
use smoqe::rxpath::parse_path;
use smoqe::workloads::hospital;
use smoqe::xml::generate_to_writer;
use std::io::BufReader;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let vocab = smoqe::xml::Vocabulary::new();
    let dtd = hospital::dtd(&vocab);
    let config = hospital::generator_config(&vocab, 2026, 200_000);

    let dir = std::env::temp_dir().join("smoqe-examples");
    std::fs::create_dir_all(&dir)?;
    let path = dir.join("large-hospital.xml");
    let file = std::fs::File::create(&path)?;
    let nodes = generate_to_writer(&dtd, &config, std::io::BufWriter::new(file))?;
    let bytes = std::fs::metadata(&path)?.len();
    println!(
        "generated {nodes} nodes ({bytes} bytes) at {}",
        path.display()
    );

    let query = "hospital/patient[visit/treatment/medication = 'autism']/pname";
    let q = parse_path(query, &vocab)?;
    let mfa = optimize(&compile(&q, &vocab));

    let file = BufReader::new(std::fs::File::open(&path)?);
    let outcome = evaluate_stream(file, &mfa, &vocab, StreamOptions { want_xml: true })?;
    println!(
        "query `{query}`: {} answers from {} events; peak candidate buffer {} bytes",
        outcome.answers.len(),
        outcome.events,
        outcome.peak_buffered_bytes
    );
    for xml in outcome.answer_xml.unwrap().iter().take(5) {
        println!("  {xml}");
    }
    println!("  ... (showing at most 5)");
    std::fs::remove_file(&path).ok();
    Ok(())
}
