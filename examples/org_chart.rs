//! A second domain: an org chart where salaries are confidential and
//! reviews are visible only when marked public. Demonstrates that the
//! machinery is not hospital-specific, and shows both engine modes.
//!
//! ```text
//! cargo run --example org_chart
//! ```

use smoqe::workloads::org;
use smoqe::{DocumentMode, Engine, EngineConfig, User};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let engine = Engine::with_defaults();
    let company = engine.open_document("company");
    org::install_sample(&company)?;

    println!("=== derived view for group '{}' ===", org::GROUP);
    println!("{}", company.view(org::GROUP)?.to_spec_string());

    let staff = company.session(User::Group(org::GROUP.into()));
    let doc = company.document()?;

    println!(
        "salaries visible to staff: {}",
        staff.query("//salary")?.len()
    );
    let reviews = staff.query("//review")?;
    println!("reviews visible to staff ({}):", reviews.len());
    for xml in reviews.serialize_with(&doc) {
        println!("  {xml}");
    }
    let names = staff.query("company/dept/(dept)*/emp/ename")?;
    println!("employee names at any department depth ({}):", names.len());
    for xml in names.serialize_with(&doc) {
        println!("  {xml}");
    }

    // The same, in streaming mode.
    let streaming = Engine::new(EngineConfig {
        mode: DocumentMode::Stream,
        ..EngineConfig::default()
    });
    let stream_doc = streaming.open_document("company");
    org::install_sample(&stream_doc)?;
    let s = stream_doc.session(User::Group(org::GROUP.into()));
    let streamed = s.query("//emp[review]/ename")?;
    println!(
        "streaming mode, employees with visible reviews: {:?}",
        streamed.xml.unwrap_or_default()
    );
    Ok(())
}
