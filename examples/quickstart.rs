//! Quickstart: enforce an access-control policy and query through it.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use smoqe::{workloads::hospital, Engine, User};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Set up the engine with the document schema and data.
    let engine = Engine::with_defaults();
    engine.load_dtd(hospital::DTD)?;
    engine.load_document(hospital::SAMPLE_DOCUMENT)?;

    // 2. Register a user group by its access-control policy. SMOQE derives
    //    the security view automatically; it is never materialized.
    engine.register_policy("researchers", hospital::POLICY)?;

    // 3. An admin sees the raw document...
    let admin = engine.session(User::Admin);
    let all_names = admin.query("hospital/patient/pname")?;
    println!("admin sees {} patient names", all_names.len());

    // 4. ...while researchers see only what the policy allows: their
    //    queries are rewritten against the virtual view.
    let researcher = engine.session(User::Group("researchers".into()));
    let names = researcher.query("//pname")?;
    println!("researcher sees {} patient names (policy hides them)", names.len());
    assert!(names.is_empty());

    let meds = researcher.query("hospital/patient/treatment/medication")?;
    let doc = engine.document()?;
    println!("medications visible to researchers:");
    for xml in meds.serialize_with(&doc) {
        println!("  {xml}");
    }
    Ok(())
}
