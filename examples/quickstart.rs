//! Quickstart: enforce an access-control policy and query through it.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use smoqe::{workloads::hospital, Engine, User};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Open a named document in the engine's catalog and give it the
    //    schema and data.
    let engine = Engine::with_defaults();
    let wards = engine.open_document("wards");
    wards.load_dtd(hospital::DTD)?;
    wards.load_document(hospital::SAMPLE_DOCUMENT)?;

    // 2. Register a user group by its access-control policy. SMOQE derives
    //    the security view automatically; it is never materialized.
    wards.register_policy("researchers", hospital::POLICY)?;

    // 3. An admin sees the raw document...
    let admin = wards.session(User::Admin);
    let all_names = admin.query("hospital/patient/pname")?;
    println!("admin sees {} patient names", all_names.len());

    // 4. ...while researchers see only what the policy allows: their
    //    queries are rewritten against the virtual view.
    let researcher = wards.session(User::Group("researchers".into()));
    let names = researcher.query("//pname")?;
    println!(
        "researcher sees {} patient names (policy hides them)",
        names.len()
    );
    assert!(names.is_empty());

    let meds = researcher.query("hospital/patient/treatment/medication")?;
    let doc = wards.document()?;
    println!("medications visible to researchers:");
    for xml in meds.serialize_with(&doc) {
        println!("  {xml}");
    }

    // 5. Sessions are owned and thread-safe, and repeated queries skip
    //    the whole parse→rewrite→compile→optimize pipeline via the
    //    shared plan cache.
    let again = researcher.query("hospital/patient/treatment/medication")?;
    assert!(again.plan_cached);
    let m = engine.cache_metrics();
    println!(
        "plan cache: {} hit(s), {} miss(es), {} plan(s) resident",
        m.hits, m.misses, m.entries
    );
    Ok(())
}
