//! Fig. 6 + the indexer demo: build the TAX index, display it, persist
//! it, and show its pruning effect on a selective descendant query.
//!
//! ```text
//! cargo run --release --example tax_pruning
//! ```

use smoqe::automata::{compile, optimize::optimize};
use smoqe::hype::dom::{evaluate_mfa_with, DomOptions};
use smoqe::hype::NoopObserver;
use smoqe::rxpath::parse_path;
use smoqe::tax::TaxIndex;
use smoqe::workloads::hospital;
use smoqe::xml::{Document, Vocabulary};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Small document: display the index like Fig. 6.
    let vocab = Vocabulary::new();
    let sample = Document::parse_str(hospital::SAMPLE_DOCUMENT, &vocab)?;
    let tax = TaxIndex::build(&sample);
    println!("=== TAX on the sample document (Fig. 6) ===");
    println!("{}", tax.summary(&vocab));

    // Large document: measure the pruning effect.
    let doc = hospital::generate_document(&vocab, 11, 100_000);
    let tax = TaxIndex::build(&doc);
    println!(
        "index over {} nodes: {} distinct sets, ~{} bytes",
        doc.node_count(),
        tax.distinct_sets(),
        tax.memory_bytes()
    );
    let dir = std::env::temp_dir().join("smoqe-examples");
    std::fs::create_dir_all(&dir)?;
    let path = dir.join("hospital.tax");
    tax.save_to_file(&path, &vocab)?;
    println!(
        "persisted (compressed) to {} bytes on disk\n",
        std::fs::metadata(&path)?.len()
    );
    std::fs::remove_file(&path).ok();

    for q in ["//test", "//parent/patient/pname"] {
        let query = parse_path(q, &vocab)?;
        let mfa = optimize(&compile(&query, &vocab));
        let (a1, s1) = evaluate_mfa_with(&doc, &mfa, &DomOptions::default(), &mut NoopObserver);
        let opts = DomOptions { tax: Some(&tax) };
        let (a2, s2) = evaluate_mfa_with(&doc, &mfa, &opts, &mut NoopObserver);
        assert_eq!(a1, a2);
        println!(
            "query {q}: visited {} nodes without TAX, {} with TAX ({} subtrees pruned), {} answers",
            s1.nodes_visited,
            s2.nodes_visited,
            s2.subtrees_pruned_tax,
            a2.len()
        );
    }
    Ok(())
}
