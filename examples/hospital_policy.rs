//! The paper's running example, end to end (Fig. 3 + Q0).
//!
//! Shows: the document DTD, the access-control policy S0, the derived view
//! specification σ0 and view DTD, the materialized view (for illustration
//! only), and the rewritten evaluation of a query on the virtual view.
//!
//! ```text
//! cargo run --example hospital_policy
//! ```

use smoqe::rewrite::rewrite;
use smoqe::rxpath::parse_path;
use smoqe::view::{derive, materialize, AccessPolicy};
use smoqe::workloads::hospital;
use smoqe::xml::{Document, Vocabulary};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let vocab = Vocabulary::new();
    let dtd = hospital::dtd(&vocab);
    println!("=== document DTD D (Fig. 3a) ===\n{}", dtd.to_dtd_string());

    let policy = AccessPolicy::parse(dtd.clone(), hospital::POLICY)?;
    println!(
        "=== access control policy S0 (Fig. 3b) ===\n{}",
        policy.to_policy_string()
    );

    let spec = derive(&policy);
    spec.validate(&dtd)?;
    println!(
        "=== derived view spec sigma0 + view DTD (Fig. 3c/3d) ===\n{}",
        spec.to_spec_string()
    );

    let doc = Document::parse_str(hospital::SAMPLE_DOCUMENT, &vocab)?;
    dtd.validate(&doc)?;

    // For illustration we materialize V(T) once - the engine never does.
    let view = materialize(&spec, &doc)?;
    println!(
        "=== V(T), materialized for illustration ===\n{}\n",
        view.doc.to_xml()
    );

    // A researcher query on the view, rewritten and answered on T.
    let q = "hospital/patient[treatment/medication = 'autism']/treatment/medication";
    let path = parse_path(q, &vocab)?;
    let mfa = rewrite(&path, &spec);
    let (answers, stats) = smoqe::hype::evaluate_mfa(&doc, &mfa);
    println!("view query: {q}");
    println!("rewritten automaton: {}", mfa.stats());
    println!(
        "answers on the source (no materialization), visited {} nodes, |Cans| = {}:",
        stats.nodes_visited, stats.cans_size
    );
    for n in answers.iter() {
        println!("  {}", smoqe::xml::serialize::subtree_to_string(&doc, n));
    }
    Ok(())
}
